//! GIN: Graph Isomorphism Network (paper §III-C, Eq. 1).
//!
//! `h_u^l = ReLU(W^l (h_u^{l-1} + Σ_{v∈N(u)} h_v^{l-1}))`, with the graph
//! embedding being the mean of the final-layer node embeddings. The ε
//! coefficient is omitted exactly as the paper does (footnote 1).
//!
//! The standalone GIN is used as the graph embedder for KMeans clustering
//! and the L2route baseline (substituting node2vec — see DESIGN.md), and
//! supplies the `h_G` component of the `M_rk` ranker input.

use crate::features::graph_features;
use lan_graph::{Graph, NodeId};
use lan_tensor::{Matrix, ParamStore, Tape, Var};
use rand::Rng;

/// Builds the GIN aggregation operator `A + I` as a dense matrix
/// (`n × n`). Dense is fine at the paper's graph sizes (tens of nodes); the
/// matmul skips zero entries.
pub fn agg_matrix(g: &Graph) -> Matrix {
    let n = g.node_count();
    let mut m = Matrix::zeros(n, n);
    for u in 0..n as NodeId {
        m.set(u as usize, u as usize, 1.0);
        for &v in g.neighbors(u) {
            m.set(u as usize, v as usize, 1.0);
        }
    }
    m
}

/// Configuration for GIN and the cross-graph networks.
#[derive(Debug, Clone)]
pub struct GnnConfig {
    /// Input feature dimension = dataset-wide label count.
    pub num_labels: usize,
    /// Hidden dimension of each layer; `dims.len()` is the layer count `L`.
    pub dims: Vec<usize>,
}

impl GnnConfig {
    /// `L` layers of width `dim` over `num_labels` input features.
    pub fn uniform(num_labels: usize, dim: usize, layers: usize) -> Self {
        GnnConfig {
            num_labels,
            dims: vec![dim; layers],
        }
    }

    /// Output dimension of the final layer.
    pub fn out_dim(&self) -> usize {
        *self.dims.last().expect("at least one layer")
    }
}

/// A GIN with `L = cfg.dims.len()` layers.
#[derive(Debug, Clone)]
pub struct Gin {
    pub cfg: GnnConfig,
    /// One weight-matrix parameter id per layer (`d_{l-1} × d_l`).
    pub weights: Vec<usize>,
}

impl Gin {
    /// Registers Xavier-initialized weights in `store`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, store: &mut ParamStore, cfg: GnnConfig) -> Self {
        let mut weights = Vec::with_capacity(cfg.dims.len());
        let mut prev = cfg.num_labels;
        for &d in &cfg.dims {
            weights.push(store.add(Matrix::xavier(rng, prev, d)));
            prev = d;
        }
        Gin { cfg, weights }
    }

    /// Records the forward pass; returns `(node_embeddings, pooled)` where
    /// `node_embeddings` is `n × d_L` and `pooled` is the `1 × d_L` mean.
    ///
    /// The empty graph yields a zero pooled embedding.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, g: &Graph) -> (Var, Var) {
        let n = g.node_count();
        if n == 0 {
            let z = tape.leaf(Matrix::zeros(0, self.cfg.out_dim()));
            let p = tape.leaf(Matrix::zeros(1, self.cfg.out_dim()));
            return (z, p);
        }
        let agg = tape.leaf(agg_matrix(g));
        let mut h = tape.leaf(graph_features(g, self.cfg.num_labels));
        for &wid in &self.weights {
            let t = tape.matmul(agg, h);
            let w = tape.param(store, wid);
            let z = tape.matmul(t, w);
            h = tape.relu(z);
        }
        let pooled = tape.weighted_mean_rows(h, vec![1.0; n]);
        (h, pooled)
    }

    /// Inference convenience: the pooled graph embedding as a plain matrix.
    pub fn embed(&self, store: &ParamStore, g: &Graph) -> Matrix {
        lan_obs::counter(lan_obs::names::GNN_EMBED_CALLS).inc();
        let mut tape = Tape::new();
        let (_, pooled) = self.forward(&mut tape, store, g);
        tape.value(pooled).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::generators::molecule_like;
    use lan_graph::wl::wl_labels;
    use lan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn new_gin(seed: u64, num_labels: usize, dim: usize, layers: usize) -> (Gin, ParamStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let gin = Gin::new(
            &mut rng,
            &mut store,
            GnnConfig::uniform(num_labels, dim, layers),
        );
        (gin, store)
    }

    #[test]
    fn shapes() {
        let (gin, store) = new_gin(1, 5, 8, 2);
        let g = Graph::from_edges(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let mut t = Tape::new();
        let (h, p) = gin.forward(&mut t, &store, &g);
        assert_eq!(t.value(h).shape(), (3, 8));
        assert_eq!(t.value(p).shape(), (1, 8));
    }

    #[test]
    fn empty_graph_embedding_is_zero() {
        let (gin, store) = new_gin(2, 4, 6, 2);
        let e = gin.embed(&store, &Graph::empty());
        assert_eq!(e.shape(), (1, 6));
        assert_eq!(e.norm(), 0.0);
    }

    #[test]
    fn isomorphism_invariance_of_pooled_embedding() {
        let mut rng = StdRng::seed_from_u64(3);
        let (gin, store) = new_gin(4, 6, 8, 2);
        for _ in 0..5 {
            let g = molecule_like(&mut rng, 12, 2, 4, 6);
            let perm: Vec<u32> = {
                use rand::seq::SliceRandom;
                let mut p: Vec<u32> = (0..12).collect();
                p.shuffle(&mut rng);
                p
            };
            let pg = g.permute(&perm);
            let e1 = gin.embed(&store, &g);
            let e2 = gin.embed(&store, &pg);
            assert!(
                e1.max_abs_diff(&e2) < 1e-4,
                "pooled embedding not invariant"
            );
        }
    }

    #[test]
    fn wl_equal_nodes_have_equal_embeddings() {
        // The property Algorithm 5 relies on: same WL label at iteration l
        // => same GIN embedding at layer l.
        let mut rng = StdRng::seed_from_u64(5);
        let (gin, store) = new_gin(6, 6, 8, 2);
        for _ in 0..10 {
            let g = molecule_like(&mut rng, 10, 2, 4, 3);
            let wl = wl_labels(&g, 2);
            let mut t = Tape::new();
            let (h, _) = gin.forward(&mut t, &store, &g);
            let hv = t.value(h);
            for u in 0..g.node_count() {
                for v in 0..g.node_count() {
                    if wl.labels[2][u] == wl.labels[2][v] {
                        let du: Vec<f32> = hv.row(u).to_vec();
                        let dv: Vec<f32> = hv.row(v).to_vec();
                        let diff = du
                            .iter()
                            .zip(&dv)
                            .map(|(a, b)| (a - b).abs())
                            .fold(0.0f32, f32::max);
                        assert!(diff < 1e-5, "WL-equal nodes {u},{v} differ by {diff}");
                    }
                }
            }
        }
    }

    #[test]
    fn distinguishes_different_graphs() {
        let (gin, store) = new_gin(7, 3, 8, 2);
        let g1 = Graph::from_edges(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let g2 = Graph::from_edges(vec![0, 0, 0], &[(0, 1)]).unwrap();
        let e1 = gin.embed(&store, &g1);
        let e2 = gin.embed(&store, &g2);
        assert!(e1.max_abs_diff(&e2) > 1e-4);
    }

    #[test]
    fn agg_matrix_structure() {
        let g = Graph::from_edges(vec![0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let a = agg_matrix(&g);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(1, 2), 1.0);
        assert_eq!(a.get(2, 2), 1.0);
    }
}
