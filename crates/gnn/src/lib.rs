//! Graph neural networks for LAN: GIN, cross-graph attention, GNN-graphs,
//! and the compressed GNN-graph (CG) acceleration.
//!
//! Paper coverage:
//!
//! * [`gin`] — the GIN convolution (§III-C, Eq. 1) used as standalone graph
//!   embedder;
//! * [`cross`] — cross-graph attention learning (Definition 1) and its CG
//!   form (Definition 3), sharing one forward so Theorem 2's equivalence is
//!   exact;
//! * [`gnn_graph`] — the explicit GNN-graph DAG `H_{G,L}` (§III-D);
//! * [`cg`] — the compressed GNN-graph and Algorithm 5 (WL-based optimum
//!   construction, Theorem 4);
//! * [`hag`] — the HAG redundancy-elimination baseline [45] compared in
//!   Fig. 12;
//! * [`features`] — one-hot label features;
//! * [`infer`] — tape-free inference forwards (query-time fast path) with
//!   reusable per-thread scratch buffers, bit-equivalent to the tape ops.

pub mod cg;
pub mod cross;
pub mod features;
pub mod gin;
pub mod gnn_graph;
pub mod hag;
pub mod infer;
pub mod quant;

pub use cg::CompressedGnnGraph;
pub use cross::{CrossGraphNet, CrossInput, PairEmbedding};
pub use gin::{Gin, GnnConfig};
pub use gnn_graph::GnnGraph;
pub use hag::HagPlan;
pub use infer::{with_scratch, InferScratch};
pub use quant::{QuantMode, QuantQuery, QuantStore};
