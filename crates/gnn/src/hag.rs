//! HAG-style redundancy-free aggregation (Jia et al. [45]) — the GNN
//! acceleration baseline of Fig. 12.
//!
//! HAG detects partial sums shared by multiple aggregation targets (pairs of
//! nodes that co-occur in many neighbor lists), computes each shared sum
//! once, and reuses it. This provably reduces the *additions* in the
//! neighbor aggregation `T = (A + I) H` while computing the identical
//! result — but it cannot touch the matrix multiplications or the
//! cross-graph attention, which dominate cross-graph learning. That is
//! exactly the paper's point in Fig. 12: HAG yields ≈1× speedup there while
//! the CG reduces *all* components.

use lan_graph::{Graph, NodeId};
use lan_tensor::Matrix;

/// A precomputed aggregation plan with shared partial sums.
#[derive(Debug, Clone)]
pub struct HagPlan {
    /// Number of original nodes.
    pub n: usize,
    /// Virtual sum nodes: each is a pair of operand ids (original node ids
    /// `< n`, or earlier virtual ids offset by `n`).
    pub pairs: Vec<(u32, u32)>,
    /// Final operand lists per original node (ids as above).
    pub operands: Vec<Vec<u32>>,
}

impl HagPlan {
    /// Greedily builds a plan from the GIN aggregation lists
    /// `{u} ∪ N(u)`: repeatedly extract the operand pair shared by the most
    /// lists (at least 2) into a virtual node, like HAG's heuristic.
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let mut operands: Vec<Vec<u32>> = (0..n as NodeId)
            .map(|u| {
                let mut v: Vec<u32> = g.neighbors(u).to_vec();
                v.push(u);
                v.sort_unstable();
                v
            })
            .collect();
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        loop {
            // Count pair co-occurrence across lists.
            let mut counts: std::collections::HashMap<(u32, u32), u32> = Default::default();
            for list in &operands {
                for i in 0..list.len() {
                    for j in i + 1..list.len() {
                        *counts.entry((list[i], list[j])).or_insert(0) += 1;
                    }
                }
            }
            let Some((&best_pair, &best_count)) = counts
                .iter()
                .max_by_key(|&(&p, &c)| (c, std::cmp::Reverse(p)))
            else {
                break;
            };
            if best_count < 2 {
                break;
            }
            let vid = (n + pairs.len()) as u32;
            pairs.push(best_pair);
            for list in &mut operands {
                let has_a = list.contains(&best_pair.0);
                let has_b = list.contains(&best_pair.1);
                if has_a && has_b {
                    list.retain(|&x| x != best_pair.0 && x != best_pair.1);
                    list.push(vid);
                    list.sort_unstable();
                }
            }
        }
        HagPlan { n, pairs, operands }
    }

    /// Additions performed by the planned aggregation (one per virtual pair
    /// plus `len - 1` per final list).
    pub fn planned_adds(&self) -> usize {
        self.pairs.len()
            + self
                .operands
                .iter()
                .map(|l| l.len().saturating_sub(1))
                .sum::<usize>()
    }

    /// Additions of the naive aggregation (`deg(u)` per node: summing
    /// `{u} ∪ N(u)` takes `|list| - 1` adds).
    pub fn naive_adds(g: &Graph) -> usize {
        g.nodes().map(|u| g.degree(u)).sum()
    }

    /// Executes the planned aggregation: returns `T` with
    /// `T[u,:] = Σ_{v ∈ {u} ∪ N(u)} H[v,:]`, identical to `(A + I) H`.
    pub fn aggregate(&self, h: &Matrix) -> Matrix {
        assert_eq!(h.rows(), self.n, "feature row count must match node count");
        let d = h.cols();
        // Virtual sums, in creation order (later pairs may reference earlier
        // virtual ids).
        let mut virtuals: Vec<Vec<f32>> = Vec::with_capacity(self.pairs.len());
        let fetch = |virtuals: &Vec<Vec<f32>>, id: u32, h: &Matrix| -> Vec<f32> {
            if (id as usize) < self.n {
                h.row(id as usize).to_vec()
            } else {
                virtuals[id as usize - self.n].clone()
            }
        };
        for &(a, b) in &self.pairs {
            let va = fetch(&virtuals, a, h);
            let vb = fetch(&virtuals, b, h);
            virtuals.push(va.iter().zip(&vb).map(|(x, y)| x + y).collect());
        }
        let mut out = Matrix::zeros(self.n, d);
        for (u, list) in self.operands.iter().enumerate() {
            let mut acc = vec![0.0f32; d];
            for &id in list {
                let row = fetch(&virtuals, id, h);
                for (a, b) in acc.iter_mut().zip(&row) {
                    *a += b;
                }
            }
            for (j, &x) in acc.iter().enumerate() {
                out.set(u, j, x);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gin::agg_matrix;
    use lan_graph::generators::{erdos_renyi, molecule_like, power_law_like};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_features(rng: &mut StdRng, n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn aggregation_matches_naive() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..20 {
            let g = erdos_renyi(&mut rng, 12, 20, 3);
            let plan = HagPlan::build(&g);
            let h = rand_features(&mut rng, 12, 5);
            let fast = plan.aggregate(&h);
            let naive = agg_matrix(&g).matmul(&h);
            assert!(fast.max_abs_diff(&naive) < 1e-4);
        }
    }

    #[test]
    fn saves_additions_on_dense_overlap() {
        // Hubs create heavily shared neighbor pairs.
        let mut rng = StdRng::seed_from_u64(72);
        let g = power_law_like(&mut rng, 40, 3, 10, 3);
        let plan = HagPlan::build(&g);
        assert!(
            plan.planned_adds() <= HagPlan::naive_adds(&g),
            "plan {} vs naive {}",
            plan.planned_adds(),
            HagPlan::naive_adds(&g)
        );
    }

    #[test]
    fn never_worse_than_naive() {
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..10 {
            let g = molecule_like(&mut rng, 20, 3, 4, 4);
            let plan = HagPlan::build(&g);
            assert!(plan.planned_adds() <= HagPlan::naive_adds(&g));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let g = lan_graph::Graph::empty();
        let plan = HagPlan::build(&g);
        assert_eq!(plan.planned_adds(), 0);
        let g1 = lan_graph::Graph::from_edges(vec![0], &[]).unwrap();
        let plan1 = HagPlan::build(&g1);
        let h = Matrix::ones(1, 3);
        assert_eq!(plan1.aggregate(&h), h);
    }
}
