//! Compressed GNN-graph (CG) — paper Definition 2 and Algorithm 5.
//!
//! Nodes of the GNN-graph carrying identical embeddings are grouped per
//! level. Since GIN embeddings coincide exactly when WL labels coincide
//! (paper §III-C), Algorithm 5 groups by WL label at each iteration — and
//! Theorem 4 shows this grouping is optimum: no coarser grouping is valid,
//! and WL achieves the finest guaranteed-equal partition.

use lan_graph::wl::WlInterner;
use lan_graph::{Graph, Label};

/// One level of a compressed GNN-graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CgLevel {
    /// `|g|` for each group at this level.
    pub group_sizes: Vec<u32>,
    /// For level `l ≥ 1`: `in_edges[j]` lists `(prev_level_group, weight)`
    /// pairs — the weighted aggregation operands of group `j` (paper
    /// Definition 2, third bullet). Empty at level 0.
    pub in_edges: Vec<Vec<(u32, f32)>>,
    /// Original-graph node → group index at this level.
    pub membership: Vec<u32>,
}

/// The compressed GNN-graph `H*_{G,L}`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedGnnGraph {
    /// Levels `0..=L`.
    pub levels: Vec<CgLevel>,
    /// Representative raw label of each level-0 group (all members share
    /// it), used to build the one-hot input features.
    pub level0_labels: Vec<Label>,
    /// Node count of the original graph.
    pub n: usize,
}

impl CompressedGnnGraph {
    /// Algorithm 5: builds the CG of `g` for `layers` GIN layers via WL
    /// labeling. `O(L (|V| + |E|))` plus the per-level grouping.
    pub fn build(g: &Graph, layers: usize) -> Self {
        let n = g.node_count();
        let wl = WlInterner::new().label(g, layers);

        let mut levels: Vec<CgLevel> = Vec::with_capacity(layers + 1);
        let mut level0_labels: Vec<Label> = Vec::new();

        for l in 0..=layers {
            // Compact the (already dense-ish) WL ids of this level into
            // group indices 0..k in order of first appearance.
            let mut remap: Vec<i64> = Vec::new();
            let mut membership = vec![0u32; n];
            let mut group_sizes: Vec<u32> = Vec::new();
            let mut rep: Vec<usize> = Vec::new();
            for (v, m) in membership.iter_mut().enumerate() {
                let wl_id = wl.labels[l][v] as usize;
                if remap.len() <= wl_id {
                    remap.resize(wl_id + 1, -1);
                }
                let gid = if remap[wl_id] >= 0 {
                    remap[wl_id] as u32
                } else {
                    let gid = group_sizes.len() as u32;
                    remap[wl_id] = gid as i64;
                    group_sizes.push(0);
                    rep.push(v);
                    gid
                };
                *m = gid;
                group_sizes[gid as usize] += 1;
            }

            let in_edges = if l == 0 {
                level0_labels = rep.iter().map(|&v| g.label(v as u32)).collect();
                Vec::new()
            } else {
                // Weighted edges from level l-1 groups: for a representative
                // u of group j, w(g_{l-1,i}, g_{l,j}) = |N(u) ∩ g_{l-1,i}|
                // plus 1 for u's own previous group (the GIN self term).
                let prev = &levels[l - 1];
                rep.iter()
                    .map(|&u| {
                        let mut counts: Vec<f32> = Vec::new();
                        let mut bump = |gid: u32| {
                            let gid = gid as usize;
                            if counts.len() <= gid {
                                counts.resize(gid + 1, 0.0);
                            }
                            counts[gid] += 1.0;
                        };
                        bump(prev.membership[u]);
                        for &nb in g.neighbors(u as u32) {
                            bump(prev.membership[nb as usize]);
                        }
                        counts
                            .into_iter()
                            .enumerate()
                            .filter(|&(_, w)| w > 0.0)
                            .map(|(i, w)| (i as u32, w))
                            .collect()
                    })
                    .collect()
            };

            levels.push(CgLevel {
                group_sizes,
                in_edges,
                membership,
            });
        }

        let cg = CompressedGnnGraph {
            levels,
            level0_labels,
            n,
        };
        debug_assert!(
            cg.validate(g),
            "CG construction produced inconsistent groups"
        );
        cg
    }

    /// Number of groups at level `l`.
    pub fn groups_at(&self, l: usize) -> usize {
        self.levels[l].group_sizes.len()
    }

    /// Total node count `Σ_l |V_l(H*)|`.
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|lv| lv.group_sizes.len()).sum()
    }

    /// Total weighted-edge count `Σ_l |E_l(H*)|`.
    pub fn edge_count(&self) -> usize {
        self.levels
            .iter()
            .map(|lv| lv.in_edges.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Verifies Definition 2 holds: within each group at level `l ≥ 1`,
    /// every member induces the same weighted in-edge vector (this is the
    /// "all nodes in a group have equal embeddings" guarantee, checked
    /// structurally). Used by debug assertions and tests.
    pub fn validate(&self, g: &Graph) -> bool {
        for l in 1..self.levels.len() {
            let (prevs, rest) = self.levels.split_at(l);
            let prev = &prevs[l - 1];
            let cur = &rest[0];
            for v in 0..self.n {
                let gid = cur.membership[v] as usize;
                let mut counts: std::collections::HashMap<u32, f32> = Default::default();
                *counts.entry(prev.membership[v]).or_insert(0.0) += 1.0;
                for &nb in g.neighbors(v as u32) {
                    *counts.entry(prev.membership[nb as usize]).or_insert(0.0) += 1.0;
                }
                let stored: std::collections::HashMap<u32, f32> =
                    cur.in_edges[gid].iter().copied().collect();
                if counts != stored {
                    return false;
                }
            }
        }
        // Group sizes must sum to n per level; level-0 labels consistent.
        for lv in &self.levels {
            if lv.group_sizes.iter().sum::<u32>() as usize != self.n {
                return false;
            }
        }
        for v in 0..self.n {
            let gid = self.levels[0].membership[v] as usize;
            if self.level0_labels[gid] != g.label(v as u32) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::generators::{erdos_renyi, molecule_like};
    use lan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig2_g() -> Graph {
        Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap()
    }

    fn fig2_q() -> Graph {
        Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn fig2_g_cg_matches_example4() {
        // Example 4: every level of H*_{G,2} has two groups; sizes {1, 3}.
        let cg = CompressedGnnGraph::build(&fig2_g(), 2);
        for l in 0..=2 {
            assert_eq!(cg.groups_at(l), 2, "level {l}");
            let mut sizes = cg.levels[l].group_sizes.clone();
            sizes.sort_unstable();
            assert_eq!(sizes, vec![1, 3]);
        }
        // w(g_{0,0}, g_{1,0}) = 1 and w(g_{0,1}, g_{1,0}) = 3 for the center
        // group (v0 is node 0, so its groups come first in our ordering).
        let center_group = cg.levels[1].membership[0] as usize;
        let mut edges = cg.levels[1].in_edges[center_group].clone();
        edges.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(edges, vec![(0, 1.0), (1, 3.0)]);
        // Leaf group aggregates itself (1) + the center (1).
        let leaf_group = cg.levels[1].membership[1] as usize;
        let mut edges = cg.levels[1].in_edges[leaf_group].clone();
        edges.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(edges, vec![(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn fig2_q_cg_sizes() {
        // Example 5: h_{H*_{Q,2}} = (2 h_{q_{2,0}} + h_{q_{2,1}}) / 3 —
        // groups of sizes 2 (the two A endpoints) and 1 (the B center).
        let cg = CompressedGnnGraph::build(&fig2_q(), 2);
        for l in 0..=2 {
            let mut sizes = cg.levels[l].group_sizes.clone();
            sizes.sort_unstable();
            assert_eq!(sizes, vec![1, 2], "level {l}");
        }
    }

    #[test]
    fn compression_never_expands() {
        // Corollary 1's structural premise: per level, groups <= |V| and
        // edges <= |E| + |V| (the GNN-graph per-level edge count).
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..20 {
            let g = molecule_like(&mut rng, 20, 3, 4, 4);
            let cg = CompressedGnnGraph::build(&g, 2);
            for l in 0..=2 {
                assert!(cg.groups_at(l) <= g.node_count());
            }
            for l in 1..=2 {
                let cg_edges: usize = cg.levels[l].in_edges.iter().map(Vec::len).sum();
                assert!(cg_edges <= g.node_count() + 2 * g.edge_count());
            }
        }
    }

    #[test]
    fn validate_accepts_all_random_graphs() {
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..30 {
            let g = erdos_renyi(&mut rng, 12, 15, 3);
            let cg = CompressedGnnGraph::build(&g, 3);
            assert!(cg.validate(&g));
        }
    }

    #[test]
    fn grouping_is_wl_finest() {
        // Theorem 4: groups at level l are exactly the WL classes — no two
        // distinct WL classes merged, no class split.
        use lan_graph::wl::wl_labels;
        let mut rng = StdRng::seed_from_u64(63);
        let g = molecule_like(&mut rng, 15, 2, 4, 3);
        let cg = CompressedGnnGraph::build(&g, 2);
        let wl = wl_labels(&g, 2);
        for l in 0..=2 {
            for u in 0..g.node_count() {
                for v in 0..g.node_count() {
                    let same_group = cg.levels[l].membership[u] == cg.levels[l].membership[v];
                    let same_wl = wl.labels[l][u] == wl.labels[l][v];
                    assert_eq!(same_group, same_wl, "level {l}, nodes {u},{v}");
                }
            }
        }
    }

    #[test]
    fn unique_labels_mean_no_compression() {
        // All-distinct labels: every group is a singleton; CG degenerates to
        // the GNN-graph.
        let g = Graph::from_edges(vec![0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let cg = CompressedGnnGraph::build(&g, 2);
        for l in 0..=2 {
            assert_eq!(cg.groups_at(l), 4);
        }
    }

    #[test]
    fn single_label_path_compresses_by_symmetry() {
        // A uniform-label path: ends group together, and compression holds.
        let g = Graph::from_edges(vec![7; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let cg = CompressedGnnGraph::build(&g, 2);
        assert!(cg.groups_at(0) == 1);
        assert!(cg.groups_at(1) == 2); // degree-1 ends vs degree-2 middles
        assert!(cg.groups_at(2) <= 3);
    }

    #[test]
    fn empty_graph() {
        let cg = CompressedGnnGraph::build(&Graph::empty(), 2);
        assert_eq!(cg.node_count(), 0);
        assert_eq!(cg.edge_count(), 0);
    }
}
