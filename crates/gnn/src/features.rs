//! Input feature encoding: one-hot node labels (paper §III-C, `h_u^0`).

use lan_graph::{Graph, Label};
use lan_tensor::Matrix;

/// One-hot encodes `labels` into an `n × num_labels` matrix.
///
/// Labels `>= num_labels` would silently alias, so they panic: the feature
/// dimensionality is a dataset-wide constant that every model layer is sized
/// against.
pub fn one_hot(labels: &[Label], num_labels: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), num_labels);
    for (i, &l) in labels.iter().enumerate() {
        assert!(
            (l as usize) < num_labels,
            "label {l} out of range (num_labels = {num_labels})"
        );
        m.set(i, l as usize, 1.0);
    }
    m
}

/// One-hot input features for a whole graph.
pub fn graph_features(g: &Graph, num_labels: usize) -> Matrix {
    one_hot(g.labels(), num_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_rows() {
        let m = one_hot(&[2, 0, 1], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn empty() {
        let m = one_hot(&[], 4);
        assert_eq!(m.shape(), (0, 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        one_hot(&[3], 3);
    }
}
