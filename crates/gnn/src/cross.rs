//! Cross-graph attention learning (paper §III-E Definition 1) and its
//! compressed-GNN-graph form (§VI-B Definition 3), sharing one forward
//! implementation so the equivalence of Theorem 2 is exact by construction
//! and verified bit-close by tests.
//!
//! ## The unified view
//!
//! Both the plain and the CG forward are instances of one computation over a
//! [`CrossInput`]:
//!
//! * a per-layer aggregation operator `M_l` (plain: `A + I`, identical at
//!   every layer; CG: the weighted bipartite level-(l-1)→level-l matrix);
//! * level-0 one-hot features (plain: per node; CG: per level-0 group);
//! * per-level multiplicity weights (plain: all ones; CG: group sizes
//!   `|g|`), used both as the opposite graph's attention weights (Eq. 10's
//!   `|q|` factors) and in the final weighted-mean readout.
//!
//! ## A note on the attention operand
//!
//! Definition 1 (Eq. 6) writes the attention score as
//! `a · (h_u^{l-1} ‖ h_v^{l-1})`, while Definition 3 (Eq. 10) scores with
//! the aggregated messages `t`. The Theorem 2 proof equates `μ_u = μ_g`
//! computed from `t`, so we adopt the `t`-based score on both sides —
//! otherwise the claimed equality cannot hold as stated. The score is
//! factorized: `a · (t_u ‖ t_v) = a₁·t_u + a₂·t_v`, a rank-1 broadcast sum.

use crate::cg::CompressedGnnGraph;
use crate::features::one_hot;
use crate::gin::{agg_matrix, GnnConfig};
use lan_graph::Graph;
use lan_tensor::{Matrix, ParamStore, Tape, Var};
use rand::Rng;

/// The per-graph inputs of the unified cross-graph forward.
#[derive(Debug, Clone)]
pub struct CrossInput {
    /// `aggs[l-1]` maps level `l-1` rows to level `l` rows, `l = 1..=L`.
    pub aggs: Vec<Matrix>,
    /// Level-0 one-hot features (rows = level-0 entities).
    pub feats: Matrix,
    /// Multiplicity weights per level `0..=L` (rows of that level).
    pub sizes: Vec<Vec<f32>>,
}

impl CrossInput {
    /// Plain (uncompressed) view of a graph: `M_l = A + I` at every layer,
    /// all multiplicities 1.
    pub fn plain(g: &Graph, cfg: &GnnConfig) -> Self {
        assert!(
            g.node_count() > 0,
            "cross-graph learning needs a non-empty graph"
        );
        let layers = cfg.dims.len();
        let a = agg_matrix(g);
        CrossInput {
            aggs: vec![a; layers],
            feats: one_hot(g.labels(), cfg.num_labels),
            sizes: vec![vec![1.0; g.node_count()]; layers + 1],
        }
    }

    /// Compressed view from a CG (paper Definition 3).
    pub fn compressed(cg: &CompressedGnnGraph, cfg: &GnnConfig) -> Self {
        let layers = cfg.dims.len();
        assert_eq!(
            cg.levels.len(),
            layers + 1,
            "CG depth must match the network"
        );
        assert!(cg.n > 0, "cross-graph learning needs a non-empty graph");
        let mut aggs = Vec::with_capacity(layers);
        for l in 1..=layers {
            let rows = cg.groups_at(l);
            let cols = cg.groups_at(l - 1);
            let mut m = Matrix::zeros(rows, cols);
            for (j, edges) in cg.levels[l].in_edges.iter().enumerate() {
                for &(i, w) in edges {
                    m.set(j, i as usize, w);
                }
            }
            aggs.push(m);
        }
        let feats = one_hot(&cg.level0_labels, cfg.num_labels);
        let sizes = cg
            .levels
            .iter()
            .map(|lv| lv.group_sizes.iter().map(|&s| s as f32).collect())
            .collect();
        CrossInput { aggs, feats, sizes }
    }
}

/// One cross-graph layer's parameters.
#[derive(Debug, Clone)]
pub struct CrossLayer {
    /// `W^l : d_{l-1} × d_l`.
    pub w: usize,
    /// `a₁ : d_{l-1} × 1` (own-graph half of the attention vector).
    pub a1: usize,
    /// `a₂ : d_{l-1} × 1` (other-graph half).
    pub a2: usize,
}

/// The cross-graph attention network shared by `M_rk` and `M_nh`.
#[derive(Debug, Clone)]
pub struct CrossGraphNet {
    pub cfg: GnnConfig,
    pub layers: Vec<CrossLayer>,
}

/// The pair embedding produced by a forward pass.
#[derive(Debug, Clone, Copy)]
pub struct PairEmbedding {
    /// `h_G` (or `h_{H*_G}`): `1 × d_L`.
    pub h_g: Var,
    /// `h_Q` (or `h_{H*_Q}`): `1 × d_L`.
    pub h_q: Var,
    /// The cross-graph embedding `h_G ‖ h_Q`: `1 × 2 d_L`.
    pub h_pair: Var,
}

impl CrossGraphNet {
    /// Registers Xavier-initialized parameters in `store`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, store: &mut ParamStore, cfg: GnnConfig) -> Self {
        let mut layers = Vec::with_capacity(cfg.dims.len());
        let mut prev = cfg.num_labels;
        for &d in &cfg.dims {
            layers.push(CrossLayer {
                w: store.add(Matrix::xavier(rng, prev, d)),
                a1: store.add(Matrix::xavier(rng, prev, 1)),
                a2: store.add(Matrix::xavier(rng, prev, 1)),
            });
            prev = d;
        }
        CrossGraphNet { cfg, layers }
    }

    /// Records the cross-graph forward pass over any pair of
    /// [`CrossInput`]s (plain or compressed, in any combination — e.g. a
    /// precomputed data-graph CG against a plain query).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: &CrossInput,
        y: &CrossInput,
    ) -> PairEmbedding {
        lan_obs::counter(lan_obs::names::GNN_FORWARD_CALLS).inc();
        let layers = self.layers.len();
        let mut hx = tape.leaf(x.feats.clone());
        let mut hy = tape.leaf(y.feats.clone());
        for (l, layer) in self.layers.iter().enumerate() {
            let mx = tape.leaf(x.aggs[l].clone());
            let my = tape.leaf(y.aggs[l].clone());
            let tx = tape.matmul(mx, hx); // groups_x(l+1?) — level l+1 rows
            let ty = tape.matmul(my, hy);
            let a1 = tape.param(store, layer.a1);
            let a2 = tape.param(store, layer.a2);

            // Attention scores (factorized): S_x[i][j] = a1·tx_i + a2·ty_j.
            let colx = tape.matmul(tx, a1);
            let coly = tape.matmul(ty, a1);
            let rx = tape.matmul(tx, a2);
            let ry = tape.matmul(ty, a2);
            let rowx = tape.transpose(rx);
            let rowy = tape.transpose(ry);
            let sx = tape.rank1_add(colx, rowy);
            let sy = tape.rank1_add(coly, rowx);

            // The level of the *aggregated* rows is l+1 in 0-based level
            // terms; multiplicity weights of the opposite graph at that
            // level (Eq. 9/10's |q| factors).
            let ax = tape.weighted_row_softmax(sx, y.sizes[l + 1].clone());
            let ay = tape.weighted_row_softmax(sy, x.sizes[l + 1].clone());
            let mux = tape.matmul(ax, ty);
            let muy = tape.matmul(ay, tx);

            let zx = tape.add(tx, mux);
            let zy = tape.add(ty, muy);
            let w = tape.param(store, layer.w);
            let px = tape.matmul(zx, w);
            let py = tape.matmul(zy, w);
            hx = tape.relu(px);
            hy = tape.relu(py);
        }
        let h_g = tape.weighted_mean_rows(hx, x.sizes[layers].clone());
        let h_q = tape.weighted_mean_rows(hy, y.sizes[layers].clone());
        let h_pair = tape.concat_cols(h_g, h_q);
        PairEmbedding { h_g, h_q, h_pair }
    }

    /// Convenience: plain-graph forward.
    pub fn forward_plain(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        g: &Graph,
        q: &Graph,
    ) -> PairEmbedding {
        let xi = CrossInput::plain(g, &self.cfg);
        let yi = CrossInput::plain(q, &self.cfg);
        self.forward(tape, store, &xi, &yi)
    }

    /// Convenience: CG forward (paper Definition 3).
    pub fn forward_cg(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        g: &CompressedGnnGraph,
        q: &CompressedGnnGraph,
    ) -> PairEmbedding {
        let xi = CrossInput::compressed(g, &self.cfg);
        let yi = CrossInput::compressed(q, &self.cfg);
        self.forward(tape, store, &xi, &yi)
    }

    /// Output dimension of `h_G ‖ h_Q`.
    pub fn pair_dim(&self) -> usize {
        2 * self.cfg.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::generators::{erdos_renyi, molecule_like};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn new_net(
        seed: u64,
        num_labels: usize,
        dim: usize,
        layers: usize,
    ) -> (CrossGraphNet, ParamStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let net = CrossGraphNet::new(
            &mut rng,
            &mut store,
            GnnConfig::uniform(num_labels, dim, layers),
        );
        (net, store)
    }

    #[test]
    fn shapes() {
        let (net, store) = new_net(1, 4, 8, 2);
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let mut t = Tape::new();
        let out = net.forward_plain(&mut t, &store, &g, &q);
        assert_eq!(t.value(out.h_g).shape(), (1, 8));
        assert_eq!(t.value(out.h_q).shape(), (1, 8));
        assert_eq!(t.value(out.h_pair).shape(), (1, 16));
        assert_eq!(net.pair_dim(), 16);
    }

    #[test]
    fn theorem2_equivalence_fig2() {
        // Paper Theorem 2 on the running example of Fig. 2/4.
        let (net, store) = new_net(2, 2, 8, 2);
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let cg_g = CompressedGnnGraph::build(&g, 2);
        let cg_q = CompressedGnnGraph::build(&q, 2);

        let mut t1 = Tape::new();
        let plain = net.forward_plain(&mut t1, &store, &g, &q);
        let mut t2 = Tape::new();
        let comp = net.forward_cg(&mut t2, &store, &cg_g, &cg_q);

        let d = t1.value(plain.h_pair).max_abs_diff(t2.value(comp.h_pair));
        assert!(
            d < 1e-5,
            "CG and plain cross-graph embeddings differ by {d}"
        );
    }

    #[test]
    fn theorem2_equivalence_random() {
        // Theorem 2 as a randomized property over many graphs and weights.
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..15 {
            let (net, store) = new_net(100 + trial, 3, 6, 2);
            let g = molecule_like(&mut rng, 4 + (trial as usize % 10), 2, 4, 3);
            let q = erdos_renyi(&mut rng, 5, 6, 3);
            let cg_g = CompressedGnnGraph::build(&g, 2);
            let cg_q = CompressedGnnGraph::build(&q, 2);

            let mut t1 = Tape::new();
            let plain = net.forward_plain(&mut t1, &store, &g, &q);
            let mut t2 = Tape::new();
            let comp = net.forward_cg(&mut t2, &store, &cg_g, &cg_q);
            let d = t1.value(plain.h_pair).max_abs_diff(t2.value(comp.h_pair));
            assert!(d < 1e-4, "trial {trial}: differ by {d}");
        }
    }

    #[test]
    fn corollary1_cg_never_more_flops() {
        // Corollary 1: the CG forward performs no more work than the plain
        // forward (measured in recorded flops).
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let (net, store) = new_net(5, 3, 8, 2);
            let g = molecule_like(&mut rng, 15, 3, 4, 3);
            let q = molecule_like(&mut rng, 12, 2, 4, 3);
            let cg_g = CompressedGnnGraph::build(&g, 2);
            let cg_q = CompressedGnnGraph::build(&q, 2);

            let mut t1 = Tape::new();
            let _ = net.forward_plain(&mut t1, &store, &g, &q);
            let mut t2 = Tape::new();
            let _ = net.forward_cg(&mut t2, &store, &cg_g, &cg_q);
            assert!(
                t2.flops() <= t1.flops(),
                "CG flops {} > plain flops {}",
                t2.flops(),
                t1.flops()
            );
        }
    }

    #[test]
    fn cg_compresses_skewed_labels_substantially() {
        // With few labels and symmetric structure the CG should be a real
        // win (this is the Fig. 12 mechanism).
        let mut rng = StdRng::seed_from_u64(6);
        let (net, store) = new_net(7, 2, 8, 2);
        let g = lan_graph::generators::power_law_like(&mut rng, 30, 2, 0, 2);
        let q = lan_graph::generators::power_law_like(&mut rng, 30, 2, 0, 2);
        let cg_g = CompressedGnnGraph::build(&g, 2);
        let cg_q = CompressedGnnGraph::build(&q, 2);
        let mut t1 = Tape::new();
        let _ = net.forward_plain(&mut t1, &store, &g, &q);
        let mut t2 = Tape::new();
        let _ = net.forward_cg(&mut t2, &store, &cg_g, &cg_q);
        assert!(
            (t2.flops() as f64) < 0.9 * t1.flops() as f64,
            "expected >10% flop reduction: plain {}, cg {}",
            t1.flops(),
            t2.flops()
        );
    }

    #[test]
    fn mixed_plain_and_cg_operands_agree() {
        // A precomputed data-graph CG against a plain query must equal the
        // all-plain result (the deployment mode: database CGs precomputed).
        let mut rng = StdRng::seed_from_u64(8);
        let (net, store) = new_net(9, 3, 6, 2);
        let g = molecule_like(&mut rng, 10, 2, 4, 3);
        let q = molecule_like(&mut rng, 8, 2, 4, 3);
        let cg_g = CompressedGnnGraph::build(&g, 2);
        let xi = CrossInput::compressed(&cg_g, &net.cfg);
        let yi = CrossInput::plain(&q, &net.cfg);
        let mut t1 = Tape::new();
        let mixed = net.forward(&mut t1, &store, &xi, &yi);
        let mut t2 = Tape::new();
        let plain = net.forward_plain(&mut t2, &store, &g, &q);
        let d = t1.value(mixed.h_pair).max_abs_diff(t2.value(plain.h_pair));
        assert!(d < 1e-5, "mixed forward differs by {d}");
    }

    #[test]
    fn gradients_flow_through_cross_forward() {
        let (net, mut store) = new_net(10, 3, 4, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let g = molecule_like(&mut rng, 8, 2, 4, 3);
        let q = molecule_like(&mut rng, 7, 2, 4, 3);
        let mut t = Tape::new();
        let out = net.forward_plain(&mut t, &store, &g, &q);
        let ones = t.leaf(Matrix::ones(net.pair_dim(), 1));
        let s = t.matmul(out.h_pair, ones);
        let loss = t.mse(s, Matrix::zeros(1, 1));
        store.zero_grads();
        t.backward(loss, &mut store);
        // Every layer's parameters should receive a nonzero gradient.
        let mut any = 0;
        for layer in &net.layers {
            if store.grad(layer.w).norm() > 0.0 {
                any += 1;
            }
        }
        assert!(any >= 1, "no gradient reached the cross-graph weights");
    }
}
