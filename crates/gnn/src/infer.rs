//! Tape-free inference forwards for the cross-graph network and GIN.
//!
//! Training needs the autodiff tape; query-time prediction does not, yet
//! the original query path paid for it anyway — every pair embedding built
//! a fresh [`lan_tensor::Tape`], cloned the input features and every
//! per-layer aggregation matrix onto it, and allocated ~25 intermediate
//! node matrices just to read one value off the end. This module runs the
//! *same arithmetic* directly on [`Matrix`] values with reusable scratch
//! buffers:
//!
//! * every matmul goes through [`Matrix::matmul_into`], the exact i-k-j
//!   axpy loop of the tape path, so [`CrossGraphNet::infer_pair`] is
//!   bit-identical to [`CrossGraphNet::forward`] (the equivalence tests in
//!   `tests/infer_equivalence.rs` assert agreement within 1e-5; in practice
//!   the outputs match exactly);
//! * the attention softmax, rank-1 broadcast sum, and weighted-mean
//!   readout replicate the tape ops' accumulation order verbatim;
//! * inputs (`CrossInput`, parameters) are read by reference — no clones.
//!
//! ## Scratch-buffer ownership
//!
//! All intermediates live in an [`InferScratch`], typically obtained
//! per-thread via [`with_scratch`]. A scratch is exclusively borrowed for
//! the duration of one forward and holds no state between calls (buffers
//! are `reset` to the right shape, keeping only their allocation), so
//! reuse across queries, graphs, and shard worker threads is safe by
//! construction. [`with_scratch`] must not be nested — callers acquire it
//! around leaf forwards only.

use crate::cross::{CrossGraphNet, CrossInput};
use crate::gin::Gin;
use lan_graph::{Graph, NodeId};
use lan_obs::names;
use lan_tensor::{Matrix, ParamStore};
use std::cell::RefCell;

/// Reusable buffers for the tape-free forwards. One per thread (see
/// [`with_scratch`]); every buffer is reshaped on use, so one scratch
/// serves graphs and networks of any size.
#[derive(Debug)]
pub struct InferScratch {
    // Cross-graph per-layer intermediates (x = database side, y = query).
    tx: Matrix,
    ty: Matrix,
    colx: Matrix,
    coly: Matrix,
    rx: Matrix,
    ry: Matrix,
    sx: Matrix,
    sy: Matrix,
    ax: Matrix,
    ay: Matrix,
    mux: Matrix,
    muy: Matrix,
    zx: Matrix,
    zy: Matrix,
    px: Matrix,
    py: Matrix,
    hx: Matrix,
    hy: Matrix,
    lnw: Vec<f32>,
    // GIN buffers.
    agg: Matrix,
    gh: Matrix,
    gt: Matrix,
    gz: Matrix,
}

impl Default for InferScratch {
    fn default() -> Self {
        let m = || Matrix::zeros(0, 0);
        InferScratch {
            tx: m(),
            ty: m(),
            colx: m(),
            coly: m(),
            rx: m(),
            ry: m(),
            sx: m(),
            sy: m(),
            ax: m(),
            ay: m(),
            mux: m(),
            muy: m(),
            zx: m(),
            zy: m(),
            px: m(),
            py: m(),
            hx: m(),
            hy: m(),
            lnw: Vec::new(),
            agg: m(),
            gh: m(),
            gt: m(),
            gz: m(),
        }
    }
}

impl InferScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static SCRATCH: RefCell<InferScratch> = RefCell::new(InferScratch::new());
}

/// Runs `f` with this thread's [`InferScratch`]. Panics if nested (the
/// scratch is exclusively borrowed); acquire it around leaf forwards only.
pub fn with_scratch<R>(f: impl FnOnce(&mut InferScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// `out[i][j] = col[i] + row_col[j]` — the factorized attention score
/// (tape `rank1_add` on a transposed second operand; `row_col` is `m × 1`).
fn rank1_add_into(col: &Matrix, row_col: &Matrix, out: &mut Matrix) {
    out.reset(col.rows(), row_col.rows());
    for i in 0..col.rows() {
        let c = col.get(i, 0);
        for (j, o) in out.row_mut(i).iter_mut().enumerate() {
            *o = c + row_col.get(j, 0);
        }
    }
}

/// Row-softmax with positive column weights; replicates the tape op's
/// stabilize-by-row-max arithmetic exactly. `lnw` is a reusable buffer for
/// the per-column `ln w` terms.
fn weighted_row_softmax_into(x: &Matrix, w: &[f32], lnw: &mut Vec<f32>, out: &mut Matrix) {
    debug_assert_eq!(w.len(), x.cols());
    lnw.clear();
    lnw.extend(w.iter().map(|&wi| wi.ln()));
    out.reset(x.rows(), x.cols());
    for i in 0..x.rows() {
        let src = x.row(i);
        let row = out.row_mut(i);
        for (j, o) in row.iter_mut().enumerate() {
            *o = src[j] + lnw[j];
        }
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for o in row.iter_mut() {
            *o = (*o - m).exp();
        }
        let z: f32 = row.iter().sum();
        for o in row.iter_mut() {
            *o /= z;
        }
    }
}

/// Elementwise `out = a + b`.
fn add_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    debug_assert_eq!(a.shape(), b.shape());
    out.reset(a.rows(), a.cols());
    for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = x + y;
    }
}

/// Appends the weighted row mean of `x` to `out` (tape
/// `weighted_mean_rows`, identical accumulation order).
fn weighted_mean_rows_append(x: &Matrix, w: &[f32], out: &mut Vec<f32>) {
    debug_assert_eq!(w.len(), x.rows());
    let total: f32 = w.iter().sum();
    let base = out.len();
    out.resize(base + x.cols(), 0.0);
    let acc = &mut out[base..];
    for (i, &wi) in w.iter().enumerate() {
        for (o, &v) in acc.iter_mut().zip(x.row(i)) {
            *o += wi * v / total;
        }
    }
}

impl CrossGraphNet {
    /// Tape-free twin of [`CrossGraphNet::forward`]: writes the pair
    /// embedding `h_G ‖ h_Q` (`2 d_L` scalars) into `out`. Same arithmetic,
    /// same accumulation order, no tape nodes, no input clones.
    pub fn infer_pair(
        &self,
        store: &ParamStore,
        x: &CrossInput,
        y: &CrossInput,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) {
        lan_obs::counter(names::GNN_FORWARD_CALLS).inc();
        lan_obs::counter(names::GNN_INFER_FORWARDS).inc();
        let layers = self.layers.len();
        let InferScratch {
            tx,
            ty,
            colx,
            coly,
            rx,
            ry,
            sx,
            sy,
            ax,
            ay,
            mux,
            muy,
            zx,
            zy,
            px,
            py,
            hx,
            hy,
            lnw,
            ..
        } = scratch;
        for (l, layer) in self.layers.iter().enumerate() {
            {
                let hx_in: &Matrix = if l == 0 { &x.feats } else { hx };
                let hy_in: &Matrix = if l == 0 { &y.feats } else { hy };
                x.aggs[l].matmul_into(hx_in, tx);
                y.aggs[l].matmul_into(hy_in, ty);
            }
            let a1 = store.value(layer.a1);
            let a2 = store.value(layer.a2);
            tx.matmul_into(a1, colx);
            ty.matmul_into(a1, coly);
            tx.matmul_into(a2, rx);
            ty.matmul_into(a2, ry);
            rank1_add_into(colx, ry, sx);
            rank1_add_into(coly, rx, sy);
            weighted_row_softmax_into(sx, &y.sizes[l + 1], lnw, ax);
            weighted_row_softmax_into(sy, &x.sizes[l + 1], lnw, ay);
            ax.matmul_into(ty, mux);
            ay.matmul_into(tx, muy);
            add_into(tx, mux, zx);
            add_into(ty, muy, zy);
            let w = store.value(layer.w);
            zx.matmul_into(w, px);
            zy.matmul_into(w, py);
            for v in px.data_mut() {
                *v = v.max(0.0);
            }
            for v in py.data_mut() {
                *v = v.max(0.0);
            }
            std::mem::swap(hx, px);
            std::mem::swap(hy, py);
        }
        out.clear();
        weighted_mean_rows_append(hx, &x.sizes[layers], out);
        weighted_mean_rows_append(hy, &y.sizes[layers], out);
    }
}

impl Gin {
    /// Tape-free twin of [`Gin::embed`]: writes the pooled `1 × d_L` graph
    /// embedding into `out`. Bit-identical to the tape path.
    pub fn infer_embed(
        &self,
        store: &ParamStore,
        g: &Graph,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) {
        lan_obs::counter(names::GNN_EMBED_CALLS).inc();
        let n = g.node_count();
        out.clear();
        if n == 0 {
            out.resize(self.cfg.out_dim(), 0.0);
            return;
        }
        let InferScratch {
            agg, gh, gt, gz, ..
        } = scratch;
        agg.reset(n, n);
        for u in 0..n as NodeId {
            agg.set(u as usize, u as usize, 1.0);
            for &v in g.neighbors(u) {
                agg.set(u as usize, v as usize, 1.0);
            }
        }
        gh.reset(n, self.cfg.num_labels);
        for (i, &l) in g.labels().iter().enumerate() {
            debug_assert!((l as usize) < self.cfg.num_labels);
            gh.set(i, l as usize, 1.0);
        }
        for &wid in &self.weights {
            agg.matmul_into(gh, gt);
            let w = store.value(wid);
            gt.matmul_into(w, gz);
            for v in gz.data_mut() {
                *v = v.max(0.0);
            }
            std::mem::swap(gh, gz);
        }
        // Mean readout = weighted_mean_rows with all-ones weights; the
        // tape computes the total by summing the ones, replicated here so
        // the division is bit-identical.
        let total: f32 = (0..n).map(|_| 1.0f32).sum();
        out.resize(self.cfg.out_dim(), 0.0);
        for i in 0..n {
            for (o, &v) in out.iter_mut().zip(gh.row(i)) {
                *o += v / total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gin::GnnConfig;
    use lan_tensor::Tape;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn softmax_matches_tape_op() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = Matrix::from_fn(4, 5, |_, _| rng.gen_range(-3.0..3.0f32));
        let w: Vec<f32> = (0..5).map(|_| rng.gen_range(0.5..4.0)).collect();
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let want = t.weighted_row_softmax(xv, w.clone());
        let (mut lnw, mut out) = (Vec::new(), Matrix::zeros(0, 0));
        weighted_row_softmax_into(&x, &w, &mut lnw, &mut out);
        assert_eq!(&out, t.value(want), "softmax diverged from tape op");
    }

    #[test]
    fn gin_infer_matches_tape_embed_bitwise() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut store = ParamStore::new();
        let gin = Gin::new(&mut rng, &mut store, GnnConfig::uniform(3, 8, 2));
        let mut scratch = InferScratch::new();
        let mut out = Vec::new();
        for _ in 0..10 {
            let g = lan_graph::generators::molecule_like(&mut rng, 9, 2, 4, 3);
            let want = gin.embed(&store, &g);
            gin.infer_embed(&store, &g, &mut scratch, &mut out);
            assert_eq!(out.as_slice(), want.data(), "GIN infer != tape embed");
        }
    }

    #[test]
    fn gin_infer_empty_graph_is_zero() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut store = ParamStore::new();
        let gin = Gin::new(&mut rng, &mut store, GnnConfig::uniform(3, 6, 2));
        let mut out = vec![1.0; 3];
        with_scratch(|s| gin.infer_embed(&store, &Graph::empty(), s, &mut out));
        assert_eq!(out, vec![0.0; 6]);
    }
}
