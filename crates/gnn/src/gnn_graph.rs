//! The (uncompressed) GNN-graph `H_{G,L}` (paper §III-D, after HAG [45]).
//!
//! An `L+1`-level DAG with one node per `(graph node, layer)` pair. Level
//! `l` node `u` has incoming edges from level `l-1` nodes `{u} ∪ N(u)` —
//! exactly the operands of the GIN aggregation. The compressed GNN-graph
//! ([`crate::cg`]) groups nodes of this DAG that are guaranteed to carry
//! identical embeddings.
//!
//! The explicit DAG is used by the HAG baseline and by tests; the plain
//! cross-graph forward works directly on the [`lan_graph::Graph`].

use lan_graph::{Graph, NodeId};

/// The GNN-graph of `g` with `levels` convolution layers.
#[derive(Debug, Clone)]
pub struct GnnGraph {
    /// Number of graph nodes (each level has this many DAG nodes).
    pub n: usize,
    /// Number of convolution layers `L` (the DAG has `L+1` levels).
    pub layers: usize,
    /// `in_neighbors[u]` = sorted operands `{u} ∪ N(u)`; identical at every
    /// level, so stored once.
    pub in_neighbors: Vec<Vec<NodeId>>,
}

impl GnnGraph {
    /// Builds the GNN-graph of `g`.
    pub fn new(g: &Graph, layers: usize) -> Self {
        let n = g.node_count();
        let in_neighbors = (0..n as NodeId)
            .map(|u| {
                let mut v: Vec<NodeId> = g.neighbors(u).to_vec();
                v.push(u);
                v.sort_unstable();
                v
            })
            .collect();
        GnnGraph {
            n,
            layers,
            in_neighbors,
        }
    }

    /// Total DAG node count `(L+1) · n`.
    pub fn node_count(&self) -> usize {
        (self.layers + 1) * self.n
    }

    /// Total DAG edge count `L · (n + 2|E|)`.
    pub fn edge_count(&self) -> usize {
        let per_level: usize = self.in_neighbors.iter().map(Vec::len).sum();
        self.layers * per_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::Graph;

    #[test]
    fn fig2_gnn_graph_counts() {
        // Paper Fig. 2(c): H_{G,2} for the star G (4 nodes) has 3 levels of
        // 4 nodes. Each level transition has n + 2|E| = 4 + 6 = 10 edges.
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let h = GnnGraph::new(&g, 2);
        assert_eq!(h.node_count(), 12);
        assert_eq!(h.edge_count(), 2 * (4 + 6));
        // The center aggregates from everyone (incl. itself).
        assert_eq!(h.in_neighbors[0], vec![0, 1, 2, 3]);
        assert_eq!(h.in_neighbors[1], vec![0, 1]);
    }

    #[test]
    fn empty_graph() {
        let h = GnnGraph::new(&Graph::empty(), 2);
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.edge_count(), 0);
    }
}
