//! Quantized GIN-embedding codes: the data layer of the quantized
//! prefilter tier above the GED kernel cascade.
//!
//! The GIN embedder is trained as a squared-L2 distance regressor, so
//! distances in embedding space are a learned GED surrogate (GREED's
//! observation). This module compresses the per-graph embeddings into two
//! packed code books, built once at index time:
//!
//! * **binary sign codes** — one bit per dimension (`x > mean_d`), packed
//!   into `u64` words; compared with the popcnt Hamming kernel. 64
//!   dimensions per word, the cheapest possible probe.
//! * **scalar codes** — one `u8` per dimension, linearly quantized over
//!   the per-dimension `[min, max]` range of the database; the squared-L2
//!   surrogate is assembled from precomputed code norms and the AVX2 `u8`
//!   dot kernel (`‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b`, exact in integers).
//!
//! Raw code distances are *uncalibrated* surrogates; `lan-models` fits the
//! linear map to operational GED on the training workload. Everything here
//! is deterministic and integer-exact, so a surrogate score never depends
//! on which kernel path the host dispatches to.

use lan_obs::{names, Counter};
use lan_tensor::simd::{dot_u8, hamming, kernel_path, KernelPath};

/// Which quantization mode a consumer asked for (`LAN_QUANT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Prefilter tier disabled (the default): nothing changes anywhere.
    Off,
    /// Packed sign codes + Hamming.
    Binary,
    /// `u8` scalar codes + integer squared-L2.
    Scalar,
}

impl QuantMode {
    /// Parses a mode name (`off` / `binary` / `scalar`).
    pub fn parse(s: &str) -> Option<QuantMode> {
        match s {
            "off" | "0" | "" => Some(QuantMode::Off),
            "binary" => Some(QuantMode::Binary),
            "scalar" => Some(QuantMode::Scalar),
            _ => None,
        }
    }
}

/// A query's encoded form under both quantization modes.
#[derive(Debug, Clone)]
pub struct QuantQuery {
    bits: Vec<u64>,
    codes: Vec<u8>,
    norm: u64,
}

/// Packed quantized codes for every database graph. Built once at index
/// time from the GIN embeddings; immutable afterwards, so concurrent
/// queries share it freely.
pub struct QuantStore {
    dim: usize,
    /// `u64` words per binary code: `ceil(dim / 64)`.
    words: usize,
    n: usize,
    /// Per-dimension database mean — the binary sign threshold.
    means: Vec<f32>,
    /// Per-dimension scalar-quantization range start and step.
    lo: Vec<f32>,
    step: Vec<f32>,
    /// `n × words` packed sign codes, row-major.
    bits: Vec<u64>,
    /// `n × dim` scalar codes, row-major.
    codes: Vec<u8>,
    /// Per-row squared norm of the scalar code.
    norms: Vec<u64>,
    // Pre-resolved kernel-path counters (one increment per surrogate
    // evaluation; resolving them here also guarantees every `quant.*`
    // counter is registered — hence exported with a zero value — in any
    // run that builds an index, which keeps the obs_check schema stable).
    m_simd: &'static Counter,
    m_scalar: &'static Counter,
}

impl QuantStore {
    /// Builds both code books from the database embeddings. Returns `None`
    /// for an empty database or zero-dimensional embeddings (nothing to
    /// quantize — consumers then behave as if the tier were off).
    pub fn build(embeds: &[Vec<f32>]) -> Option<QuantStore> {
        // Register the whole quant counter family at build time (see the
        // field comment): consumers increment these lazily and sparsely.
        let m_simd = lan_obs::counter(names::QUANT_KERNEL_SIMD);
        let m_scalar = lan_obs::counter(names::QUANT_KERNEL_SCALAR);
        lan_obs::counter(names::QUANT_PREFILTER_EVALS);
        lan_obs::counter(names::QUANT_PREFILTER_PRUNED);
        lan_obs::counter(names::QUANT_REORDER_USED);

        let n = embeds.len();
        let dim = embeds.first().map(|e| e.len()).unwrap_or(0);
        if n == 0 || dim == 0 {
            return None;
        }
        assert!(
            embeds.iter().all(|e| e.len() == dim),
            "ragged embedding matrix"
        );

        let mut means = vec![0.0f32; dim];
        let mut lo = vec![f32::INFINITY; dim];
        let mut hi = vec![f32::NEG_INFINITY; dim];
        for e in embeds {
            for (d, &x) in e.iter().enumerate() {
                means[d] += x;
                lo[d] = lo[d].min(x);
                hi[d] = hi[d].max(x);
            }
        }
        for m in &mut means {
            *m /= n as f32;
        }
        // A degenerate (constant or non-finite) dimension quantizes every
        // value to code 0 via a huge step; it carries no signal either way.
        let step: Vec<f32> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| {
                let range = h - l;
                if range.is_finite() && range > 0.0 {
                    range / 255.0
                } else {
                    f32::MAX
                }
            })
            .collect();

        let words = dim.div_ceil(64);
        let mut store = QuantStore {
            dim,
            words,
            n,
            means,
            lo,
            step,
            bits: vec![0u64; n * words],
            codes: vec![0u8; n * dim],
            norms: vec![0u64; n],
            m_simd,
            m_scalar,
        };
        let mut q = QuantQuery {
            bits: vec![0u64; words],
            codes: vec![0u8; dim],
            norm: 0,
        };
        for (i, e) in embeds.iter().enumerate() {
            store.encode_into(e, &mut q);
            store.bits[i * words..(i + 1) * words].copy_from_slice(&q.bits);
            store.codes[i * dim..(i + 1) * dim].copy_from_slice(&q.codes);
            store.norms[i] = q.norm;
        }
        Some(store)
    }

    /// Number of encoded database graphs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the store holds no codes (never constructed — kept for
    /// the standard `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimensionality the codes were built from.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a query embedding under both modes.
    pub fn encode(&self, embed: &[f32]) -> QuantQuery {
        let mut q = QuantQuery {
            bits: vec![0u64; self.words],
            codes: vec![0u8; self.dim],
            norm: 0,
        };
        self.encode_into(embed, &mut q);
        q
    }

    fn encode_into(&self, embed: &[f32], out: &mut QuantQuery) {
        assert_eq!(embed.len(), self.dim, "embedding dim mismatch");
        out.bits.iter_mut().for_each(|w| *w = 0);
        let mut norm = 0u64;
        for (d, &x) in embed.iter().enumerate() {
            if x > self.means[d] {
                out.bits[d / 64] |= 1u64 << (d % 64);
            }
            // NaN-safe: a non-finite coordinate clamps to code 0.
            let c = ((x - self.lo[d]) / self.step[d]).round();
            let c = if c.is_finite() {
                c.clamp(0.0, 255.0) as u8
            } else {
                0
            };
            out.codes[d] = c;
            norm += c as u64 * c as u64;
        }
        out.norm = norm;
    }

    fn count_kernel(&self) {
        match kernel_path() {
            KernelPath::Simd => self.m_simd.inc(),
            KernelPath::Scalar => self.m_scalar.inc(),
        }
    }

    /// Hamming distance between the query's sign code and graph `id`'s.
    pub fn hamming(&self, q: &QuantQuery, id: u32) -> u32 {
        let i = id as usize;
        self.count_kernel();
        hamming(&q.bits, &self.bits[i * self.words..(i + 1) * self.words])
    }

    /// Integer squared-L2 between the query's scalar code and graph
    /// `id`'s, via the dot kernel and precomputed norms.
    pub fn l2sq(&self, q: &QuantQuery, id: u32) -> u64 {
        let i = id as usize;
        self.count_kernel();
        let dot = dot_u8(&q.codes, &self.codes[i * self.dim..(i + 1) * self.dim]);
        // `‖a‖² + ‖b‖² − 2ab ≥ 0` exactly; computed in i128 to sidestep
        // any intermediate wrap before the provably-nonnegative result.
        (q.norm as i128 + self.norms[i] as i128 - 2 * dot as i128).max(0) as u64
    }

    /// Serializes both packed code books (binary signs + scalar codes)
    /// with their quantization parameters.
    pub fn store_encode(&self, enc: &mut lan_store::Enc) {
        enc.put_u64(self.dim as u64);
        enc.put_u64(self.n as u64);
        enc.put_f32_slice(&self.means);
        enc.put_f32_slice(&self.lo);
        enc.put_f32_slice(&self.step);
        enc.put_u64_slice(&self.bits);
        enc.put_u8_slice(&self.codes);
        enc.put_u64_slice(&self.norms);
    }

    /// Decodes a code store, validating every slab length against the
    /// recorded `n × dim` geometry. Counter handles are re-resolved, as in
    /// [`QuantStore::build`].
    pub fn store_decode(dec: &mut lan_store::Dec<'_>) -> Result<QuantStore, lan_store::StoreError> {
        use lan_store::StoreError;
        let dim = dec.get_u64()? as usize;
        let n = dec.get_u64()? as usize;
        if dim == 0 || n == 0 {
            return Err(StoreError::corrupt("quant store with zero rows or dims"));
        }
        let words = dim.div_ceil(64);
        let means = dec.get_f32_slice()?;
        let lo = dec.get_f32_slice()?;
        let step = dec.get_f32_slice()?;
        let bits = dec.get_u64_slice()?;
        let codes = dec.get_u8_slice()?;
        let norms = dec.get_u64_slice()?;
        if means.len() != dim || lo.len() != dim || step.len() != dim {
            return Err(StoreError::corrupt(
                "quant per-dimension arrays mismatch dim",
            ));
        }
        if bits.len() != n * words || codes.len() != n * dim || norms.len() != n {
            return Err(StoreError::corrupt(format!(
                "quant code slabs inconsistent with n={n}, dim={dim}"
            )));
        }
        Ok(QuantStore {
            dim,
            words,
            n,
            means: means.to_vec(),
            lo: lo.to_vec(),
            step: step.to_vec(),
            bits: bits.to_vec(),
            codes: codes.to_vec(),
            norms: norms.to_vec(),
            m_simd: lan_obs::counter(names::QUANT_KERNEL_SIMD),
            m_scalar: lan_obs::counter(names::QUANT_KERNEL_SCALAR),
        })
    }

    /// The raw (uncalibrated) surrogate distance under `mode`. `Off` is
    /// rejected — callers gate on the mode before scoring.
    pub fn raw_score(&self, mode: QuantMode, q: &QuantQuery, id: u32) -> f64 {
        match mode {
            QuantMode::Binary => self.hamming(q, id) as f64,
            QuantMode::Scalar => self.l2sq(q, id) as f64,
            QuantMode::Off => panic!("raw_score with QuantMode::Off"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_embeds(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect()
    }

    #[test]
    fn store_round_trip_preserves_surrogates() {
        // dim > 64 exercises multi-word binary codes.
        let mut rng = StdRng::seed_from_u64(3);
        let embeds = random_embeds(&mut rng, 12, 70);
        let s = QuantStore::build(&embeds).unwrap();
        let mut enc = lan_store::Enc::new();
        s.store_encode(&mut enc);
        let mut w = lan_store::Writer::new();
        w.add_section("q", enc);
        let a = lan_store::Archive::from_bytes(&w.to_bytes()).unwrap();
        let mut d = a.section("q").unwrap();
        let back = QuantStore::store_decode(&mut d).unwrap();
        d.expect_end().unwrap();
        assert_eq!((back.len(), back.dim()), (s.len(), s.dim()));
        let probe = random_embeds(&mut rng, 1, 70).pop().unwrap();
        let (q1, q2) = (s.encode(&probe), back.encode(&probe));
        for id in 0..embeds.len() as u32 {
            assert_eq!(s.hamming(&q1, id), back.hamming(&q2, id));
            assert_eq!(s.l2sq(&q1, id), back.l2sq(&q2, id));
        }
    }

    #[test]
    fn store_decode_rejects_inconsistent_slabs() {
        let mut rng = StdRng::seed_from_u64(4);
        let embeds = random_embeds(&mut rng, 4, 8);
        let s = QuantStore::build(&embeds).unwrap();
        let mut enc = lan_store::Enc::new();
        // Lie about n so every slab length disagrees.
        enc.put_u64(s.dim as u64);
        enc.put_u64(99);
        enc.put_f32_slice(&s.means);
        enc.put_f32_slice(&s.lo);
        enc.put_f32_slice(&s.step);
        enc.put_u64_slice(&s.bits);
        enc.put_u8_slice(&s.codes);
        enc.put_u64_slice(&s.norms);
        let mut w = lan_store::Writer::new();
        w.add_section("q", enc);
        let a = lan_store::Archive::from_bytes(&w.to_bytes()).unwrap();
        let mut d = a.section("q").unwrap();
        assert!(matches!(
            QuantStore::store_decode(&mut d),
            Err(lan_store::StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(QuantStore::build(&[]).is_none());
        assert!(QuantStore::build(&[vec![], vec![]]).is_none());
        // Constant dimensions quantize without panicking.
        let s = QuantStore::build(&[vec![1.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let q = s.encode(&[1.0, 0.5]);
        assert!(s.l2sq(&q, 0) <= s.l2sq(&q, 1) || s.l2sq(&q, 1) <= s.l2sq(&q, 0));
    }

    #[test]
    fn self_distance_is_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let embeds = random_embeds(&mut rng, 20, 37);
        let s = QuantStore::build(&embeds).unwrap();
        for (i, e) in embeds.iter().enumerate() {
            let q = s.encode(e);
            assert_eq!(s.l2sq(&q, i as u32), 0, "graph {i}");
            assert_eq!(s.hamming(&q, i as u32), 0, "graph {i}");
        }
    }

    #[test]
    fn l2sq_matches_naive_code_distance() {
        let mut rng = StdRng::seed_from_u64(12);
        let embeds = random_embeds(&mut rng, 16, 50);
        let s = QuantStore::build(&embeds).unwrap();
        let probe = random_embeds(&mut rng, 1, 50).pop().unwrap();
        let q = s.encode(&probe);
        for i in 0..embeds.len() {
            let row = &s.codes[i * s.dim..(i + 1) * s.dim];
            let naive: u64 = q
                .codes
                .iter()
                .zip(row)
                .map(|(&a, &b)| {
                    let d = a as i64 - b as i64;
                    (d * d) as u64
                })
                .sum();
            assert_eq!(s.l2sq(&q, i as u32), naive, "graph {i}");
        }
    }

    #[test]
    fn surrogate_orders_near_before_far() {
        // Codes of a tight cluster around the query must score below a
        // far-away cluster under both modes — the property the prefilter
        // tier actually relies on.
        let mut rng = StdRng::seed_from_u64(13);
        let dim = 32;
        let near: Vec<Vec<f32>> = (0..10)
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.1f32..0.1)).collect())
            .collect();
        let far: Vec<Vec<f32>> = (0..10)
            .map(|_| (0..dim).map(|_| rng.gen_range(1.5f32..2.0)).collect())
            .collect();
        let mut embeds = near.clone();
        embeds.extend(far.clone());
        let s = QuantStore::build(&embeds).unwrap();
        let q = s.encode(&vec![0.0f32; dim]);
        for i in 0..10u32 {
            for j in 10..20u32 {
                assert!(s.l2sq(&q, i) < s.l2sq(&q, j), "scalar: near {i} vs far {j}");
                assert!(
                    s.hamming(&q, i) <= s.hamming(&q, j),
                    "binary: near {i} vs far {j}"
                );
            }
        }
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(QuantMode::parse("off"), Some(QuantMode::Off));
        assert_eq!(QuantMode::parse(""), Some(QuantMode::Off));
        assert_eq!(QuantMode::parse("binary"), Some(QuantMode::Binary));
        assert_eq!(QuantMode::parse("scalar"), Some(QuantMode::Scalar));
        assert_eq!(QuantMode::parse("bogus"), None);
    }
}
