//! Property tests: the tape-free inference forward matches the tape
//! forward within 1e-5 on random plain/CG input pairs (in practice it is
//! bit-identical — both paths share the same axpy matmul and replicate the
//! softmax/readout accumulation order).

use lan_gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput, GnnConfig, InferScratch};
use lan_graph::generators::{erdos_renyi, molecule_like, power_law_like};
use lan_tensor::{Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn new_net(seed: u64, num_labels: usize, dim: usize, layers: usize) -> (CrossGraphNet, ParamStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let net = CrossGraphNet::new(
        &mut rng,
        &mut store,
        GnnConfig::uniform(num_labels, dim, layers),
    );
    (net, store)
}

fn tape_pair(net: &CrossGraphNet, store: &ParamStore, x: &CrossInput, y: &CrossInput) -> Matrix {
    let mut t = Tape::new();
    let out = net.forward(&mut t, store, x, y);
    t.value(out.h_pair).clone()
}

fn max_diff(a: &[f32], b: &Matrix) -> f32 {
    assert_eq!(a.len(), b.cols());
    a.iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn infer_matches_tape_on_random_plain_pairs() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut scratch = InferScratch::new();
    let mut got = Vec::new();
    for trial in 0..20 {
        let (net, store) = new_net(200 + trial, 3, 6, 2);
        let g = molecule_like(&mut rng, 4 + (trial as usize % 10), 2, 4, 3);
        let q = erdos_renyi(&mut rng, 3 + (trial as usize % 7), 6, 3);
        let xi = CrossInput::plain(&g, &net.cfg);
        let yi = CrossInput::plain(&q, &net.cfg);
        let want = tape_pair(&net, &store, &xi, &yi);
        net.infer_pair(&store, &xi, &yi, &mut scratch, &mut got);
        let d = max_diff(&got, &want);
        assert!(d < 1e-5, "plain trial {trial}: infer differs by {d}");
    }
}

#[test]
fn infer_matches_tape_on_random_cg_pairs() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut scratch = InferScratch::new();
    let mut got = Vec::new();
    for trial in 0..20 {
        let (net, store) = new_net(300 + trial, 2, 8, 2);
        let g = power_law_like(&mut rng, 8 + (trial as usize % 12), 2, 0, 2);
        let q = molecule_like(&mut rng, 5 + (trial as usize % 8), 1, 4, 2);
        let xi = CrossInput::compressed(&CompressedGnnGraph::build(&g, 2), &net.cfg);
        let yi = CrossInput::compressed(&CompressedGnnGraph::build(&q, 2), &net.cfg);
        let want = tape_pair(&net, &store, &xi, &yi);
        net.infer_pair(&store, &xi, &yi, &mut scratch, &mut got);
        let d = max_diff(&got, &want);
        assert!(d < 1e-5, "CG trial {trial}: infer differs by {d}");
    }
}

#[test]
fn infer_matches_tape_on_mixed_operands() {
    // The deployment mode: precomputed database CG against a plain query.
    let mut rng = StdRng::seed_from_u64(43);
    let mut scratch = InferScratch::new();
    let mut got = Vec::new();
    for trial in 0..10 {
        let (net, store) = new_net(400 + trial, 3, 6, 2);
        let g = molecule_like(&mut rng, 10, 2, 4, 3);
        let q = molecule_like(&mut rng, 7, 2, 4, 3);
        let xi = CrossInput::compressed(&CompressedGnnGraph::build(&g, 2), &net.cfg);
        let yi = CrossInput::plain(&q, &net.cfg);
        let want = tape_pair(&net, &store, &xi, &yi);
        net.infer_pair(&store, &xi, &yi, &mut scratch, &mut got);
        let d = max_diff(&got, &want);
        assert!(d < 1e-5, "mixed trial {trial}: infer differs by {d}");
    }
}

#[test]
fn scratch_reuse_does_not_leak_state_between_pairs() {
    // Reusing one scratch across many differently-sized pairs must give the
    // same answers as a fresh scratch per pair.
    let mut rng = StdRng::seed_from_u64(44);
    let (net, store) = new_net(500, 3, 6, 2);
    let pairs: Vec<(CrossInput, CrossInput)> = (0..8)
        .map(|i| {
            let g = molecule_like(&mut rng, 4 + i * 2, 2, 4, 3);
            let q = erdos_renyi(&mut rng, 3 + i, 5, 3);
            (
                CrossInput::plain(&g, &net.cfg),
                CrossInput::plain(&q, &net.cfg),
            )
        })
        .collect();
    let mut shared = InferScratch::new();
    let mut got = Vec::new();
    for (xi, yi) in &pairs {
        net.infer_pair(&store, xi, yi, &mut shared, &mut got);
        let mut fresh = InferScratch::new();
        let mut want = Vec::new();
        net.infer_pair(&store, xi, yi, &mut fresh, &mut want);
        assert_eq!(got, want, "scratch reuse changed the embedding");
    }
    // Determinism for a fixed pair (tiny sanity anchor for the cache).
    let mut a = Vec::new();
    let mut b = Vec::new();
    net.infer_pair(&store, &pairs[0].0, &pairs[0].1, &mut shared, &mut a);
    net.infer_pair(&store, &pairs[0].0, &pairs[0].1, &mut shared, &mut b);
    assert_eq!(a, b);
    let _ = rng.gen_range(0..2); // keep rng used symmetrically
}
