//! Theorem 2/3/4 as property tests over layer counts, dims, and structural
//! families, plus HAG correctness.

use lan_gnn::gin::{agg_matrix, GnnConfig};
use lan_gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput, HagPlan};
use lan_graph::generators::{control_flow_like, molecule_like, power_law_like};
use lan_graph::Graph;
use lan_tensor::{Matrix, ParamStore, Tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_family_graph(rng: &mut StdRng, n: usize, labels: u16) -> Graph {
    match rng.gen_range(0..3) {
        0 => molecule_like(rng, n, 2, 4, labels),
        1 => control_flow_like(rng, n, 0.2, 0.1, labels),
        _ => power_law_like(rng, n, 2, 1, labels),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Theorem 2 across L ∈ {1,2,3}, dims, and graph families.
    #[test]
    fn cg_equivalence_all_depths(
        seed in any::<u64>(),
        layers in 1usize..4,
        dim in 2usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = 3u16;
        let g = random_family_graph(&mut rng, 3 + (seed % 12) as usize, labels);
        let q = random_family_graph(&mut rng, 3 + (seed % 7) as usize, labels);
        let cfg = GnnConfig::uniform(labels as usize, dim, layers);
        let mut store = ParamStore::new();
        let net = CrossGraphNet::new(&mut rng, &mut store, cfg.clone());

        let mut t1 = Tape::new();
        let plain = net.forward(
            &mut t1, &store,
            &CrossInput::plain(&g, &cfg),
            &CrossInput::plain(&q, &cfg),
        );
        let mut t2 = Tape::new();
        let comp = net.forward(
            &mut t2, &store,
            &CrossInput::compressed(&CompressedGnnGraph::build(&g, layers), &cfg),
            &CrossInput::compressed(&CompressedGnnGraph::build(&q, layers), &cfg),
        );
        let d = t1.value(plain.h_pair).max_abs_diff(t2.value(comp.h_pair));
        prop_assert!(d < 1e-4, "L={} dim={}: differ by {}", layers, dim, d);
        // Theorem 3 / Corollary 1.
        prop_assert!(t2.flops() <= t1.flops());
    }

    /// Theorem 4: CG group structure is isomorphism-invariant (group size
    /// multisets per level match under permutation).
    #[test]
    fn cg_isomorphism_invariant(seed in any::<u64>(), n in 2usize..14) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_family_graph(&mut rng, n, 3);
        let mut perm: Vec<u32> = (0..g.node_count() as u32).collect();
        perm.shuffle(&mut rng);
        let p = g.permute(&perm);
        let cg1 = CompressedGnnGraph::build(&g, 2);
        let cg2 = CompressedGnnGraph::build(&p, 2);
        for l in 0..=2usize {
            let mut s1 = cg1.levels[l].group_sizes.clone();
            let mut s2 = cg2.levels[l].group_sizes.clone();
            s1.sort_unstable();
            s2.sort_unstable();
            prop_assert_eq!(s1, s2, "level {} group sizes differ", l);
        }
    }

    /// HAG aggregation is exact for arbitrary features.
    #[test]
    fn hag_exactness(seed in any::<u64>(), n in 1usize..20, d in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_family_graph(&mut rng, n, 3);
        let plan = HagPlan::build(&g);
        let h = Matrix::from_fn(n, d, |_, _| rng.gen_range(-2.0..2.0));
        let fast = plan.aggregate(&h);
        let naive = agg_matrix(&g).matmul(&h);
        prop_assert!(fast.max_abs_diff(&naive) < 1e-3);
        prop_assert!(plan.planned_adds() <= HagPlan::naive_adds(&g));
    }

    /// The CG of a graph where every node has a unique label is exactly the
    /// GNN-graph (no compression possible), and flops match the plain
    /// forward.
    #[test]
    fn unique_labels_no_compression(n in 2usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = lan_graph::GraphBuilder::new();
        for i in 0..n {
            b.add_node(i as u16);
        }
        for i in 1..n {
            let j = rng.gen_range(0..i);
            b.add_edge(i as u32, j as u32).unwrap();
        }
        let g = b.build();
        let cg = CompressedGnnGraph::build(&g, 2);
        for l in 0..=2usize {
            prop_assert_eq!(cg.groups_at(l), n);
        }
    }
}
