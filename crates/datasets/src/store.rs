//! On-disk codec for [`Dataset`]: spec, database graphs, queries, split.
//!
//! The whole generated dataset is persisted rather than regenerated at
//! load: generation runs the expensive perturbation + GED machinery, and
//! the loaded index must serve queries against *exactly* the graphs the
//! models were trained on — regeneration under a drifted generator would
//! silently break the bit-identity contract.

use crate::dataset::{Dataset, WorkloadSplit};
use crate::spec::{DatasetSpec, Family};
use lan_ged::GedMethod;
use lan_graph::Graph;
use lan_store::{Dec, Enc, StoreError};

fn encode_family(f: Family) -> u8 {
    match f {
        Family::Molecule => 0,
        Family::ControlFlow => 1,
        Family::PowerLaw => 2,
    }
}

fn decode_family(tag: u8) -> Result<Family, StoreError> {
    match tag {
        0 => Ok(Family::Molecule),
        1 => Ok(Family::ControlFlow),
        2 => Ok(Family::PowerLaw),
        t => Err(StoreError::corrupt(format!(
            "unknown dataset family tag {t}"
        ))),
    }
}

fn encode_metric(m: &GedMethod, enc: &mut Enc) {
    // Tag byte + one u64 payload (unused variants write 0) keeps the
    // layout fixed-width and future variants append-only.
    let (tag, payload): (u8, u64) = match m {
        GedMethod::Exact { timeout_ms } => (0, *timeout_ms),
        GedMethod::Hungarian => (1, 0),
        GedMethod::Vj => (2, 0),
        GedMethod::Beam { width } => (3, *width as u64),
        GedMethod::BestOfThree { beam_width } => (4, *beam_width as u64),
    };
    enc.put_u8(tag);
    enc.put_u64(payload);
}

fn decode_metric(dec: &mut Dec<'_>) -> Result<GedMethod, StoreError> {
    let tag = dec.get_u8()?;
    let payload = dec.get_u64()?;
    match tag {
        0 => Ok(GedMethod::Exact {
            timeout_ms: payload,
        }),
        1 => Ok(GedMethod::Hungarian),
        2 => Ok(GedMethod::Vj),
        3 => Ok(GedMethod::Beam {
            width: payload as usize,
        }),
        4 => Ok(GedMethod::BestOfThree {
            beam_width: payload as usize,
        }),
        t => Err(StoreError::corrupt(format!("unknown GED method tag {t}"))),
    }
}

/// Resolves a decoded dataset name back to `&'static str`. Preset names
/// map to the canonical literals; anything else leaks — dataset names are
/// few and load-once, so the leak is bounded and intentional (the spec
/// field is `&'static str` throughout the workspace).
fn intern_name(name: &str) -> &'static str {
    match name {
        "AIDS" => "AIDS",
        "LINUX" => "LINUX",
        "PUBCHEM" => "PUBCHEM",
        "SYN" => "SYN",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

impl DatasetSpec {
    /// Serializes every spec field.
    pub fn store_encode(&self, enc: &mut Enc) {
        enc.put_str(self.name);
        enc.put_u8(encode_family(self.family));
        enc.put_u64(self.num_graphs as u64);
        enc.put_u16(self.num_labels);
        enc.put_u64(self.avg_nodes as u64);
        enc.put_f64(self.density);
        enc.put_u64(self.family_size as u64);
        enc.put_u64(self.num_queries as u64);
        encode_metric(&self.metric, enc);
        enc.put_u64(self.seed);
    }

    /// Decodes a spec written by [`DatasetSpec::store_encode`].
    pub fn store_decode(dec: &mut Dec<'_>) -> Result<DatasetSpec, StoreError> {
        let name = intern_name(dec.get_str()?);
        let family = decode_family(dec.get_u8()?)?;
        let num_graphs = dec.get_u64()? as usize;
        let num_labels = dec.get_u16()?;
        let avg_nodes = dec.get_u64()? as usize;
        let density = dec.get_f64()?;
        let family_size = dec.get_u64()? as usize;
        let num_queries = dec.get_u64()? as usize;
        let metric = decode_metric(dec)?;
        let seed = dec.get_u64()?;
        Ok(DatasetSpec {
            name,
            family,
            num_graphs,
            num_labels,
            avg_nodes,
            density,
            family_size,
            num_queries,
            metric,
            seed,
        })
    }
}

fn encode_graphs(graphs: &[Graph], enc: &mut Enc) {
    enc.put_u64(graphs.len() as u64);
    for g in graphs {
        g.store_encode(enc);
    }
}

fn decode_graphs(dec: &mut Dec<'_>) -> Result<Vec<Graph>, StoreError> {
    let n = dec.get_u64()? as usize;
    // A corrupt count cannot allocate unboundedly: decoding fails as soon
    // as the stream runs dry, and with_capacity is clamped to something a
    // hostile count cannot abuse.
    let mut graphs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        graphs.push(Graph::store_decode(dec)?);
    }
    Ok(graphs)
}

fn encode_ids(ids: &[usize], enc: &mut Enc) {
    let as_u64: Vec<u64> = ids.iter().map(|&i| i as u64).collect();
    enc.put_u64_slice(&as_u64);
}

fn decode_ids(dec: &mut Dec<'_>, bound: usize, what: &str) -> Result<Vec<usize>, StoreError> {
    let raw = dec.get_u64_slice()?;
    let ids: Vec<usize> = raw.iter().map(|&i| i as usize).collect();
    if ids.iter().any(|&i| i >= bound) {
        return Err(StoreError::corrupt(format!(
            "{what} split references a query id >= {bound}"
        )));
    }
    Ok(ids)
}

impl Dataset {
    /// Serializes the full dataset: spec, database, queries, split.
    pub fn store_encode(&self, enc: &mut Enc) {
        self.spec.store_encode(enc);
        encode_graphs(&self.graphs, enc);
        encode_graphs(&self.queries, enc);
        encode_ids(&self.split.train, enc);
        encode_ids(&self.split.val, enc);
        encode_ids(&self.split.test, enc);
    }

    /// Decodes and validates a dataset written by
    /// [`Dataset::store_encode`].
    pub fn store_decode(dec: &mut Dec<'_>) -> Result<Dataset, StoreError> {
        let spec = DatasetSpec::store_decode(dec)?;
        let graphs = decode_graphs(dec)?;
        let queries = decode_graphs(dec)?;
        let nq = queries.len();
        let split = WorkloadSplit {
            train: decode_ids(dec, nq, "train")?,
            val: decode_ids(dec, nq, "val")?,
            test: decode_ids(dec, nq, "test")?,
        };
        Ok(Dataset {
            spec,
            graphs,
            queries,
            split,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_store::{Archive, Writer};

    fn round_trip_bytes(enc: Enc) -> Archive {
        let mut w = Writer::new();
        w.add_section("ds", enc);
        Archive::from_bytes(&w.to_bytes()).unwrap()
    }

    #[test]
    fn dataset_round_trips_bit_identically() {
        let d = Dataset::generate(DatasetSpec::syn().with_graphs(40).with_queries(10));
        let mut enc = Enc::new();
        d.store_encode(&mut enc);
        let a = round_trip_bytes(enc);
        let mut dec = a.section("ds").unwrap();
        let back = Dataset::store_decode(&mut dec).unwrap();
        dec.expect_end().unwrap();
        assert_eq!(back.graphs, d.graphs);
        assert_eq!(back.queries, d.queries);
        assert_eq!(back.split.train, d.split.train);
        assert_eq!(back.split.val, d.split.val);
        assert_eq!(back.split.test, d.split.test);
        assert_eq!(back.spec.name, d.spec.name);
        assert_eq!(back.spec.num_labels, d.spec.num_labels);
        assert_eq!(back.spec.seed, d.spec.seed);
        assert_eq!(back.spec.metric, d.spec.metric);
        // Signatures survive (the decode path rebuilds them from parts).
        for (g, h) in back.graphs.iter().zip(&d.graphs) {
            assert!(g.signature() == h.signature());
        }
    }

    #[test]
    fn every_metric_variant_round_trips() {
        for m in [
            GedMethod::Exact { timeout_ms: 250 },
            GedMethod::Hungarian,
            GedMethod::Vj,
            GedMethod::Beam { width: 7 },
            GedMethod::BestOfThree { beam_width: 16 },
        ] {
            let mut enc = Enc::new();
            encode_metric(&m, &mut enc);
            let a = round_trip_bytes(enc);
            let mut dec = a.section("ds").unwrap();
            assert_eq!(decode_metric(&mut dec).unwrap(), m);
        }
    }

    #[test]
    fn bad_family_and_split_are_typed() {
        // Unknown family tag.
        let mut enc = Enc::new();
        enc.put_str("X");
        enc.put_u8(9);
        let a = round_trip_bytes(enc);
        let mut dec = a.section("ds").unwrap();
        assert!(matches!(
            DatasetSpec::store_decode(&mut dec),
            Err(StoreError::Corrupt { .. })
        ));

        // Split id beyond the query count.
        let d = Dataset::generate(DatasetSpec::syn().with_graphs(12).with_queries(4));
        let mut bad = d.clone();
        bad.split.test = vec![99];
        let mut enc = Enc::new();
        bad.store_encode(&mut enc);
        let a = round_trip_bytes(enc);
        let mut dec = a.section("ds").unwrap();
        assert!(matches!(
            Dataset::store_decode(&mut dec),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
