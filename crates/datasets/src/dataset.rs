//! Dataset generation: database graphs, query workload, and splits.

use crate::spec::{DatasetSpec, Family};
use lan_ged::engine::ged;
use lan_graph::generators::{control_flow_like, molecule_like, power_law_like};
use lan_graph::perturb::perturb;
use lan_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Train/validation/test query split (paper: 6:2:2).
#[derive(Debug, Clone)]
pub struct WorkloadSplit {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

/// A generated dataset: database, queries, and split.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub spec: DatasetSpec,
    pub graphs: Vec<Graph>,
    pub queries: Vec<Graph>,
    pub split: WorkloadSplit,
}

fn base_graph(rng: &mut StdRng, spec: &DatasetSpec) -> Graph {
    // Node counts jitter ±40% around the Table I average.
    let lo = (spec.avg_nodes as f64 * 0.6).max(3.0) as usize;
    let hi = (spec.avg_nodes as f64 * 1.4) as usize + 1;
    let n = rng.gen_range(lo..=hi.max(lo + 1));
    match spec.family {
        Family::Molecule => {
            let extra = rng.gen_range(0..=(spec.density * 2.0) as usize + 1);
            molecule_like(rng, n, extra, 4, spec.num_labels)
        }
        Family::ControlFlow => {
            control_flow_like(rng, n, spec.density * 4.0, spec.density, spec.num_labels)
        }
        Family::PowerLaw => {
            let extra = rng.gen_range(0..=(spec.density * 3.0) as usize + 1);
            power_law_like(rng, n, 2, extra, spec.num_labels)
        }
    }
}

/// SplitMix64 finalizer — a bijective 64-bit mixer. Used to derive
/// statistically independent per-stream RNG seeds from `(seed, salt, i)`
/// so each perturbation family / query owns its own random stream and can
/// be generated in any order (or in parallel) without changing the output.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An independent RNG stream for item `i` of the `salt`-tagged phase.
/// Double mixing keeps streams with nearby `(seed, i)` pairs decorrelated.
fn stream_rng(seed: u64, salt: u64, i: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(splitmix64(seed ^ salt).wrapping_add(i)))
}

const SALT_DB: u64 = 0x4C41_4E00_6462; // "LAN\0db"
const SALT_QUERY: u64 = 0x4C41_4E00_7175; // "LAN\0qu"
const SALT_SPLIT: u64 = 0x4C41_4E00_7370; // "LAN\0sp"

impl Dataset {
    /// Generates the full dataset deterministically from `spec.seed`.
    ///
    /// Database graphs come in perturbation families (a base graph plus
    /// `family_size - 1` edit-perturbed variants) — the scaffold-cluster
    /// structure of real compound databases that makes both the proximity
    /// graph and the learned neighborhood models meaningful. Queries are
    /// sampled from the database and lightly perturbed, following the
    /// workload protocol of [9] (paper §VII).
    pub fn generate(spec: DatasetSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut graphs: Vec<Graph> = Vec::with_capacity(spec.num_graphs);
        while graphs.len() < spec.num_graphs {
            let base = base_graph(&mut rng, &spec);
            graphs.push(base.clone());
            let members = (spec.family_size - 1).min(spec.num_graphs - graphs.len());
            for _ in 0..members {
                let t = rng.gen_range(1..=6);
                let (p, _) = perturb(&mut rng, &base, t, spec.num_labels);
                graphs.push(p);
            }
        }
        graphs.truncate(spec.num_graphs);

        let mut queries = Vec::with_capacity(spec.num_queries);
        for _ in 0..spec.num_queries {
            let i = rng.gen_range(0..graphs.len());
            let t = rng.gen_range(1..=4);
            let (q, _) = perturb(&mut rng, &graphs[i], t, spec.num_labels);
            queries.push(q);
        }

        // 6:2:2 split over a shuffled index list.
        let mut idx: Vec<usize> = (0..queries.len()).collect();
        use rand::seq::SliceRandom;
        idx.shuffle(&mut rng);
        let n_train = queries.len() * 6 / 10;
        let n_val = queries.len() * 2 / 10;
        let split = WorkloadSplit {
            train: idx[..n_train].to_vec(),
            val: idx[n_train..n_train + n_val].to_vec(),
            test: idx[n_train + n_val..].to_vec(),
        };

        Dataset {
            spec,
            graphs,
            queries,
            split,
        }
    }

    /// Parallel, seed-deterministic generation for the scale tiers.
    ///
    /// Same workload protocol as [`Self::generate`], but every
    /// perturbation family and every query draws from its own
    /// splitmix64-derived RNG stream instead of one serial stream, so
    /// generation parallelizes over families with output **bit-identical
    /// at any thread count and under any `LAN_SCHED` scheduler** (the
    /// parallel helpers are order-preserving and each stream is a pure
    /// function of `(spec.seed, salt, index)`).
    ///
    /// The per-stream scheme is a *different* deterministic instance than
    /// the single-stream [`Self::generate`] for the same seed — existing
    /// fixtures, store cache keys, and committed baselines keyed on
    /// `generate` are untouched. Scale benchmarks use this scheme
    /// exclusively.
    pub fn generate_par(spec: DatasetSpec) -> Self {
        let fam = spec.family_size.max(1);
        let num_families = spec.num_graphs.div_ceil(fam);
        let families: Vec<Vec<Graph>> =
            lan_par::par_map_indices_dyn(num_families, lan_par::Grain::Auto, |f| {
                let mut rng = stream_rng(spec.seed, SALT_DB, f as u64);
                let count = fam.min(spec.num_graphs - f * fam);
                let base = base_graph(&mut rng, &spec);
                let mut out = Vec::with_capacity(count);
                out.push(base.clone());
                for _ in 1..count {
                    let t = rng.gen_range(1..=6);
                    let (p, _) = perturb(&mut rng, &base, t, spec.num_labels);
                    out.push(p);
                }
                out
            });
        let graphs: Vec<Graph> = families.into_iter().flatten().collect();
        debug_assert_eq!(graphs.len(), spec.num_graphs);

        let queries: Vec<Graph> =
            lan_par::par_map_indices_dyn(spec.num_queries, lan_par::Grain::Auto, |qi| {
                let mut rng = stream_rng(spec.seed, SALT_QUERY, qi as u64);
                let i = rng.gen_range(0..graphs.len());
                let t = rng.gen_range(1..=4);
                perturb(&mut rng, &graphs[i], t, spec.num_labels).0
            });

        let mut idx: Vec<usize> = (0..queries.len()).collect();
        use rand::seq::SliceRandom;
        idx.shuffle(&mut stream_rng(spec.seed, SALT_SPLIT, 0));
        let n_train = queries.len() * 6 / 10;
        let n_val = queries.len() * 2 / 10;
        let split = WorkloadSplit {
            train: idx[..n_train].to_vec(),
            val: idx[n_train..n_train + n_val].to_vec(),
            test: idx[n_train + n_val..].to_vec(),
        };

        Dataset {
            spec,
            graphs,
            queries,
            split,
        }
    }

    /// The operational distance between a query graph and database graph
    /// `id` (see [`DatasetSpec::metric`]). Total even under
    /// `GedMethod::Exact`: a timeout falls back to the approximate
    /// [`Self::fallback_metric`] (counted in `ged.timeout_fallback`)
    /// instead of panicking mid-query.
    pub fn distance(&self, q: &Graph, id: u32) -> f64 {
        self.total_ged(q, &self.graphs[id as usize])
    }

    /// Symmetric operational distance between two database graphs
    /// (index-construction time). Total, like [`Self::distance`].
    pub fn pair_distance(&self, a: u32, b: u32) -> f64 {
        self.total_ged(&self.graphs[a as usize], &self.graphs[b as usize])
    }

    /// The approximate metric a timed-out (or fault-injected) operational
    /// distance falls back to. BestOfThree is total and, per the paper's
    /// ground-truth protocol, the tightest cheap upper bound available.
    pub fn fallback_metric(&self) -> lan_ged::GedMethod {
        lan_ged::GedMethod::BestOfThree { beam_width: 16 }
    }

    /// The operational distance, with the approximate fallback applied to
    /// any `Exact` timeout. Never panics.
    fn total_ged(&self, a: &Graph, b: &Graph) -> f64 {
        match ged(a, b, &self.spec.metric) {
            Some(d) => d,
            None => {
                lan_obs::counter(lan_obs::names::GED_TIMEOUT_FALLBACK).inc();
                ged(a, b, &self.fallback_metric()).expect("BestOfThree is total")
            }
        }
    }

    /// The distance between a query and database graph `id` under the
    /// approximate fallback metric — what the fault-injection policy uses
    /// when the primary computation faults twice.
    pub fn distance_fallback(&self, q: &Graph, id: u32) -> f64 {
        ged(q, &self.graphs[id as usize], &self.fallback_metric()).expect("BestOfThree is total")
    }

    /// Threshold-gated operational distance: the GED kernel cascade
    /// ([`lan_ged::ged_within`]) may answer with an admissible lower bound
    /// `GedBound::AtLeast(lb)` (`tau <= lb <=` true distance) instead of a
    /// full solve. An `Exact` answer is bit-identical to
    /// [`Self::distance`], including the timeout fallback, so callers can
    /// mix the two freely. Total, never panics.
    ///
    /// The signature bounds are lower bounds on the *true* GED while the
    /// operational metric may be an upper-bounding approximation; since
    /// `lb <= true <= approx`, a bound that clears `tau` clears it for the
    /// operational distance too, so the cascade stays admissible for every
    /// [`lan_ged::GedMethod`].
    pub fn distance_within(&self, q: &Graph, id: u32, tau: f64) -> lan_ged::GedBound {
        self.distance_within_outcome(q, id, tau).0
    }

    /// [`Self::distance_within`] plus the [`lan_ged::CascadeOutcome`] that
    /// settled the call (per-query EXPLAIN attribution). A timeout
    /// fallback ran a full approximate solve, so it reports `FullSolve`.
    pub fn distance_within_outcome(
        &self,
        q: &Graph,
        id: u32,
        tau: f64,
    ) -> (lan_ged::GedBound, lan_ged::CascadeOutcome) {
        match lan_ged::ged_within_outcome(q, &self.graphs[id as usize], tau, &self.spec.metric) {
            Some(b) => b,
            None => {
                lan_obs::counter(lan_obs::names::GED_TIMEOUT_FALLBACK).inc();
                (
                    lan_ged::GedBound::Exact(
                        ged(q, &self.graphs[id as usize], &self.fallback_metric())
                            .expect("BestOfThree is total"),
                    ),
                    lan_ged::CascadeOutcome::FullSolve,
                )
            }
        }
    }

    /// Average node count over the database.
    pub fn avg_nodes(&self) -> f64 {
        self.graphs.iter().map(|g| g.node_count()).sum::<usize>() as f64 / self.graphs.len() as f64
    }

    /// Average edge count over the database.
    pub fn avg_edges(&self) -> f64 {
        self.graphs.iter().map(|g| g.edge_count()).sum::<usize>() as f64 / self.graphs.len() as f64
    }

    /// Number of distinct labels actually used.
    pub fn distinct_labels(&self) -> usize {
        let mut ls: Vec<u16> = self
            .graphs
            .iter()
            .flat_map(|g| g.labels().iter().copied())
            .collect();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }

    /// Brute-force k-NN of `q` under the operational distance — the ground
    /// truth for recall@k. Parallelized over the database (`LAN_THREADS`
    /// overrides the worker count, see `lan-par`).
    /// The scan runs the GED kernel cascade, filter-verify style:
    /// candidates are visited in ascending signature-lower-bound order (an
    /// `O(n)` pass over precomputed signatures), so the near graphs are
    /// solved first and the k-th best distance tightens immediately; it is
    /// then frozen as the threshold `t` for each subsequent fixed-size
    /// chunk, and a candidate whose cascade bound *strictly* exceeds `t`
    /// is skipped without a full solve. Since the final k-th distance can
    /// only be `<= t` and ties at `t` are re-solved exactly, the returned
    /// list is identical to the full scan in any order — only
    /// `ged.full_evals` drops.
    pub fn ground_truth_knn(&self, q: &Graph, k: usize) -> Vec<(f64, u32)> {
        self.ground_truth_knn_ordered(q, k, None)
    }

    /// [`Self::ground_truth_knn`] with an optional per-graph visit-order
    /// refinement — the ground-truth consumer of the quantized prefilter
    /// tier.
    ///
    /// `extra_keys[i]` is any estimate of the distance to graph `i`
    /// (calibrated quantized surrogates in practice); when present, the
    /// visit order sorts lexicographically by `(signature lower bound,
    /// extra_keys[i], id)`. The admissible lower bound stays the primary
    /// key — it is integer-valued under unit-cost GED, so its tie classes
    /// are large — and the estimate only refines the order *within* a tie
    /// class, where the bound carries no signal and the plain scan falls
    /// back to id order; a noisy estimate therefore cannot degrade the
    /// lower-bound order itself.
    ///
    /// Result identity for **any** `extra_keys` — even adversarial ones —
    /// holds because skip decisions are made *only* by the admissible
    /// cascade against the frozen threshold, never by the estimates: a
    /// candidate is dropped only with a certificate `lb > t >= t_final`,
    /// and everything else is solved exactly. The property tests pin the
    /// identity on random and reversed keys.
    ///
    /// A note on what visit order can and cannot buy here: for a
    /// non-aborting solver (Hungarian and friends) the ascending-lb order
    /// is provably optimal — every candidate whose bound does not exceed
    /// the final threshold must be solved in *any* order, and the lb order
    /// solves nothing else — and with the tau-aborting exact solver,
    /// measurement puts even the oracle ascending-true-distance order at
    /// cost parity with the lb order, because the threshold converges
    /// during the mandatory warm-up (the first `⌈k/CHUNK⌉` chunks run
    /// ungated). The scan's real full-eval savings over its PR-5 form come
    /// from the threshold-boundary handling below, which resolves `lb == t`
    /// candidates with a nudged threshold instead of an unbounded solve.
    pub fn ground_truth_knn_ordered(
        &self,
        q: &Graph,
        k: usize,
        extra_keys: Option<&[f64]>,
    ) -> Vec<(f64, u32)> {
        const CHUNK: usize = 8;
        let n = self.graphs.len();
        if let Some(xs) = extra_keys {
            assert_eq!(xs.len(), n, "extra_keys must cover the database");
            lan_obs::counter(lan_obs::names::QUANT_REORDER_USED).inc();
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut keys: Vec<(f64, f64)> = Vec::with_capacity(n);
        keys.extend(self.graphs.iter().enumerate().map(|(i, g)| {
            let lb = lan_ged::lower_bounds::label_size_lb(q, g)
                .max(lan_ged::lower_bounds::label_degree_lb(q, g));
            // total_cmp makes a NaN estimate an ordinary (late) sort key.
            (lb, extra_keys.map_or(0.0, |xs| xs[i]))
        }));
        order.sort_by(|&a, &b| {
            let (ka, kb) = (keys[a as usize], keys[b as usize]);
            ka.0.total_cmp(&kb.0)
                .then(ka.1.total_cmp(&kb.1))
                .then(a.cmp(&b))
        });
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + CHUNK);
        for chunk_ids in order.chunks(CHUNK) {
            // Frozen for the whole chunk: a strict improvement mid-chunk
            // cannot un-skip anything (the threshold only tightens).
            let t = if best.len() >= k {
                best[k - 1].0
            } else {
                f64::INFINITY
            };
            let chunk: Vec<Option<(f64, u32)>> =
                lan_par::par_map_indices_dyn(chunk_ids.len(), lan_par::Grain::Fine, |j| {
                    let i = chunk_ids[j];
                    if t.is_finite() {
                        match self.distance_within(q, i, t) {
                            lan_ged::GedBound::Exact(d) => Some((d, i)),
                            // lb > t: the true distance is strictly beyond the
                            // frozen k-th and the final k-th is <= t, so `i`
                            // cannot enter the top-k even through id ties.
                            lan_ged::GedBound::AtLeast(lb) if lb > t => None,
                            // lb == t could still tie its way in. Re-resolve
                            // with the threshold nudged just past t: a genuine
                            // tie (d == t) comes back Exact and is kept, while
                            // d > t aborts again with a certificate lb > t —
                            // far cheaper than the unbounded re-solve, which
                            // paid a full evaluation for every boundary abort.
                            // An Exact(d) with t < d < t+1 is harmless: the
                            // final sort-and-truncate discards it.
                            lan_ged::GedBound::AtLeast(_) => {
                                match self.distance_within(q, i, t + 1.0) {
                                    lan_ged::GedBound::Exact(d) => Some((d, i)),
                                    lan_ged::GedBound::AtLeast(_) => None,
                                }
                            }
                        }
                    } else {
                        Some((self.distance(q, i), i))
                    }
                });
            best.extend(chunk.into_iter().flatten());
            best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            best.truncate(k);
        }
        best
    }
}

/// recall@k (paper §VII): `|R ∩ R'| / k`.
pub fn recall_at_k(result: &[u32], truth: &[u32], k: usize) -> f64 {
    let ts: std::collections::HashSet<u32> = truth.iter().take(k).copied().collect();
    result.iter().take(k).filter(|id| ts.contains(id)).count() as f64 / k as f64
}

/// Tie-aware recall@k: a returned candidate counts as a hit when its
/// distance does not exceed the true k-th NN distance.
///
/// Integer-valued GED produces heavy distance ties (entire tie groups
/// straddle the k boundary), under which id-based recall penalizes a router
/// for returning a *different but equally near* neighbor. Tie-aware recall
/// is the standard fix and the metric used by the experiment harness.
pub fn recall_at_k_ties(results: &[(f64, u32)], truth_kth_dist: f64, k: usize) -> f64 {
    results
        .iter()
        .take(k)
        .filter(|&&(d, _)| d <= truth_kth_dist + 1e-9)
        .count() as f64
        / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn tiny(spec: DatasetSpec) -> Dataset {
        Dataset::generate(spec.with_graphs(60).with_queries(20))
    }

    #[test]
    fn generation_counts() {
        let d = tiny(DatasetSpec::aids());
        assert_eq!(d.graphs.len(), 60);
        assert_eq!(d.queries.len(), 20);
        assert_eq!(d.split.train.len(), 12);
        assert_eq!(d.split.val.len(), 4);
        assert_eq!(d.split.test.len(), 4);
        // Splits are disjoint and cover 0..20.
        let mut all: Vec<usize> = d
            .split
            .train
            .iter()
            .chain(&d.split.val)
            .chain(&d.split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let d1 = tiny(DatasetSpec::syn());
        let d2 = tiny(DatasetSpec::syn());
        assert_eq!(d1.graphs, d2.graphs);
        assert_eq!(d1.queries, d2.queries);
    }

    #[test]
    fn stats_near_table1_targets() {
        for spec in [
            DatasetSpec::aids(),
            DatasetSpec::linux(),
            DatasetSpec::pubchem(),
            DatasetSpec::syn(),
        ] {
            let target_nodes = spec.avg_nodes as f64;
            let labels = spec.num_labels as usize;
            let d = Dataset::generate(spec.with_graphs(120).with_queries(5));
            let avg = d.avg_nodes();
            assert!(
                (avg - target_nodes).abs() / target_nodes < 0.25,
                "{}: avg nodes {avg} vs target {target_nodes}",
                d.spec.name
            );
            assert!(d.avg_edges() >= avg * 0.8, "{}: too sparse", d.spec.name);
            assert!(d.distinct_labels() <= labels);
        }
    }

    #[test]
    fn distance_zero_for_identical() {
        let d = tiny(DatasetSpec::syn());
        let g = d.graphs[3].clone();
        assert_eq!(d.distance(&g, 3), 0.0);
    }

    #[test]
    fn ground_truth_sorted_and_consistent() {
        let d = tiny(DatasetSpec::syn());
        let q = &d.queries[0];
        let gt = d.ground_truth_knn(q, 5);
        assert_eq!(gt.len(), 5);
        assert!(gt.windows(2).all(|w| w[0].0 <= w[1].0));
        // Parallel scan equals serial scan.
        let mut serial: Vec<(f64, u32)> = (0..d.graphs.len())
            .map(|i| (d.distance(q, i as u32), i as u32))
            .collect();
        serial.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        serial.truncate(5);
        assert_eq!(gt, serial);
    }

    #[test]
    fn cascade_ground_truth_matches_full_scan() {
        // The chunked threshold cascade must be invisible in the output:
        // same neighbors, same distances, same tie-breaks as a full scan,
        // across k values that exercise empty, partial, and saturated
        // threshold regimes (k > CHUNK prefix, ties at the threshold).
        let d = tiny(DatasetSpec::syn());
        let mut serial: Vec<(f64, u32)> = Vec::new();
        for qi in [0usize, 3, 7] {
            let q = &d.queries[qi];
            serial.clear();
            serial.extend((0..d.graphs.len()).map(|i| (d.distance(q, i as u32), i as u32)));
            serial.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for k in [1usize, 5, 17] {
                let gt = d.ground_truth_knn(q, k);
                assert_eq!(gt, serial[..k], "q={qi} k={k}");
            }
        }
    }

    #[test]
    fn ordered_ground_truth_is_order_independent() {
        // The quantized reordering contract: the returned list — including
        // the final k-th distance, i.e. the running threshold at scan end —
        // is identical for ANY extra-key vector, because skip decisions
        // come only from the admissible cascade. Random keys model a
        // plausible surrogate; reversed-lb keys are adversarial (worst
        // possible visit order); constant keys are a degenerate no-op.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let d = tiny(DatasetSpec::syn());
        let n = d.graphs.len();
        let mut rng = StdRng::seed_from_u64(17);
        for qi in [0usize, 4, 9] {
            let q = &d.queries[qi];
            for k in [1usize, 5, 12] {
                let plain = d.ground_truth_knn(q, k);
                let random: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..30.0)).collect();
                // The tie-break key `-d(q, i)` visits the *farthest*
                // member of every lower-bound tie class first — the worst
                // possible refinement (the threshold tightens as late as
                // the composition allows).
                let reversed: Vec<f64> = (0..n as u32).map(|i| -d.distance(q, i)).collect();
                let constant = vec![0.0f64; n];
                for (name, keys) in [
                    ("random", &random),
                    ("reversed", &reversed),
                    ("constant", &constant),
                ] {
                    let got = d.ground_truth_knn_ordered(q, k, Some(keys));
                    assert_eq!(got, plain, "q={qi} k={k} keys={name}");
                }
            }
        }
    }

    #[test]
    fn distance_within_is_admissible_and_exact_compatible() {
        let d = tiny(DatasetSpec::syn());
        let q = &d.queries[1];
        for id in 0..20u32 {
            let exact = d.distance(q, id);
            for tau in [0.0, 1.0, exact, exact + 1.0] {
                match d.distance_within(q, id, tau) {
                    // An exact answer must be the operational distance,
                    // bit for bit.
                    lan_ged::GedBound::Exact(e) => assert_eq!(e.to_bits(), exact.to_bits()),
                    // A bound must clear tau and stay admissible (lb is a
                    // lower bound on the true GED, which the operational
                    // metric upper-bounds).
                    lan_ged::GedBound::AtLeast(lb) => {
                        assert!(lb >= tau, "bound below tau: {lb} < {tau}");
                        assert!(lb <= exact, "inadmissible bound: {lb} > {exact}");
                    }
                }
            }
            // tau beyond the operational distance can never be cleared by
            // an admissible bound: the cascade must solve fully.
            assert!(matches!(
                d.distance_within(q, id, exact + 1.0),
                lan_ged::GedBound::Exact(_)
            ));
        }
    }

    #[test]
    fn queries_are_near_database() {
        // Perturbed queries should have a small nearest-neighbor distance.
        // Queries take 1..=4 edits, but the operational metric is an
        // approximation that can overestimate, and the exact draw depends
        // on the RNG stream — assert on the workload average, which is
        // robust to both.
        let d = tiny(DatasetSpec::aids());
        let avg: f64 = d
            .queries
            .iter()
            .map(|q| d.ground_truth_knn(q, 1)[0].0)
            .sum::<f64>()
            / d.queries.len() as f64;
        assert!(
            avg <= 10.0,
            "queries too far from database: avg NN distance {avg}"
        );
    }

    #[test]
    fn exact_timeout_falls_back_instead_of_panicking() {
        // An Exact metric with a zero timeout times out on any non-trivial
        // pair; distance() must recover with the approximate fallback.
        let mut d = tiny(DatasetSpec::syn());
        d.spec.metric = lan_ged::GedMethod::Exact { timeout_ms: 0 };
        let q = d.queries[0].clone();
        for id in 0..4u32 {
            let dist = d.distance(&q, id);
            assert!(dist.is_finite() && dist >= 0.0);
        }
        let p = d.pair_distance(0, 1);
        assert!(p.is_finite() && p >= 0.0);
        // The fallback is the documented approximate metric.
        let fb = d.distance_fallback(&q, 0);
        assert!(fb.is_finite() && fb >= 0.0);
    }

    #[test]
    fn recall_math() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[1, 2, 3], 3), 1.0);
        assert_eq!(recall_at_k(&[1, 9, 8], &[1, 2, 3], 3), 1.0 / 3.0);
        assert_eq!(recall_at_k(&[], &[1, 2], 2), 0.0);
    }
}
