//! Synthetic datasets, query workloads, and ground truth for the LAN
//! experiments.
//!
//! * [`spec`] — Table I-matched dataset specifications (AIDS / LINUX /
//!   PUBCHEM / SYN stand-ins) with the substitution rationale;
//! * [`dataset`] — deterministic generation, 6:2:2 query splits, the
//!   operational GED metric, parallel brute-force ground truth, and
//!   recall@k.

pub mod dataset;
pub mod spec;
pub mod store;

pub use dataset::{recall_at_k, recall_at_k_ties, Dataset, WorkloadSplit};
pub use spec::{DatasetSpec, Family};
