//! Dataset specifications matched to the paper's Table I.
//!
//! The real datasets (AIDS antivirus screen compounds, LINUX control-flow
//! graphs, PUBCHEM molecules, and the graphgen-generated SYN) are not
//! redistributable here, so each is replaced by a synthetic generator tuned
//! to Table I's statistics — label cardinality, average node/edge counts —
//! and to the structural family (sparse molecules, control-flow skeletons,
//! denser molecules, small power-law graphs). Sizes are scaled down by
//! default so every experiment reruns in minutes; scale with
//! [`DatasetSpec::with_graphs`].

use lan_ged::GedMethod;

/// The structural family a dataset draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Spanning tree + ring closures, valence-capped (AIDS, PUBCHEM).
    Molecule,
    /// Chain with branch diamonds and loop back-edges (LINUX).
    ControlFlow,
    /// Preferential attachment + random edges (SYN).
    PowerLaw,
}

/// Full description of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub family: Family,
    /// Number of database graphs (paper values: 42,687 / 47,239 / 22,794 /
    /// 1,000,000 — defaults here are laptop-scale).
    pub num_graphs: usize,
    /// Distinct node labels (Table I `#nlabel`).
    pub num_labels: u16,
    /// Target average node count (Table I `avg |V|`).
    pub avg_nodes: usize,
    /// Density knob: extra edges for molecules/power-law; scaled branch
    /// probability for control flow.
    pub density: f64,
    /// Database graphs are generated in perturbation families of this size,
    /// mimicking the scaffold clusters of real compound datasets.
    pub family_size: usize,
    /// Number of query graphs (the paper samples 4,000; scaled here).
    pub num_queries: usize,
    /// The operational distance served by the index. Exact GED is NP-hard,
    /// so the system serves an approximate GED — the paper's own ground
    /// truth protocol (best of VJ, Hungarian, and Beam); recall is measured
    /// against a brute-force scan under this same distance. The beam
    /// component keeps each distance computation genuinely expensive, which
    /// is the cost regime the whole paper operates in (their 20-ANN queries
    /// take ~40 s).
    pub metric: GedMethod,
    /// Base RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// AIDS-like: 51 labels, avg |V| ≈ 25.6, avg |E| ≈ 27.5.
    pub fn aids() -> Self {
        DatasetSpec {
            name: "AIDS",
            family: Family::Molecule,
            num_graphs: 400,
            num_labels: 51,
            avg_nodes: 25,
            density: 2.0,
            family_size: 8,
            num_queries: 60,
            metric: GedMethod::BestOfThree { beam_width: 4 },
            seed: 0xA1D5,
        }
    }

    /// LINUX-like: 36 labels, avg |V| ≈ 35.5, avg |E| ≈ 37.7.
    pub fn linux() -> Self {
        DatasetSpec {
            name: "LINUX",
            family: Family::ControlFlow,
            num_graphs: 400,
            num_labels: 36,
            avg_nodes: 35,
            density: 0.03,
            family_size: 8,
            num_queries: 60,
            metric: GedMethod::BestOfThree { beam_width: 4 },
            seed: 0x11AB,
        }
    }

    /// PUBCHEM-like: 10 labels, avg |V| ≈ 48.2, avg |E| ≈ 50.8.
    pub fn pubchem() -> Self {
        DatasetSpec {
            name: "PUBCHEM",
            family: Family::Molecule,
            num_graphs: 300,
            num_labels: 10,
            avg_nodes: 48,
            density: 2.5,
            family_size: 8,
            num_queries: 50,
            metric: GedMethod::BestOfThree { beam_width: 4 },
            seed: 0x9B1C,
        }
    }

    /// SYN-like: 5 labels, avg |V| ≈ 10.1, avg |E| ≈ 15.9.
    pub fn syn() -> Self {
        DatasetSpec {
            name: "SYN",
            family: Family::PowerLaw,
            num_graphs: 1500,
            num_labels: 5,
            avg_nodes: 10,
            density: 0.3,
            family_size: 10,
            num_queries: 60,
            metric: GedMethod::BestOfThree { beam_width: 4 },
            seed: 0x5111,
        }
    }

    /// All four presets.
    pub fn all() -> Vec<DatasetSpec> {
        vec![Self::aids(), Self::linux(), Self::pubchem(), Self::syn()]
    }

    /// Overrides the database size (e.g. for the SYN scalability sweep).
    pub fn with_graphs(mut self, n: usize) -> Self {
        self.num_graphs = n;
        self
    }

    /// Overrides the query count.
    pub fn with_queries(mut self, n: usize) -> Self {
        self.num_queries = n;
        self
    }

    /// Overrides the seed (for replicated runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the operational metric (tests use the cheap Hungarian-only
    /// metric; benches keep the paper-faithful expensive ensemble).
    pub fn with_metric(mut self, metric: GedMethod) -> Self {
        self.metric = metric;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_shape() {
        let a = DatasetSpec::aids();
        assert_eq!(a.num_labels, 51);
        assert_eq!(a.avg_nodes, 25);
        let l = DatasetSpec::linux();
        assert_eq!(l.num_labels, 36);
        let p = DatasetSpec::pubchem();
        assert_eq!(p.num_labels, 10);
        assert!(p.avg_nodes > a.avg_nodes);
        let s = DatasetSpec::syn();
        assert_eq!(s.num_labels, 5);
        assert!(
            s.num_graphs > a.num_graphs,
            "SYN is the scalability dataset"
        );
    }

    #[test]
    fn builders() {
        let s = DatasetSpec::syn()
            .with_graphs(99)
            .with_queries(7)
            .with_seed(42);
        assert_eq!(s.num_graphs, 99);
        assert_eq!(s.num_queries, 7);
        assert_eq!(s.seed, 42);
    }
}
