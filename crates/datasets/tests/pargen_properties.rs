//! Determinism contract of `Dataset::generate_par`: the per-stream RNG
//! scheme must make generation a pure function of the spec — independent
//! of thread count and scheduler — because scale-tier cache keys and
//! ground-truth baselines assume the dataset bytes never move.

use lan_datasets::{Dataset, DatasetSpec};
use lan_par::testenv;

fn spec() -> DatasetSpec {
    DatasetSpec::syn().with_graphs(61).with_queries(20)
}

#[test]
fn parallel_generation_is_thread_and_scheduler_invariant() {
    // Reference instance: sequential execution, one thread.
    let reference = testenv::with_env(
        &[("LAN_THREADS", Some("1")), ("LAN_SCHED", Some("seq"))],
        || Dataset::generate_par(spec()),
    );
    for threads in ["1", "2", "7"] {
        for sched in ["seq", "static", "ws"] {
            let d = testenv::with_env(
                &[("LAN_THREADS", Some(threads)), ("LAN_SCHED", Some(sched))],
                || Dataset::generate_par(spec()),
            );
            assert_eq!(
                d.graphs, reference.graphs,
                "graphs diverged (threads={threads}, sched={sched})"
            );
            assert_eq!(
                d.queries, reference.queries,
                "queries diverged (threads={threads}, sched={sched})"
            );
            assert_eq!(d.split.train, reference.split.train);
            assert_eq!(d.split.val, reference.split.val);
            assert_eq!(d.split.test, reference.split.test);
        }
    }
}

#[test]
fn counts_and_split_validity() {
    let d = Dataset::generate_par(spec());
    assert_eq!(d.graphs.len(), 61);
    assert_eq!(d.queries.len(), 20);
    assert_eq!(d.split.train.len(), 12);
    assert_eq!(d.split.val.len(), 4);
    assert_eq!(d.split.test.len(), 4);
    let mut all: Vec<usize> = d
        .split
        .train
        .iter()
        .chain(&d.split.val)
        .chain(&d.split.test)
        .copied()
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..20).collect::<Vec<_>>());
}

#[test]
fn seed_controls_the_instance() {
    let a = Dataset::generate_par(spec());
    let b = Dataset::generate_par(spec());
    assert_eq!(
        a.graphs, b.graphs,
        "same seed must reproduce bit-identically"
    );
    let c = Dataset::generate_par(spec().with_seed(987_654));
    assert_ne!(
        a.graphs, c.graphs,
        "different seed must change the instance"
    );
}

#[test]
fn stats_still_near_table1_targets() {
    // The per-stream scheme is a different instance but the same
    // distribution: Table I shape targets must keep holding.
    let d = Dataset::generate_par(DatasetSpec::syn().with_graphs(120).with_queries(5));
    let target = d.spec.avg_nodes as f64;
    let avg = d.avg_nodes();
    assert!(
        (avg - target).abs() / target < 0.25,
        "avg nodes {avg} vs target {target}"
    );
    assert!(d.avg_edges() >= avg * 0.8, "too sparse");
}
