//! Workload and metric properties of the generated datasets.

use lan_datasets::{recall_at_k, recall_at_k_ties, Dataset, DatasetSpec};
use lan_ged::GedMethod;
use proptest::prelude::*;

fn quick(spec: DatasetSpec, n: usize, q: usize) -> Dataset {
    Dataset::generate(
        spec.with_graphs(n)
            .with_queries(q)
            .with_metric(GedMethod::Hungarian),
    )
}

#[test]
fn every_preset_generates_and_splits() {
    for spec in DatasetSpec::all() {
        let d = quick(spec, 40, 10);
        assert_eq!(d.graphs.len(), 40);
        assert_eq!(d.queries.len(), 10);
        assert_eq!(
            d.split.train.len() + d.split.val.len() + d.split.test.len(),
            10
        );
        // Family structure: consecutive graphs in a family should be close.
        let d01 = d.pair_distance(0, 1);
        let mut cross: f64 = 0.0;
        for j in [20u32, 25, 30] {
            cross += d.pair_distance(0, j);
        }
        assert!(
            d01 <= cross / 3.0 + 1e-9,
            "{}: family member farther than cross-family average",
            d.spec.name
        );
    }
}

#[test]
fn metric_override_respected() {
    let d = quick(DatasetSpec::syn(), 20, 4);
    assert_eq!(d.spec.metric, GedMethod::Hungarian);
    let default = DatasetSpec::syn();
    assert!(matches!(default.metric, GedMethod::BestOfThree { .. }));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tie-aware recall bounds plain recall from above and behaves at the
    /// extremes.
    #[test]
    fn tie_aware_recall_properties(
        dists in proptest::collection::vec(0u8..6, 1..12),
        k in 1usize..6,
    ) {
        let k = k.min(dists.len());
        let results: Vec<(f64, u32)> = dists
            .iter()
            .enumerate()
            .map(|(i, &d)| (d as f64, i as u32))
            .collect();
        let mut sorted = results.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let kth = sorted[k - 1].0;
        // A result list equal to the true top-k has tie-aware recall 1.
        let top: Vec<(f64, u32)> = sorted[..k].to_vec();
        prop_assert_eq!(recall_at_k_ties(&top, kth, k), 1.0);
        // Tie-aware recall >= id-based recall for the same list.
        let ids: Vec<u32> = top.iter().map(|&(_, i)| i).collect();
        let truth_ids: Vec<u32> = sorted[..k].iter().map(|&(_, i)| i).collect();
        prop_assert!(
            recall_at_k_ties(&top, kth, k) >= recall_at_k(&ids, &truth_ids, k) - 1e-9
        );
        // Results all beyond the kth distance score zero.
        let far: Vec<(f64, u32)> = (0..k).map(|i| (kth + 10.0, i as u32)).collect();
        prop_assert_eq!(recall_at_k_ties(&far, kth, k), 0.0);
    }

    /// The operational distance is symmetric enough for indexing: d(a,b)
    /// and d(b,a) are both upper bounds of the same exact GED and both
    /// vanish iff the graphs are equal.
    #[test]
    fn pair_distance_sane(i in 0usize..20, j in 0usize..20) {
        let d = quick(DatasetSpec::syn(), 20, 2);
        let dij = d.pair_distance(i as u32, j as u32);
        prop_assert!(dij >= 0.0);
        if i == j {
            prop_assert_eq!(dij, 0.0);
        }
        if d.graphs[i] == d.graphs[j] {
            prop_assert_eq!(dij, 0.0);
        }
    }
}
