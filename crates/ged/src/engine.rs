//! Method selection facade, the threshold-gated evaluation cascade, and the
//! paper's ground-truth protocol.

use crate::beam::beam_ged;
use crate::bipartite::{bipartite_ged, Solver};
use crate::exact::{exact_ged, exact_ged_within, ExactLimits, ExactOutcome, ExactWithin};
use crate::lower_bounds::{label_degree_lb, label_size_lb};
use lan_graph::Graph;
use lan_obs::{names, Counter};
use std::sync::OnceLock;

/// Pre-resolved cascade counters (resolving a name takes the registry
/// lock; these run once per distance evaluation, so resolve once).
fn counters() -> &'static (&'static Counter, &'static Counter, &'static Counter) {
    static C: OnceLock<(&'static Counter, &'static Counter, &'static Counter)> = OnceLock::new();
    C.get_or_init(|| {
        (
            lan_obs::counter(names::GED_FULL_EVALS),
            lan_obs::counter(names::GED_LB_PRUNE),
            lan_obs::counter(names::GED_EARLY_ABORT),
        )
    })
}

/// A GED computation method.
#[derive(Debug, Clone, PartialEq)]
pub enum GedMethod {
    /// Exact A\*; `None` is returned on timeout.
    Exact { timeout_ms: u64 },
    /// Riesen–Bunke bipartite with Kuhn–Munkres (upper bound).
    Hungarian,
    /// Riesen–Bunke bipartite with Jonker–Volgenant (upper bound).
    Vj,
    /// Beam search with the given width (upper bound).
    Beam { width: usize },
    /// Minimum of Hungarian, VJ, and Beam — the paper's approximate
    /// ground-truth fallback. Always succeeds.
    BestOfThree { beam_width: usize },
}

/// Computes GED between `g1` and `g2` with the selected method.
///
/// Returns `None` only for `Exact` on timeout; all approximate methods are
/// total.
pub fn ged(g1: &Graph, g2: &Graph, method: &GedMethod) -> Option<f64> {
    counters().0.inc(); // ged.full_evals: a full solver run, no gate
    match method {
        GedMethod::Exact { timeout_ms } => {
            let limits = ExactLimits {
                timeout_ms: *timeout_ms,
                ..ExactLimits::default()
            };
            exact_ged(g1, g2, &limits).distance()
        }
        GedMethod::Hungarian => Some(bipartite_ged(g1, g2, Solver::Hungarian)),
        GedMethod::Vj => Some(bipartite_ged(g1, g2, Solver::Vj)),
        GedMethod::Beam { width } => Some(beam_ged(g1, g2, *width)),
        GedMethod::BestOfThree { beam_width } => {
            let h = bipartite_ged(g1, g2, Solver::Hungarian);
            let v = bipartite_ged(g1, g2, Solver::Vj);
            let b = beam_ged(g1, g2, *beam_width);
            Some(h.min(v).min(b))
        }
    }
}

/// Outcome of a threshold-gated GED evaluation ([`ged_within`]).
///
/// `AtLeast(lb)` certifies `lb <= d` for the distance `d` the *selected
/// method* would report (every cascade bound is `<=` the exact GED, which
/// is `<=` every approximation's value), with `lb >= tau` — so a caller
/// that only cares whether `d < tau` can treat it as a verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GedBound {
    /// The method's distance, computed in full.
    Exact(f64),
    /// The distance is provably at least this value (`>= tau`).
    AtLeast(f64),
}

impl GedBound {
    /// The certified minimum of the distance (the value itself if exact).
    pub fn min_value(&self) -> f64 {
        match self {
            GedBound::Exact(d) => *d,
            GedBound::AtLeast(lb) => *lb,
        }
    }
}

/// Which cascade tier settled a threshold-gated evaluation
/// ([`ged_within_outcome`]) — the per-call form of the global
/// `ged.lb_prune` / `ged.early_abort` / `ged.full_evals` counters, used
/// by the per-query EXPLAIN attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeOutcome {
    /// A signature lower bound (label/size or degree-sequence) reached
    /// `tau`; no solver ran.
    LbPrune,
    /// The branch-and-bound A\* aborted once every branch reached `tau`.
    TauAbort,
    /// A solver ran to completion (including the ungated `tau = ∞` path).
    FullSolve,
}

/// Threshold-gated GED: resolves whether `d(g1, g2) < tau` without always
/// paying for a full evaluation.
///
/// The cascade, cheapest first:
///
/// 1. **label/size bound** ([`label_size_lb`], `O(n)` merge walk over
///    precomputed signatures);
/// 2. **degree-sequence bound** ([`label_degree_lb`], `O(n)` over the
///    signatures' sorted degree sequences);
/// 3. the selected method. For [`GedMethod::Exact`] this is the
///    branch-and-bound A\* ([`exact_ged_within`]) which aborts the whole
///    search once every branch reaches `g + h >= tau`; other methods run in
///    full (their value is still `>=` any tier-1/2 bound, so the gate
///    remains sound).
///
/// Returns `None` only for `Exact` on timeout, mirroring [`ged`]. With a
/// non-finite `tau` this is exactly `ged` (no gating).
///
/// Counters: `ged.lb_prune` (tiers 1–2 settled it), `ged.early_abort`
/// (A\* aborted on the threshold), `ged.full_evals` (a solver ran to
/// completion).
pub fn ged_within(g1: &Graph, g2: &Graph, tau: f64, method: &GedMethod) -> Option<GedBound> {
    ged_within_outcome(g1, g2, tau, method).map(|(b, _)| b)
}

/// [`ged_within`] plus the [`CascadeOutcome`] that settled the call —
/// the hook per-query EXPLAIN attribution builds on. Identical gating,
/// bounds, and counter behavior.
pub fn ged_within_outcome(
    g1: &Graph,
    g2: &Graph,
    tau: f64,
    method: &GedMethod,
) -> Option<(GedBound, CascadeOutcome)> {
    if !tau.is_finite() {
        return ged(g1, g2, method).map(|d| (GedBound::Exact(d), CascadeOutcome::FullSolve));
    }
    let (full, lb_prune, early_abort) = *counters();
    let lb1 = label_size_lb(g1, g2);
    if lb1 >= tau {
        lb_prune.inc();
        return Some((GedBound::AtLeast(lb1), CascadeOutcome::LbPrune));
    }
    let lb2 = label_degree_lb(g1, g2);
    if lb2 >= tau {
        lb_prune.inc();
        return Some((GedBound::AtLeast(lb2), CascadeOutcome::LbPrune));
    }
    match method {
        GedMethod::Exact { timeout_ms } => {
            let limits = ExactLimits {
                timeout_ms: *timeout_ms,
                ..ExactLimits::default()
            };
            match exact_ged_within(g1, g2, &limits, tau) {
                ExactWithin::Optimal { distance, .. } => {
                    full.inc();
                    Some((GedBound::Exact(distance), CascadeOutcome::FullSolve))
                }
                ExactWithin::AtLeast(lb) => {
                    early_abort.inc();
                    Some((GedBound::AtLeast(lb.max(lb2)), CascadeOutcome::TauAbort))
                }
                ExactWithin::TimedOut => None,
            }
        }
        m => ged(g1, g2, m).map(|d| (GedBound::Exact(d), CascadeOutcome::FullSolve)),
    }
}

/// Configuration for the ground-truth protocol (paper §VII): try exact GED
/// under a timeout; on timeout use the best (smallest) of VJ, Hungarian, and
/// Beam.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruthConfig {
    pub exact_timeout_ms: u64,
    pub beam_width: usize,
    /// Skip the exact attempt entirely above this node count (it would time
    /// out anyway; saves the wasted attempt on large graphs).
    pub exact_node_cap: usize,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            exact_timeout_ms: 1_000,
            beam_width: 16,
            exact_node_cap: 12,
        }
    }
}

/// Ground-truth GED per the paper's protocol. Returns the distance and
/// whether it is provably exact.
pub fn ground_truth_ged(g1: &Graph, g2: &Graph, cfg: &GroundTruthConfig) -> (f64, bool) {
    if g1.node_count() <= cfg.exact_node_cap && g2.node_count() <= cfg.exact_node_cap {
        let limits = ExactLimits {
            timeout_ms: cfg.exact_timeout_ms,
            ..ExactLimits::default()
        };
        if let ExactOutcome::Optimal { distance, .. } = exact_ged(g1, g2, &limits) {
            return (distance, true);
        }
    }
    let d = ged(
        g1,
        g2,
        &GedMethod::BestOfThree {
            beam_width: cfg.beam_width,
        },
    )
    .expect("BestOfThree is total");
    (d, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::generators::{erdos_renyi, molecule_like};
    use lan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_methods_zero_on_identical() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = molecule_like(&mut rng, 10, 2, 4, 5);
        for m in [
            GedMethod::Exact { timeout_ms: 1000 },
            GedMethod::Hungarian,
            GedMethod::Vj,
            GedMethod::Beam { width: 4 },
            GedMethod::BestOfThree { beam_width: 4 },
        ] {
            assert_eq!(ged(&g, &g, &m), Some(0.0), "{m:?}");
        }
    }

    #[test]
    fn best_of_three_no_worse_than_components() {
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..10 {
            let g1 = erdos_renyi(&mut rng, 8, 9, 4);
            let g2 = erdos_renyi(&mut rng, 8, 10, 4);
            let best = ged(&g1, &g2, &GedMethod::BestOfThree { beam_width: 8 }).unwrap();
            let h = ged(&g1, &g2, &GedMethod::Hungarian).unwrap();
            let v = ged(&g1, &g2, &GedMethod::Vj).unwrap();
            let b = ged(&g1, &g2, &GedMethod::Beam { width: 8 }).unwrap();
            assert!(best <= h && best <= v && best <= b);
            assert!(best == h || best == v || best == b);
        }
    }

    #[test]
    fn ground_truth_small_is_exact() {
        let mut rng = StdRng::seed_from_u64(53);
        let g1 = erdos_renyi(&mut rng, 6, 6, 3);
        let g2 = erdos_renyi(&mut rng, 6, 7, 3);
        let (d, exact) = ground_truth_ged(&g1, &g2, &GroundTruthConfig::default());
        assert!(exact);
        assert_eq!(
            Some(d),
            ged(&g1, &g2, &GedMethod::Exact { timeout_ms: 5_000 })
        );
    }

    #[test]
    fn ground_truth_large_falls_back() {
        let mut rng = StdRng::seed_from_u64(54);
        let g1 = molecule_like(&mut rng, 30, 3, 4, 8);
        let g2 = molecule_like(&mut rng, 32, 3, 4, 8);
        let (d, exact) = ground_truth_ged(&g1, &g2, &GroundTruthConfig::default());
        assert!(!exact);
        assert!(d > 0.0);
    }

    #[test]
    fn bounds_sandwich_exact_and_approximations() {
        // lower bounds <= exact <= Hungarian / VJ / Beam, on random pairs.
        use crate::lower_bounds::{label_degree_lb, label_size_lb};
        let mut rng = StdRng::seed_from_u64(56);
        for _ in 0..40 {
            let g1 = erdos_renyi(&mut rng, 6, 6, 3);
            let g2 = erdos_renyi(&mut rng, 5, 6, 3);
            let exact = ged(&g1, &g2, &GedMethod::Exact { timeout_ms: 10_000 }).unwrap();
            for lb in [label_size_lb(&g1, &g2), label_degree_lb(&g1, &g2)] {
                assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
            }
            for m in [
                GedMethod::Hungarian,
                GedMethod::Vj,
                GedMethod::Beam { width: 8 },
            ] {
                let ub = ged(&g1, &g2, &m).unwrap();
                assert!(ub + 1e-9 >= exact, "{m:?} {ub} < exact {exact}");
            }
        }
    }

    #[test]
    fn ged_within_agrees_with_full_ged() {
        // Whenever the method's distance is < tau, the gate must return the
        // identical Exact value; otherwise a certified bound in
        // [tau, d_method].
        let mut rng = StdRng::seed_from_u64(57);
        for _ in 0..25 {
            let g1 = erdos_renyi(&mut rng, 6, 6, 4);
            let g2 = erdos_renyi(&mut rng, 6, 7, 4);
            for m in [
                GedMethod::Exact { timeout_ms: 10_000 },
                GedMethod::Hungarian,
                GedMethod::Vj,
                GedMethod::Beam { width: 4 },
                GedMethod::BestOfThree { beam_width: 4 },
            ] {
                let d = ged(&g1, &g2, &m).unwrap();
                for tau in [0.5, d * 0.5, d, d + 0.5, d + 4.0, f64::INFINITY] {
                    match ged_within(&g1, &g2, tau, &m).unwrap() {
                        GedBound::Exact(got) => {
                            assert_eq!(got.to_bits(), d.to_bits(), "{m:?} tau={tau}");
                        }
                        GedBound::AtLeast(lb) => {
                            assert!(tau.is_finite());
                            assert!(lb >= tau, "{m:?}: lb {lb} < tau {tau}");
                            assert!(lb <= d + 1e-9, "{m:?}: lb {lb} > d {d}");
                            // Pruning is only sound when d might be >= tau;
                            // since lb <= d and lb >= tau, d >= tau holds.
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ged_within_counts_cascade_tiers() {
        let g1 = molecule_like(&mut StdRng::seed_from_u64(58), 10, 2, 4, 8);
        let g2 = molecule_like(&mut StdRng::seed_from_u64(59), 20, 2, 4, 8);
        if !lan_obs::enabled() {
            return;
        }
        let before = lan_obs::snapshot();
        // Node-count gap of 10 => label/size bound >= 10 >= tau = 1.
        let out = ged_within(&g1, &g2, 1.0, &GedMethod::Hungarian).unwrap();
        assert!(matches!(out, GedBound::AtLeast(_)));
        let d = lan_obs::snapshot().diff(&before);
        assert_eq!(d.counter(lan_obs::names::GED_LB_PRUNE), 1);
        assert_eq!(d.counter(lan_obs::names::GED_FULL_EVALS), 0);

        let before = lan_obs::snapshot();
        let out = ged_within(&g1, &g2, 1e9, &GedMethod::Hungarian).unwrap();
        assert!(matches!(out, GedBound::Exact(_)));
        let d = lan_obs::snapshot().diff(&before);
        assert_eq!(d.counter(lan_obs::names::GED_FULL_EVALS), 1);
    }

    #[test]
    fn ged_within_exact_early_abort_counted() {
        if !lan_obs::enabled() {
            return;
        }
        let (g, q) = (
            Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap(),
            Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap(),
        );
        // d = 5; lb tiers are < 4, so tau = 4 reaches the A* which must
        // abort on the threshold.
        let before = lan_obs::snapshot();
        let out = ged_within(&g, &q, 4.0, &GedMethod::Exact { timeout_ms: 10_000 }).unwrap();
        match out {
            GedBound::AtLeast(lb) => assert!((4.0..=5.0).contains(&lb)),
            other => panic!("expected AtLeast, got {other:?}"),
        }
        let d = lan_obs::snapshot().diff(&before);
        assert_eq!(d.counter(lan_obs::names::GED_EARLY_ABORT), 1);
    }

    #[test]
    fn ground_truth_upper_bounds_true_distance() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..15 {
            let g1 = erdos_renyi(&mut rng, 5, 5, 3);
            let g2 = erdos_renyi(&mut rng, 5, 4, 3);
            let (gt, _) = ground_truth_ged(&g1, &g2, &GroundTruthConfig::default());
            let exact = ged(&g1, &g2, &GedMethod::Exact { timeout_ms: 5_000 }).unwrap();
            assert!(gt + 1e-9 >= exact);
        }
    }
}
