//! Method selection facade and the paper's ground-truth protocol.

use crate::beam::beam_ged;
use crate::bipartite::{bipartite_ged, Solver};
use crate::exact::{exact_ged, ExactLimits, ExactOutcome};
use lan_graph::Graph;

/// A GED computation method.
#[derive(Debug, Clone, PartialEq)]
pub enum GedMethod {
    /// Exact A\*; `None` is returned on timeout.
    Exact { timeout_ms: u64 },
    /// Riesen–Bunke bipartite with Kuhn–Munkres (upper bound).
    Hungarian,
    /// Riesen–Bunke bipartite with Jonker–Volgenant (upper bound).
    Vj,
    /// Beam search with the given width (upper bound).
    Beam { width: usize },
    /// Minimum of Hungarian, VJ, and Beam — the paper's approximate
    /// ground-truth fallback. Always succeeds.
    BestOfThree { beam_width: usize },
}

/// Computes GED between `g1` and `g2` with the selected method.
///
/// Returns `None` only for `Exact` on timeout; all approximate methods are
/// total.
pub fn ged(g1: &Graph, g2: &Graph, method: &GedMethod) -> Option<f64> {
    match method {
        GedMethod::Exact { timeout_ms } => {
            let limits = ExactLimits {
                timeout_ms: *timeout_ms,
                ..ExactLimits::default()
            };
            exact_ged(g1, g2, &limits).distance()
        }
        GedMethod::Hungarian => Some(bipartite_ged(g1, g2, Solver::Hungarian)),
        GedMethod::Vj => Some(bipartite_ged(g1, g2, Solver::Vj)),
        GedMethod::Beam { width } => Some(beam_ged(g1, g2, *width)),
        GedMethod::BestOfThree { beam_width } => {
            let h = bipartite_ged(g1, g2, Solver::Hungarian);
            let v = bipartite_ged(g1, g2, Solver::Vj);
            let b = beam_ged(g1, g2, *beam_width);
            Some(h.min(v).min(b))
        }
    }
}

/// Configuration for the ground-truth protocol (paper §VII): try exact GED
/// under a timeout; on timeout use the best (smallest) of VJ, Hungarian, and
/// Beam.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruthConfig {
    pub exact_timeout_ms: u64,
    pub beam_width: usize,
    /// Skip the exact attempt entirely above this node count (it would time
    /// out anyway; saves the wasted attempt on large graphs).
    pub exact_node_cap: usize,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            exact_timeout_ms: 1_000,
            beam_width: 16,
            exact_node_cap: 12,
        }
    }
}

/// Ground-truth GED per the paper's protocol. Returns the distance and
/// whether it is provably exact.
pub fn ground_truth_ged(g1: &Graph, g2: &Graph, cfg: &GroundTruthConfig) -> (f64, bool) {
    if g1.node_count() <= cfg.exact_node_cap && g2.node_count() <= cfg.exact_node_cap {
        let limits = ExactLimits {
            timeout_ms: cfg.exact_timeout_ms,
            ..ExactLimits::default()
        };
        if let ExactOutcome::Optimal { distance, .. } = exact_ged(g1, g2, &limits) {
            return (distance, true);
        }
    }
    let d = ged(
        g1,
        g2,
        &GedMethod::BestOfThree {
            beam_width: cfg.beam_width,
        },
    )
    .expect("BestOfThree is total");
    (d, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::generators::{erdos_renyi, molecule_like};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_methods_zero_on_identical() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = molecule_like(&mut rng, 10, 2, 4, 5);
        for m in [
            GedMethod::Exact { timeout_ms: 1000 },
            GedMethod::Hungarian,
            GedMethod::Vj,
            GedMethod::Beam { width: 4 },
            GedMethod::BestOfThree { beam_width: 4 },
        ] {
            assert_eq!(ged(&g, &g, &m), Some(0.0), "{m:?}");
        }
    }

    #[test]
    fn best_of_three_no_worse_than_components() {
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..10 {
            let g1 = erdos_renyi(&mut rng, 8, 9, 4);
            let g2 = erdos_renyi(&mut rng, 8, 10, 4);
            let best = ged(&g1, &g2, &GedMethod::BestOfThree { beam_width: 8 }).unwrap();
            let h = ged(&g1, &g2, &GedMethod::Hungarian).unwrap();
            let v = ged(&g1, &g2, &GedMethod::Vj).unwrap();
            let b = ged(&g1, &g2, &GedMethod::Beam { width: 8 }).unwrap();
            assert!(best <= h && best <= v && best <= b);
            assert!(best == h || best == v || best == b);
        }
    }

    #[test]
    fn ground_truth_small_is_exact() {
        let mut rng = StdRng::seed_from_u64(53);
        let g1 = erdos_renyi(&mut rng, 6, 6, 3);
        let g2 = erdos_renyi(&mut rng, 6, 7, 3);
        let (d, exact) = ground_truth_ged(&g1, &g2, &GroundTruthConfig::default());
        assert!(exact);
        assert_eq!(
            Some(d),
            ged(&g1, &g2, &GedMethod::Exact { timeout_ms: 5_000 })
        );
    }

    #[test]
    fn ground_truth_large_falls_back() {
        let mut rng = StdRng::seed_from_u64(54);
        let g1 = molecule_like(&mut rng, 30, 3, 4, 8);
        let g2 = molecule_like(&mut rng, 32, 3, 4, 8);
        let (d, exact) = ground_truth_ged(&g1, &g2, &GroundTruthConfig::default());
        assert!(!exact);
        assert!(d > 0.0);
    }

    #[test]
    fn ground_truth_upper_bounds_true_distance() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..15 {
            let g1 = erdos_renyi(&mut rng, 5, 5, 3);
            let g2 = erdos_renyi(&mut rng, 5, 4, 3);
            let (gt, _) = ground_truth_ged(&g1, &g2, &GroundTruthConfig::default());
            let exact = ged(&g1, &g2, &GedMethod::Exact { timeout_ms: 5_000 }).unwrap();
            assert!(gt + 1e-9 >= exact);
        }
    }
}
