//! Node mappings and the exact cost of their induced edit paths.
//!
//! Every GED algorithm in this crate — exact A\*, the bipartite
//! approximations, and beam search — ultimately produces a *node mapping*
//! `phi : V(G1) -> V(G2) ∪ {ε}` (unhit `V(G2)` nodes are inserted). The cost
//! of the edit path induced by a mapping is computed here in one place, so
//! every approximation returns a genuine upper bound on the true GED.

use lan_graph::{Graph, NodeId};

/// Sentinel for "deleted" (mapped to ε).
pub const EPS: NodeId = NodeId::MAX;

/// A complete node mapping from `g1` to `g2`: `map[u] == EPS` means node `u`
/// of `g1` is deleted, otherwise `u` is substituted by node `map[u]` of `g2`.
/// Nodes of `g2` not in the image are inserted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMapping {
    pub map: Vec<NodeId>,
}

impl NodeMapping {
    /// The identity mapping for graphs with the same node count.
    pub fn identity(n: usize) -> Self {
        NodeMapping {
            map: (0..n as NodeId).collect(),
        }
    }

    /// True if no two `g1` nodes map to the same `g2` node.
    pub fn is_injective(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.map.iter().all(|&v| v == EPS || seen.insert(v))
    }
}

/// Exact cost (unit cost model, paper §III-A) of the edit path induced by
/// `phi`:
///
/// * node relabels: mapped pairs with different labels;
/// * node deletions: `g1` nodes mapped to ε;
/// * node insertions: `g2` nodes not in the image;
/// * edge deletions: `g1` edges whose image is not a `g2` edge;
/// * edge insertions: `g2` edges that are not the image of any `g1` edge.
///
/// Panics in debug builds if `phi` is not injective or has wrong length.
pub fn mapping_cost(g1: &Graph, g2: &Graph, phi: &NodeMapping) -> f64 {
    debug_assert_eq!(phi.map.len(), g1.node_count());
    debug_assert!(phi.is_injective());
    let n2 = g2.node_count();
    let mut cost = 0u64;

    // Node operations.
    let mut hit = vec![false; n2];
    for u in g1.nodes() {
        let v = phi.map[u as usize];
        if v == EPS {
            cost += 1; // deletion
        } else {
            debug_assert!((v as usize) < n2, "mapping target out of range");
            hit[v as usize] = true;
            if g1.label(u) != g2.label(v) {
                cost += 1; // relabel
            }
        }
    }
    cost += hit.iter().filter(|&&h| !h).count() as u64; // insertions

    // Edge operations: g1 edges that survive (both endpoints substituted and
    // image edge exists) are matched; every other g1 edge is deleted; every
    // g2 edge not matched is inserted.
    let mut matched_g2_edges = 0u64;
    for (u, w) in g1.edges() {
        let (pu, pw) = (phi.map[u as usize], phi.map[w as usize]);
        if pu != EPS && pw != EPS && g2.has_edge(pu, pw) {
            matched_g2_edges += 1;
        } else {
            cost += 1; // deletion
        }
    }
    cost += g2.edge_count() as u64 - matched_g2_edges; // insertions

    cost as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::Graph;

    fn path3(labels: [u16; 3]) -> Graph {
        Graph::from_edges(labels.to_vec(), &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn identity_on_same_graph_is_zero() {
        let g = path3([0, 1, 2]);
        assert_eq!(mapping_cost(&g, &g, &NodeMapping::identity(3)), 0.0);
    }

    #[test]
    fn relabel_costs_one() {
        let g = path3([0, 1, 2]);
        let h = path3([0, 9, 2]);
        assert_eq!(mapping_cost(&g, &h, &NodeMapping::identity(3)), 1.0);
    }

    #[test]
    fn delete_node_with_edges() {
        // Deleting the middle of a path: 1 node + 2 incident edge deletions,
        // and the isolated remaining layout of g2 forces insertions.
        let g = path3([0, 0, 0]);
        let h = Graph::from_edges(vec![0, 0], &[(0, 1)]).unwrap();
        // map 0->0, 1->eps, 2->1: delete node 1 (+1), delete edges (0,1),(1,2)
        // (+2), then g2 edge (0,1) must be inserted (+1) => 4.
        let phi = NodeMapping {
            map: vec![0, EPS, 1],
        };
        assert_eq!(mapping_cost(&g, &h, &phi), 4.0);
    }

    #[test]
    fn insertions_for_unhit_targets() {
        let g = Graph::from_edges(vec![0], &[]).unwrap();
        let h = path3([0, 0, 0]);
        let phi = NodeMapping { map: vec![0] };
        // insert 2 nodes + 2 edges
        assert_eq!(mapping_cost(&g, &h, &phi), 4.0);
    }

    #[test]
    fn fig2_mapping_cost_is_five() {
        // Paper Example 1: d(G, Q) = 5. Fig. 2(a)'s G is a star — v0 (A)
        // adjacent to v1, v2, v3 (all B), as fixed by the CG edge weights in
        // Example 4 (w(g_{0,1}, g_{1,0}) = 3 means v0 has all three B nodes
        // as neighbors). Q is the path u0 (A) – u1 (B) – u2 (A).
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        // Map v0->u1 (A->B relabel), v1->u0 (B->A), v2->u2 (B->A), v3->eps:
        // 3 relabels + 1 deletion + 1 edge deletion (v0,v3) = 5.
        let phi = NodeMapping {
            map: vec![1, 0, 2, EPS],
        };
        assert_eq!(mapping_cost(&g, &q, &phi), 5.0);
        // An alternative path reaches 5 as well (delete two leaves, insert
        // the (u1,u2) edge); exact::tests verifies 5 is optimal.
    }

    #[test]
    fn injectivity_check() {
        let phi = NodeMapping { map: vec![0, 0] };
        assert!(!phi.is_injective());
        let phi = NodeMapping {
            map: vec![EPS, EPS, 1],
        };
        assert!(phi.is_injective());
    }
}
