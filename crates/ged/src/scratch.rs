//! Per-thread scratch buffers for the GED kernels.
//!
//! The bipartite solvers build an `(n1 + n2)²` cost matrix and a set of
//! row/column working arrays on every call; routing evaluates thousands of
//! candidate distances per query, so those allocations dominated the
//! kernel profile. [`GedScratch`] owns all of them and is reused through a
//! `thread_local` (mirroring `lan-models`' `InferScratch`), so the steady
//! state allocates nothing.
//!
//! Every user reinitializes the buffers it touches to exactly the values
//! the allocating path starts from, so scratch reuse is bit-identical to
//! fresh allocation (property-tested in [`crate::assignment`] and
//! [`crate::bipartite`]).

use crate::assignment::{AssignScratch, CostMatrix};
use lan_graph::Label;
use std::cell::RefCell;

/// Reusable buffers for one thread's GED computations.
#[derive(Debug)]
pub struct GedScratch {
    /// LSAP solver working arrays (Hungarian + LAPJV).
    pub assign: AssignScratch,
    /// Riesen–Bunke cost matrix.
    pub cost: CostMatrix,
    /// Sorted neighbor-label buffers for the substitution cells.
    pub nu: Vec<Label>,
    pub nw: Vec<Label>,
}

impl GedScratch {
    pub fn new() -> Self {
        GedScratch {
            assign: AssignScratch::new(),
            cost: CostMatrix::zeros(0),
            nu: Vec::new(),
            nw: Vec::new(),
        }
    }
}

impl Default for GedScratch {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static SCRATCH: RefCell<GedScratch> = RefCell::new(GedScratch::new());
}

/// Runs `f` with this thread's [`GedScratch`].
///
/// Not reentrant: `f` must not call `with_scratch` again (the kernels take
/// the scratch as an explicit parameter below the entry points, so this
/// cannot happen from within this crate).
pub fn with_scratch<R>(f: impl FnOnce(&mut GedScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}
