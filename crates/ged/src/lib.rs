//! Graph edit distance (GED) computation for the LAN system.
//!
//! The paper's distance measure (§III-A): the minimum number of edit
//! operations (node/edge insertion, node/edge deletion, node relabeling)
//! transforming one labeled undirected graph into another. Exact GED is
//! NP-hard, so this crate provides — all from scratch:
//!
//! * [`exact`]: exact A\* search with admissible lower bounds and a timeout,
//!   following the classic node-mapping formulation;
//! * [`assignment`]: two exact linear-sum-assignment solvers — a
//!   Kuhn–Munkres / potentials algorithm ("Hungarian") and a
//!   Jonker–Volgenant solver with column reduction ("LAPJV");
//! * [`bipartite`]: the Riesen–Bunke bipartite approximation (paper's
//!   "Hung" [57]) and the Fankhauser et al. variant ("VJ" [56]), both
//!   returning the *exact cost of the derived edit path* so results are
//!   guaranteed upper bounds;
//! * [`beam`]: beam-search suboptimal GED (paper's "Beam" [58]);
//! * [`lower_bounds`]: cheap admissible lower bounds (label multiset, size);
//! * [`engine`]: a facade selecting a method, plus the paper's ground-truth
//!   protocol (exact with timeout, else best of the three approximations).
//!
//! # Example
//!
//! ```
//! use lan_graph::Graph;
//! use lan_ged::engine::{ged, GedMethod};
//!
//! // Fig. 2 of the paper: d(G, Q) = 5 (G is the star A–{B,B,B}).
//! let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
//! let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
//! let d = ged(&g, &q, &GedMethod::Exact { timeout_ms: 1_000 }).unwrap();
//! assert_eq!(d, 5.0);
//! ```

pub mod assignment;
pub mod beam;
pub mod bipartite;
pub mod engine;
pub mod exact;
pub mod lower_bounds;
pub mod mapping;
pub mod mcs;
pub mod scratch;

pub use engine::{
    ged, ged_within, ged_within_outcome, ground_truth_ged, CascadeOutcome, GedBound, GedMethod,
    GroundTruthConfig,
};
pub use exact::{set_default_poll_stride, ExactLimits};
pub use mapping::{mapping_cost, NodeMapping};
pub use scratch::GedScratch;
