//! Bipartite approximate GED (the paper's "Hung" [57] and "VJ" [56]).
//!
//! Riesen & Bunke reduce GED to a linear sum assignment over an
//! `(n1 + n2) × (n1 + n2)` cost matrix whose quadrants encode substitution,
//! deletion, and insertion of nodes together with an estimate of the
//! incident-edge cost. The node mapping read off the optimal assignment is
//! turned into a *complete edit path* whose exact cost is returned
//! ([`crate::mapping::mapping_cost`]) — so both approximations are
//! guaranteed upper bounds on the true GED.
//!
//! "Hung" solves the LSAP with the Kuhn–Munkres algorithm, "VJ" with
//! Jonker–Volgenant (Fankhauser et al.); with ties in the cost matrix the
//! two can pick different optimal assignments and hence derive different
//! upper bounds, which is why the ground-truth protocol takes the best of
//! both (plus beam search).

use crate::assignment::{hungarian_with, lapjv_with, CostMatrix};
use crate::lower_bounds::sorted_label_multiset_lb;
use crate::mapping::{mapping_cost, NodeMapping, EPS};
use crate::scratch::{with_scratch, GedScratch};
use lan_graph::{Graph, NodeId};

/// Which LSAP solver drives the approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Kuhn–Munkres (paper baseline "Hung", Riesen & Bunke).
    Hungarian,
    /// Jonker–Volgenant (paper baseline "VJ", Fankhauser et al.).
    Vj,
}

/// Builds the Riesen–Bunke cost matrix.
///
/// Layout (rows = g1 nodes then ε-rows, cols = g2 nodes then ε-cols):
///
/// ```text
///          v ∈ V2          ε (deletion)
///   u    [ sub(u, v) ]   [ del(u) on diag, ∞ off ]
///   ε    [ ins(v) on diag, ∞ off ]   [ 0 ]
/// ```
///
/// * `sub(u, v)` = label cost + |deg(u) − deg(v)| (incident-edge estimate
///   for unlabeled edges),
/// * `del(u)` = 1 + deg(u), `ins(v)` = 1 + deg(v).
pub fn rb_cost_matrix(g1: &Graph, g2: &Graph) -> CostMatrix {
    let mut s = GedScratch::new();
    rb_cost_matrix_into(g1, g2, &mut s);
    s.cost
}

/// [`rb_cost_matrix`] built into `s.cost`, reusing the scratch's matrix and
/// neighbor-label buffers. Bit-identical to the allocating form.
pub fn rb_cost_matrix_into(g1: &Graph, g2: &Graph, s: &mut GedScratch) {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    let n = n1 + n2;
    // Forbidden cells use a large finite value rather than ∞ so solver
    // arithmetic stays finite.
    let forbid = (n as f64 + 1.0) * (g1.edge_count() + g2.edge_count() + n) as f64 + 1e6;
    s.cost.reset(n);
    for i in 0..n {
        if i < n1 {
            // Sorted neighbor labels of u, shared across the row.
            let u = i as NodeId;
            s.nu.clear();
            s.nu.extend(g1.neighbors(u).iter().map(|&x| g1.label(x)));
            s.nu.sort_unstable();
        }
        for j in 0..n {
            let v = match (i < n1, j < n2) {
                (true, true) => {
                    let u = i as NodeId;
                    let w = j as NodeId;
                    let label = if g1.label(u) != g2.label(w) { 1.0 } else { 0.0 };
                    // Incident-edge estimate refined by endpoint labels
                    // (Riesen–Bunke with the labeled-neighborhood
                    // strengthening): the multiset distance between the two
                    // neighbor-label multisets lower-bounds the local edge
                    // reassignment cost and is far more discriminative than
                    // a plain degree difference on uniform-label chains.
                    s.nw.clear();
                    s.nw.extend(g2.neighbors(w).iter().map(|&x| g2.label(x)));
                    s.nw.sort_unstable();
                    label + sorted_label_multiset_lb(&s.nu, &s.nw)
                }
                (true, false) => {
                    if j - n2 == i {
                        1.0 + g1.degree(i as NodeId) as f64
                    } else {
                        forbid
                    }
                }
                (false, true) => {
                    if i - n1 == j {
                        1.0 + g2.degree(j as NodeId) as f64
                    } else {
                        forbid
                    }
                }
                (false, false) => 0.0,
            };
            s.cost.set(i, j, v);
        }
    }
}

/// Bipartite approximate GED: returns the exact cost of the edit path
/// derived from the optimal assignment (an upper bound on true GED),
/// together with the mapping.
pub fn bipartite_ged_with_mapping(g1: &Graph, g2: &Graph, solver: Solver) -> (f64, NodeMapping) {
    with_scratch(|s| bipartite_ged_scratch(g1, g2, solver, s))
}

/// [`bipartite_ged_with_mapping`] on an explicit scratch (the entry point
/// routes through the per-thread one). Bit-identical to a fresh scratch.
pub fn bipartite_ged_scratch(
    g1: &Graph,
    g2: &Graph,
    solver: Solver,
    s: &mut GedScratch,
) -> (f64, NodeMapping) {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    if n1 == 0 && n2 == 0 {
        return (0.0, NodeMapping { map: vec![] });
    }
    // Structurally equal graphs: the identity mapping is optimal. The LSAP
    // relaxation cannot promise this (ties between same-label, same-degree
    // nodes may derive a costlier path), and a database routinely compares a
    // graph against itself, so short-circuit.
    if g1 == g2 {
        return (0.0, NodeMapping::identity(n1));
    }
    rb_cost_matrix_into(g1, g2, s);
    let a = match solver {
        Solver::Hungarian => hungarian_with(&s.cost, &mut s.assign),
        Solver::Vj => lapjv_with(&s.cost, &mut s.assign),
    };
    let mut map = vec![EPS; n1];
    for (u, &j) in a.row_to_col.iter().take(n1).enumerate() {
        if j < n2 {
            map[u] = j as NodeId;
        }
    }
    let mapping = NodeMapping { map };
    let d = mapping_cost(g1, g2, &mapping);
    (d, mapping)
}

/// Bipartite approximate GED (distance only).
pub fn bipartite_ged(g1: &Graph, g2: &Graph, solver: Solver) -> f64 {
    bipartite_ged_with_mapping(g1, g2, solver).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ged, ExactLimits};
    use lan_graph::generators::{erdos_renyi, molecule_like};
    use lan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_graphs_zero() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let g = molecule_like(&mut rng, 12, 2, 4, 6);
            assert_eq!(bipartite_ged(&g, &g, Solver::Hungarian), 0.0);
            assert_eq!(bipartite_ged(&g, &g, Solver::Vj), 0.0);
        }
    }

    #[test]
    fn empty_graphs() {
        let e = Graph::empty();
        assert_eq!(bipartite_ged(&e, &e, Solver::Hungarian), 0.0);
        let g = Graph::from_edges(vec![0], &[]).unwrap();
        assert_eq!(bipartite_ged(&e, &g, Solver::Vj), 1.0);
        assert_eq!(bipartite_ged(&g, &e, Solver::Hungarian), 1.0);
    }

    #[test]
    fn upper_bounds_exact() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..40 {
            let g1 = erdos_renyi(&mut rng, 5, 5, 3);
            let g2 = erdos_renyi(&mut rng, 6, 6, 3);
            let exact = exact_ged(&g1, &g2, &ExactLimits::default())
                .distance()
                .unwrap();
            for solver in [Solver::Hungarian, Solver::Vj] {
                let approx = bipartite_ged(&g1, &g2, solver);
                assert!(
                    approx + 1e-9 >= exact,
                    "{solver:?} returned {approx} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn often_tight_on_near_duplicates() {
        // On small perturbations the bipartite bound is usually close; check
        // that it is at least finite and sane, and exact on relabel-only.
        let g1 = Graph::from_edges(vec![0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let g2 = Graph::from_edges(vec![0, 1, 9, 3], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bipartite_ged(&g1, &g2, Solver::Hungarian), 1.0);
        assert_eq!(bipartite_ged(&g1, &g2, Solver::Vj), 1.0);
    }

    #[test]
    fn fig2_bipartite_upper_bound() {
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        for solver in [Solver::Hungarian, Solver::Vj] {
            let d = bipartite_ged(&g, &q, solver);
            assert!((5.0..=9.0).contains(&d), "implausible bound {d}");
        }
    }

    #[test]
    fn symmetric_enough() {
        // The derived-path cost need not be exactly symmetric, but must stay
        // an upper bound both ways; check both directions bound the exact.
        let mut rng = StdRng::seed_from_u64(33);
        let g1 = erdos_renyi(&mut rng, 5, 4, 3);
        let g2 = erdos_renyi(&mut rng, 5, 6, 3);
        let exact = exact_ged(&g1, &g2, &ExactLimits::default())
            .distance()
            .unwrap();
        assert!(bipartite_ged(&g1, &g2, Solver::Vj) >= exact);
        assert!(bipartite_ged(&g2, &g1, Solver::Vj) >= exact);
    }

    #[test]
    fn mapping_is_injective_and_cost_consistent() {
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..20 {
            let g1 = molecule_like(&mut rng, 10, 2, 4, 5);
            let g2 = molecule_like(&mut rng, 12, 2, 4, 5);
            let (d, m) = bipartite_ged_with_mapping(&g1, &g2, Solver::Hungarian);
            assert!(m.is_injective());
            assert_eq!(mapping_cost(&g1, &g2, &m), d);
        }
    }

    #[test]
    fn reused_scratch_is_bit_identical() {
        // One scratch across a mixed workload: cost matrices, mappings, and
        // distances must match the fresh-allocation path bit for bit.
        let mut rng = StdRng::seed_from_u64(36);
        let mut s = GedScratch::new();
        for _ in 0..25 {
            let n1 = 4 + rng.gen_range(0..10);
            let n2 = 4 + rng.gen_range(0..10);
            let g1 = molecule_like(&mut rng, n1, 2, 4, 5);
            let g2 = molecule_like(&mut rng, n2, 2, 4, 5);
            let fresh = rb_cost_matrix(&g1, &g2);
            rb_cost_matrix_into(&g1, &g2, &mut s);
            let n = fresh.n();
            assert_eq!(s.cost.n(), n);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(fresh.get(i, j).to_bits(), s.cost.get(i, j).to_bits());
                }
            }
            for solver in [Solver::Hungarian, Solver::Vj] {
                let (d_fresh, m_fresh) =
                    bipartite_ged_scratch(&g1, &g2, solver, &mut GedScratch::new());
                let (d_scr, m_scr) = bipartite_ged_scratch(&g1, &g2, solver, &mut s);
                assert_eq!(d_fresh.to_bits(), d_scr.to_bits());
                assert_eq!(m_fresh, m_scr);
            }
        }
    }

    #[test]
    fn scales_to_paper_sized_graphs() {
        // PUBCHEM-like sizes (~48 nodes) must run fast.
        let mut rng = StdRng::seed_from_u64(35);
        let g1 = molecule_like(&mut rng, 48, 4, 4, 10);
        let g2 = molecule_like(&mut rng, 50, 4, 4, 10);
        let d1 = bipartite_ged(&g1, &g2, Solver::Hungarian);
        let d2 = bipartite_ged(&g1, &g2, Solver::Vj);
        assert!(d1 > 0.0 && d2 > 0.0);
    }
}
