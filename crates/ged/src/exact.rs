//! Exact GED by A\* search over node mappings.
//!
//! The classic formulation: nodes of `g1` are assigned in index order to a
//! node of `g2` or to ε (deletion); leaves of the search tree are complete
//! [`NodeMapping`]s. `g` is the exact cost of the edits already fixed by the
//! prefix, `h` an admissible bound on the remaining cost (label multiset on
//! unassigned labels + remaining-edge-count difference), so the first leaf
//! popped from the open list is an optimal edit path.
//!
//! The heuristic is allocation-free: the sorted label suffixes of `g1` are
//! precomputed once per search, and the remaining `g2` multiset is streamed
//! from a label-sorted node list filtered by the `used` bitmask
//! ([`crate::lower_bounds::masked_label_multiset_lb`]) — the values are
//! identical to the allocating oracle, so the search order is unchanged.
//!
//! GED is NP-hard; the search accepts a deadline and an expansion cap and
//! reports [`ExactOutcome::TimedOut`] when exceeded — the ground-truth
//! protocol (paper §VII) then falls back to the approximations. The
//! deadline is only polled every [`ExactLimits::poll_stride`] expansions
//! (default 256, `LAN_GED_POLL_STRIDE` or [`set_default_poll_stride`]
//! to change it), keeping timing syscalls out of the expansion loop
//! while bounding the worst-case deadline overshoot to one stride.
//!
//! [`exact_ged_within`] is the threshold-gated variant: branches whose
//! `g + h` reaches `tau` are pruned, and if every branch is pruned the
//! search reports a certified lower bound instead of a distance — the
//! branch-and-bound tier of the `ged_within` cascade.

use crate::lower_bounds::masked_label_multiset_lb;
use crate::mapping::{mapping_cost, NodeMapping, EPS};
use lan_graph::{Graph, Label, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::time::Instant;

/// Result of an exact GED attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactOutcome {
    /// The optimal distance and one optimal mapping.
    Optimal { distance: f64, mapping: NodeMapping },
    /// Deadline or expansion cap hit before proving optimality.
    TimedOut,
}

impl ExactOutcome {
    /// The distance if optimal.
    pub fn distance(&self) -> Option<f64> {
        match self {
            ExactOutcome::Optimal { distance, .. } => Some(*distance),
            ExactOutcome::TimedOut => None,
        }
    }
}

/// Result of a threshold-gated exact GED attempt ([`exact_ged_within`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ExactWithin {
    /// The true distance is below the threshold; this is it, with one
    /// optimal mapping.
    Optimal { distance: f64, mapping: NodeMapping },
    /// Every branch reached `g + h >= tau`: the true distance is at least
    /// this value (which is `>= tau`).
    AtLeast(f64),
    /// Deadline or expansion cap hit before a verdict.
    TimedOut,
}

/// Limits for the exact search.
#[derive(Debug, Clone, Copy)]
pub struct ExactLimits {
    /// Wall-clock budget in milliseconds (the paper uses 10 s for ground
    /// truth).
    pub timeout_ms: u64,
    /// Hard cap on A\* expansions, bounding memory.
    pub max_expansions: usize,
    /// Deadline poll interval in A\* expansions: the wall clock is read
    /// once every `poll_stride` expansions, so an expired deadline
    /// overshoots by at most `poll_stride` expansions (pinned by the
    /// `poll_stride_bounds_deadline_overshoot` test). Smaller strides
    /// honor deadlines more tightly at the cost of more `Instant::now`
    /// calls; the serving path tightens the process default via
    /// [`set_default_poll_stride`] so shed deadlines are respected with
    /// bounded overshoot.
    pub poll_stride: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            timeout_ms: 10_000,
            max_expansions: 2_000_000,
            poll_stride: default_poll_stride(),
        }
    }
}

/// Programmatic override of the default deadline poll stride (`0` means
/// "unset"); `LAN_GED_POLL_STRIDE` still wins when present so operators
/// keep the last word.
static DEFAULT_POLL_STRIDE_CELL: AtomicUsize = AtomicUsize::new(0);

/// The historical hard-coded poll interval, used when neither the env
/// knob nor [`set_default_poll_stride`] overrides it.
const BASE_POLL_STRIDE: usize = 256;

/// Sets the process-wide default for [`ExactLimits::poll_stride`]
/// (clamped to >= 1). The explicit `LAN_GED_POLL_STRIDE` env knob, when
/// set and valid, takes precedence. The serving front-end calls this at
/// boot to tighten deadline honoring without requiring every caller to
/// thread a stride through the cascade.
pub fn set_default_poll_stride(stride: usize) {
    DEFAULT_POLL_STRIDE_CELL.store(stride.max(1), AtomicOrdering::Relaxed);
}

/// Resolves the default poll stride: `LAN_GED_POLL_STRIDE` (positive
/// integer, loudly rejected otherwise), else the programmatic override,
/// else the historical 256.
fn default_poll_stride() -> usize {
    if let Some(s) =
        lan_par::env::parse_var_or_warn("LAN_GED_POLL_STRIDE", lan_par::env::positive_usize)
    {
        return s;
    }
    match DEFAULT_POLL_STRIDE_CELL.load(AtomicOrdering::Relaxed) {
        0 => BASE_POLL_STRIDE,
        s => s,
    }
}

#[derive(Clone)]
struct State {
    /// Assignment of g1 nodes 0..map.len().
    map: Vec<NodeId>,
    used: u64, // bitmask over g2 nodes (n2 <= 64 enforced by fallback)
    g: f64,
    fixed2: u32, // g2 edges with both endpoints used
}

struct HeapItem {
    f: f64,
    depth: usize,
    seq: u64,
    state: State,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.depth == other.depth && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f; deeper states first on ties (depth-first bias finds
        // complete mappings sooner); FIFO on seq for determinism.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Exact GED between `g1` and `g2` under the unit cost model.
///
/// Graphs with more than 64 nodes on the smaller side are rejected as
/// [`ExactOutcome::TimedOut`] (the bitmask state would overflow; the paper's
/// protocol would time such pairs out anyway).
pub fn exact_ged(g1: &Graph, g2: &Graph, limits: &ExactLimits) -> ExactOutcome {
    match exact_ged_within(g1, g2, limits, f64::INFINITY) {
        ExactWithin::Optimal { distance, mapping } => ExactOutcome::Optimal { distance, mapping },
        // Unreachable with an infinite threshold; defensive mapping only.
        ExactWithin::AtLeast(_) => ExactOutcome::TimedOut,
        ExactWithin::TimedOut => ExactOutcome::TimedOut,
    }
}

/// Exact GED, aborting as soon as the distance is provably `>= tau`.
///
/// Identical search to [`exact_ged`] except that branches with
/// `g + h >= tau` are never enqueued; if the open list drains, the minimum
/// pruned `f` is a certified lower bound on the true distance (every leaf
/// descends from some pruned branch, and `h` is admissible).
pub fn exact_ged_within(g1: &Graph, g2: &Graph, limits: &ExactLimits, tau: f64) -> ExactWithin {
    exact_ged_within_counted(g1, g2, limits, tau).0
}

/// [`exact_ged_within`] that additionally reports how many A\* expansions
/// ran — the observable the deadline-overshoot test pins down (`TimedOut`
/// with an already-expired deadline must happen within one
/// [`ExactLimits::poll_stride`] of expansions).
pub fn exact_ged_within_counted(
    g1: &Graph,
    g2: &Graph,
    limits: &ExactLimits,
    tau: f64,
) -> (ExactWithin, usize) {
    // Map from the smaller graph for a shallower tree; GED is symmetric.
    if g1.node_count() > g2.node_count() {
        let (out, n) = exact_ged_within_counted(g2, g1, limits, tau);
        return match out {
            ExactWithin::Optimal { distance, mapping } => {
                // Invert the mapping direction.
                let mut inv = vec![EPS; g1.node_count()];
                for (u, &v) in mapping.map.iter().enumerate() {
                    if v != EPS {
                        inv[v as usize] = u as NodeId;
                    }
                }
                (
                    ExactWithin::Optimal {
                        distance,
                        mapping: NodeMapping { map: inv },
                    },
                    n,
                )
            }
            t => (t, n),
        };
    }
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    if n2 > 64 {
        return (ExactWithin::TimedOut, 0);
    }
    let deadline = Instant::now() + std::time::Duration::from_millis(limits.timeout_ms);

    // r1[i]: g1 edges not yet fixed when the first i nodes are assigned
    // (an edge (u,w), u<w is fixed once w < i).
    let mut r1 = vec![0u32; n1 + 1];
    for (i, r) in r1.iter_mut().enumerate() {
        *r = g1.edges().filter(|&(_, w)| (w as usize) >= i).count() as u32;
    }
    let e2 = g2.edge_count() as u32;

    // Precomputed heuristic inputs: sorted label suffixes of g1 (suffix i =
    // labels of the unassigned nodes i..), and g2's nodes sorted by label so
    // the remaining multiset streams from the used mask without allocating.
    let mut suffixes: Vec<Vec<Label>> = Vec::with_capacity(n1 + 1);
    for i in 0..=n1 {
        let mut s = g1.labels()[i..].to_vec();
        s.sort_unstable();
        suffixes.push(s);
    }
    let mut g2_sorted: Vec<(Label, NodeId)> = g2
        .labels()
        .iter()
        .enumerate()
        .map(|(v, &l)| (l, v as NodeId))
        .collect();
    g2_sorted.sort_unstable();
    let heuristic = |i: usize, used: u64, fixed2: u32| -> f64 {
        // Node part: label multiset LB between remaining g1 labels and
        // unused g2 labels; edge part: remaining edge-count difference.
        let node_lb =
            masked_label_multiset_lb(&suffixes[i], &g2_sorted, |v| used & (1u64 << v) != 0);
        let re1 = r1[i] as f64;
        let re2 = (e2 - fixed2) as f64;
        node_lb + (re1 - re2).abs()
    };

    // Minimum f over branches pruned by tau — a lower bound on every leaf
    // below them, hence on the distance if the open list drains.
    let mut min_pruned = f64::INFINITY;

    let h0 = heuristic(0, 0, 0);
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    let mut seq = 0u64;
    if h0 < tau {
        heap.push(HeapItem {
            f: h0,
            depth: 0,
            seq,
            state: State {
                map: Vec::new(),
                used: 0,
                g: 0.0,
                fixed2: 0,
            },
        });
    } else {
        min_pruned = h0;
    }

    let poll_stride = limits.poll_stride.max(1);
    let mut expansions = 0usize;
    while let Some(HeapItem { state, .. }) = heap.pop() {
        expansions += 1;
        if expansions.is_multiple_of(poll_stride) && Instant::now() > deadline {
            return (ExactWithin::TimedOut, expansions);
        }
        if expansions > limits.max_expansions {
            return (ExactWithin::TimedOut, expansions);
        }
        let i = state.map.len();
        if i == n1 {
            // Complete: add insertion cost for unused g2 nodes and edges.
            let mapping = NodeMapping { map: state.map };
            let distance = mapping_cost(g1, g2, &mapping);
            // Sanity: terminal g must agree with the induced path cost.
            debug_assert!(
                (terminal_cost(&state.g, n2, state.used, e2, state.fixed2) - distance).abs() < 1e-9
            );
            return (ExactWithin::Optimal { distance, mapping }, expansions);
        }
        let u = i as NodeId;
        // Child: u -> v for each unused v.
        for v in 0..n2 as NodeId {
            if state.used & (1u64 << v) != 0 {
                continue;
            }
            let mut g = state.g;
            if g1.label(u) != g2.label(v) {
                g += 1.0;
            }
            // Edge costs against already-assigned nodes. Every g2 edge from
            // v into the used set corresponds to exactly one assigned j
            // (used nodes are exactly the mapped targets), so this loop
            // accounts for all newly fixed edges of both graphs: matched
            // pairs are free, mismatches cost one deletion or insertion.
            let mut fixed2 = state.fixed2;
            for j in 0..i {
                let w = j as NodeId;
                let pv = state.map[j];
                let e1 = g1.has_edge(u, w);
                let e2e = pv != EPS && g2.has_edge(v, pv);
                if e1 != e2e {
                    g += 1.0;
                }
                if e2e {
                    fixed2 += 1;
                }
            }

            let used = state.used | (1u64 << v);
            let h = heuristic(i + 1, used, fixed2);
            let f = g + h;
            if f >= tau {
                min_pruned = min_pruned.min(f);
                continue;
            }
            let mut map = state.map.clone();
            map.push(v);
            seq += 1;
            heap.push(HeapItem {
                f,
                depth: i + 1,
                seq,
                state: State {
                    map,
                    used,
                    g,
                    fixed2,
                },
            });
        }
        // Child: u -> EPS (delete u and its edges to assigned nodes).
        {
            let mut g = state.g + 1.0;
            for j in 0..i {
                if g1.has_edge(u, j as NodeId) {
                    g += 1.0;
                }
            }
            let h = heuristic(i + 1, state.used, state.fixed2);
            let f = g + h;
            if f >= tau {
                min_pruned = min_pruned.min(f);
            } else {
                let mut map = state.map.clone();
                map.push(EPS);
                seq += 1;
                heap.push(HeapItem {
                    f,
                    depth: i + 1,
                    seq,
                    state: State {
                        map,
                        used: state.used,
                        g,
                        fixed2: state.fixed2,
                    },
                });
            }
        }
    }
    // The open list drained: every branch hit the threshold. With an
    // infinite tau this is unreachable (the ε-child is always enqueued, so
    // some leaf is reached first).
    debug_assert!(min_pruned >= tau);
    (ExactWithin::AtLeast(min_pruned), expansions)
}

/// Terminal completion cost: unused g2 nodes inserted, plus g2 edges not yet
/// fixed (each such edge has an unused endpoint, hence must be inserted).
fn terminal_cost(g: &f64, n2: usize, used: u64, e2: u32, fixed2: u32) -> f64 {
    let unused = n2 as u32 - used.count_ones();
    g + unused as f64 + (e2 - fixed2) as f64
}

/// Brute-force exact GED by exhaustive mapping enumeration. Exponential —
/// test oracle only (n1, n2 ≤ ~6).
pub fn brute_force_ged(g1: &Graph, g2: &Graph) -> f64 {
    fn rec(g1: &Graph, g2: &Graph, map: &mut Vec<NodeId>, used: &mut Vec<bool>, best: &mut f64) {
        if map.len() == g1.node_count() {
            let cost = mapping_cost(g1, g2, &NodeMapping { map: map.clone() });
            if cost < *best {
                *best = cost;
            }
            return;
        }
        for v in 0..g2.node_count() {
            if !used[v] {
                used[v] = true;
                map.push(v as NodeId);
                rec(g1, g2, map, used, best);
                map.pop();
                used[v] = false;
            }
        }
        map.push(EPS);
        rec(g1, g2, map, used, best);
        map.pop();
    }
    let mut best = f64::INFINITY;
    rec(
        g1,
        g2,
        &mut Vec::new(),
        &mut vec![false; g2.node_count()],
        &mut best,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds::label_size_lb;
    use lan_graph::generators::erdos_renyi;
    use lan_graph::perturb::perturb;
    use lan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fig2() -> (Graph, Graph) {
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        (g, q)
    }

    #[test]
    fn identical_graphs() {
        let (g, _) = fig2();
        let out = exact_ged(&g, &g, &ExactLimits::default());
        assert_eq!(out.distance(), Some(0.0));
    }

    #[test]
    fn fig2_is_five() {
        let (g, q) = fig2();
        assert_eq!(
            exact_ged(&g, &q, &ExactLimits::default()).distance(),
            Some(5.0)
        );
        assert_eq!(brute_force_ged(&g, &q), 5.0);
    }

    #[test]
    fn symmetry() {
        let (g, q) = fig2();
        let d1 = exact_ged(&g, &q, &ExactLimits::default())
            .distance()
            .unwrap();
        let d2 = exact_ged(&q, &g, &ExactLimits::default())
            .distance()
            .unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn empty_vs_nonempty() {
        let e = Graph::empty();
        let g = Graph::from_edges(vec![0, 1], &[(0, 1)]).unwrap();
        // Build g from nothing: 2 node inserts + 1 edge insert.
        assert_eq!(
            exact_ged(&e, &g, &ExactLimits::default()).distance(),
            Some(3.0)
        );
        assert_eq!(
            exact_ged(&e, &e, &ExactLimits::default()).distance(),
            Some(0.0)
        );
    }

    #[test]
    fn single_relabel() {
        let g1 = Graph::from_edges(vec![0, 1], &[(0, 1)]).unwrap();
        let g2 = Graph::from_edges(vec![0, 2], &[(0, 1)]).unwrap();
        assert_eq!(
            exact_ged(&g1, &g2, &ExactLimits::default()).distance(),
            Some(1.0)
        );
    }

    #[test]
    fn agrees_with_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..40 {
            let g1 = erdos_renyi(&mut rng, 4, 4, 3);
            let g2 = erdos_renyi(&mut rng, 5, 5, 3);
            let want = brute_force_ged(&g1, &g2);
            let got = exact_ged(&g1, &g2, &ExactLimits::default())
                .distance()
                .unwrap();
            assert_eq!(got, want, "mismatch for {g1:?} vs {g2:?}");
        }
    }

    #[test]
    fn lower_bound_is_admissible() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..30 {
            let g1 = erdos_renyi(&mut rng, 5, 5, 4);
            let g2 = erdos_renyi(&mut rng, 5, 6, 4);
            let d = exact_ged(&g1, &g2, &ExactLimits::default())
                .distance()
                .unwrap();
            assert!(label_size_lb(&g1, &g2) <= d + 1e-9);
        }
    }

    #[test]
    fn perturbation_bounds_ged() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let g = erdos_renyi(&mut rng, 6, 6, 4);
            let (p, applied) = perturb(&mut rng, &g, 3, 4);
            let d = exact_ged(&g, &p, &ExactLimits::default())
                .distance()
                .unwrap();
            assert!(d <= applied as f64 + 1e-9, "d={d} applied={applied}");
        }
    }

    #[test]
    fn isomorphism_invariance() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = erdos_renyi(&mut rng, 6, 7, 3);
        let perm: Vec<u32> = vec![5, 3, 0, 1, 4, 2];
        let p = g.permute(&perm);
        assert_eq!(
            exact_ged(&g, &p, &ExactLimits::default()).distance(),
            Some(0.0)
        );
    }

    #[test]
    fn timeout_reported() {
        let mut rng = StdRng::seed_from_u64(25);
        let g1 = erdos_renyi(&mut rng, 24, 40, 2);
        let g2 = erdos_renyi(&mut rng, 24, 40, 2);
        let out = exact_ged(
            &g1,
            &g2,
            &ExactLimits {
                timeout_ms: 1,
                max_expansions: 10_000,
                ..ExactLimits::default()
            },
        );
        // Either it got lucky fast or reports a timeout; must not hang.
        match out {
            ExactOutcome::Optimal { distance, .. } => assert!(distance >= 0.0),
            ExactOutcome::TimedOut => {}
        }
    }

    #[test]
    fn batched_deadline_check_still_fires() {
        // The deadline is only polled every 256 expansions; on an instance
        // whose search space dwarfs that stride, an already-expired deadline
        // must still be detected. C24 vs two disjoint C12s: uniform labels
        // and all-2 degrees make every cheap bound zero, and the true
        // distance is positive, so no leaf is reachable within 256
        // expansions — the outcome is deterministically TimedOut.
        let c24: Vec<(u32, u32)> = (0..24).map(|i| (i, (i + 1) % 24)).collect();
        let g1 = Graph::from_edges(vec![0; 24], &c24).unwrap();
        let two_c12: Vec<(u32, u32)> = (0..12)
            .map(|i| (i, (i + 1) % 12))
            .chain((0..12).map(|i| (12 + i, 12 + (i + 1) % 12)))
            .collect();
        let g2 = Graph::from_edges(vec![0; 24], &two_c12).unwrap();
        let out = exact_ged(
            &g1,
            &g2,
            &ExactLimits {
                timeout_ms: 0,
                max_expansions: usize::MAX,
                ..ExactLimits::default()
            },
        );
        assert_eq!(out, ExactOutcome::TimedOut);
    }

    #[test]
    fn poll_stride_bounds_deadline_overshoot() {
        // Worst-case deadline overshoot is one poll stride: with an
        // already-expired deadline (timeout 0) on the same
        // no-leaf-within-reach instance as above, the search must stop at
        // the FIRST poll — exactly `poll_stride` expansions, never more.
        let c24: Vec<(u32, u32)> = (0..24).map(|i| (i, (i + 1) % 24)).collect();
        let g1 = Graph::from_edges(vec![0; 24], &c24).unwrap();
        let two_c12: Vec<(u32, u32)> = (0..12)
            .map(|i| (i, (i + 1) % 12))
            .chain((0..12).map(|i| (12 + i, 12 + (i + 1) % 12)))
            .collect();
        let g2 = Graph::from_edges(vec![0; 24], &two_c12).unwrap();
        for stride in [1usize, 8, 64, 256] {
            let limits = ExactLimits {
                timeout_ms: 0,
                max_expansions: usize::MAX,
                poll_stride: stride,
            };
            let (out, expansions) = exact_ged_within_counted(&g1, &g2, &limits, f64::INFINITY);
            assert_eq!(out, ExactWithin::TimedOut, "stride {stride}");
            assert_eq!(
                expansions, stride,
                "expired deadline overshot the poll stride"
            );
        }
    }

    #[test]
    fn poll_stride_default_resolution() {
        // Env knob > programmatic override > historical 256; malformed
        // env values warn and fall through to the override.
        lan_par::testenv::with_env(&[("LAN_GED_POLL_STRIDE", None)], || {
            set_default_poll_stride(0); // clamps to 1
            assert_eq!(ExactLimits::default().poll_stride, 1);
            set_default_poll_stride(64);
            assert_eq!(ExactLimits::default().poll_stride, 64);
        });
        lan_par::testenv::with_env(&[("LAN_GED_POLL_STRIDE", Some("32"))], || {
            set_default_poll_stride(64);
            assert_eq!(ExactLimits::default().poll_stride, 32);
        });
        lan_par::testenv::with_env(&[("LAN_GED_POLL_STRIDE", Some("zero"))], || {
            lan_par::env::reset_warnings();
            set_default_poll_stride(77);
            assert_eq!(ExactLimits::default().poll_stride, 77);
        });
        // Other tests construct ExactLimits::default() concurrently; leave
        // the process default on the historical stride. (256 is what an
        // unset cell resolves to, so storing it directly is equivalent.)
        set_default_poll_stride(256);
    }

    #[test]
    fn returned_mapping_cost_matches_distance() {
        let mut rng = StdRng::seed_from_u64(26);
        for _ in 0..20 {
            let g1 = erdos_renyi(&mut rng, 5, 4, 3);
            let g2 = erdos_renyi(&mut rng, 4, 4, 3);
            if let ExactWithin::Optimal { distance, mapping } =
                exact_ged_within(&g1, &g2, &ExactLimits::default(), f64::INFINITY)
            {
                assert_eq!(mapping_cost(&g1, &g2, &mapping), distance);
            } else {
                panic!("tiny instance timed out");
            }
        }
    }

    #[test]
    fn within_agrees_with_full_search() {
        // For every tau: result below tau => identical Optimal; otherwise a
        // certified AtLeast(lb) with tau <= lb <= true distance.
        let mut rng = StdRng::seed_from_u64(27);
        for _ in 0..30 {
            let g1 = erdos_renyi(&mut rng, 5, 5, 3);
            let g2 = erdos_renyi(&mut rng, 5, 4, 3);
            let d = exact_ged(&g1, &g2, &ExactLimits::default())
                .distance()
                .unwrap();
            for tau_i in 0..=(d as i64 + 2) {
                let tau = tau_i as f64;
                match exact_ged_within(&g1, &g2, &ExactLimits::default(), tau) {
                    ExactWithin::Optimal { distance, .. } => {
                        assert!(distance < tau);
                        assert_eq!(distance, d);
                    }
                    ExactWithin::AtLeast(lb) => {
                        assert!(d >= tau, "pruned although d={d} < tau={tau}");
                        assert!(lb >= tau && lb <= d + 1e-9, "lb={lb} d={d} tau={tau}");
                    }
                    ExactWithin::TimedOut => panic!("tiny instance timed out"),
                }
            }
        }
    }

    #[test]
    fn within_prunes_equal_distance() {
        // tau == d must abort (the contract is strict: Optimal only when
        // d < tau).
        let (g, q) = fig2();
        match exact_ged_within(&g, &q, &ExactLimits::default(), 5.0) {
            ExactWithin::AtLeast(lb) => assert!(lb >= 5.0),
            other => panic!("expected AtLeast, got {other:?}"),
        }
        let mut rng = StdRng::seed_from_u64(28);
        let g1 = erdos_renyi(&mut rng, 5, 5, 3);
        assert_eq!(
            exact_ged_within(&g1, &g1, &ExactLimits::default(), 1.0),
            ExactWithin::Optimal {
                distance: 0.0,
                mapping: NodeMapping::identity(5)
            }
        );
    }

    #[test]
    fn within_symmetry_swap_handles_bounds() {
        // g1 larger than g2 exercises the swap path for AtLeast results.
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..10 {
            let g1 = erdos_renyi(&mut rng, 6, 7, 3);
            let g2 = erdos_renyi(&mut rng, 4, 3, 3);
            let d = exact_ged(&g1, &g2, &ExactLimits::default())
                .distance()
                .unwrap();
            let tau = rng.gen_range(1..10) as f64;
            match exact_ged_within(&g1, &g2, &ExactLimits::default(), tau) {
                ExactWithin::Optimal { distance, mapping } => {
                    assert_eq!(distance, d);
                    assert!(distance < tau);
                    assert_eq!(mapping.map.len(), g1.node_count());
                    assert_eq!(mapping_cost(&g1, &g2, &mapping), distance);
                }
                ExactWithin::AtLeast(lb) => {
                    assert!(lb >= tau && lb <= d + 1e-9);
                }
                ExactWithin::TimedOut => panic!("tiny instance timed out"),
            }
        }
    }
}
