//! Beam-search suboptimal GED (the paper's "Beam" [58], Neuhaus, Riesen &
//! Bunke).
//!
//! The search tree is the same node-mapping tree as exact A\*
//! ([`crate::exact`]), but at each depth only the `width` most promising
//! partial mappings (by `g + h`) survive. The best complete mapping found is
//! returned; its cost is the exact cost of a valid edit path, hence an upper
//! bound on true GED. With `width = ∞` this degenerates to breadth-first
//! exact search; with `width = 1` it is a greedy matcher.

use crate::lower_bounds::masked_label_multiset_lb;
use crate::mapping::{mapping_cost, NodeMapping, EPS};
use lan_graph::{Graph, Label, NodeId};

#[derive(Clone)]
struct Partial {
    map: Vec<NodeId>,
    used: Vec<bool>,
    g: f64,
    f: f64,
}

/// Beam-search approximate GED with the given beam width, returning the
/// distance and the mapping that achieves it.
pub fn beam_ged_with_mapping(g1: &Graph, g2: &Graph, width: usize) -> (f64, NodeMapping) {
    assert!(width >= 1, "beam width must be at least 1");
    // Search from the smaller side: shallower tree, better pruning.
    if g1.node_count() > g2.node_count() {
        let (d, m) = beam_ged_with_mapping(g2, g1, width);
        let mut inv = vec![EPS; g1.node_count()];
        for (u, &v) in m.map.iter().enumerate() {
            if v != EPS {
                inv[v as usize] = u as NodeId;
            }
        }
        return (d, NodeMapping { map: inv });
    }
    let n1 = g1.node_count();
    let n2 = g2.node_count();

    // Allocation-free heuristic inputs (same scheme as `crate::exact`):
    // sorted label suffixes of g1, and g2's nodes sorted by label so each
    // partial's remaining multiset streams through its `used` mask. The
    // values are identical to the allocating label-multiset oracle.
    let suffixes: Vec<Vec<Label>> = (0..=n1)
        .map(|i| {
            let mut s = g1.labels()[i..].to_vec();
            s.sort_unstable();
            s
        })
        .collect();
    let mut g2_sorted: Vec<(Label, NodeId)> = g2
        .labels()
        .iter()
        .enumerate()
        .map(|(v, &l)| (l, v as NodeId))
        .collect();
    g2_sorted.sort_unstable();
    let heuristic = |p: &Partial| -> f64 {
        masked_label_multiset_lb(&suffixes[p.map.len()], &g2_sorted, |v| p.used[v as usize])
    };

    let mut frontier = vec![Partial {
        map: Vec::new(),
        used: vec![false; n2],
        g: 0.0,
        f: 0.0,
    }];
    for i in 0..n1 {
        let u = i as NodeId;
        let mut next: Vec<Partial> = Vec::with_capacity(frontier.len() * (n2 + 1));
        for p in &frontier {
            // u -> v for each unused v.
            for v in 0..n2 as NodeId {
                if p.used[v as usize] {
                    continue;
                }
                let mut g = p.g;
                if g1.label(u) != g2.label(v) {
                    g += 1.0;
                }
                for j in 0..i {
                    let pv = p.map[j];
                    let e1 = g1.has_edge(u, j as NodeId);
                    let e2 = pv != EPS && g2.has_edge(v, pv);
                    if e1 != e2 {
                        g += 1.0;
                    }
                }
                let mut q = p.clone();
                q.map.push(v);
                q.used[v as usize] = true;
                q.g = g;
                q.f = g + heuristic(&q);
                next.push(q);
            }
            // u -> EPS.
            {
                let mut g = p.g + 1.0;
                for j in 0..i {
                    if g1.has_edge(u, j as NodeId) {
                        g += 1.0;
                    }
                }
                let mut q = p.clone();
                q.map.push(EPS);
                q.g = g;
                q.f = g + heuristic(&q);
                next.push(q);
            }
        }
        // Keep the `width` best by f (stable order for determinism).
        next.sort_by(|a, b| a.f.partial_cmp(&b.f).unwrap_or(std::cmp::Ordering::Equal));
        next.truncate(width);
        frontier = next;
    }

    frontier
        .into_iter()
        .map(|p| {
            let m = NodeMapping { map: p.map };
            let d = mapping_cost(g1, g2, &m);
            (d, m)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
        .expect("beam frontier never empty")
}

/// Beam-search approximate GED (distance only).
pub fn beam_ged(g1: &Graph, g2: &Graph, width: usize) -> f64 {
    beam_ged_with_mapping(g1, g2, width).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ged, ExactLimits};
    use lan_graph::generators::{erdos_renyi, molecule_like};
    use lan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_graphs_zero() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = molecule_like(&mut rng, 15, 3, 4, 6);
        assert_eq!(beam_ged(&g, &g, 4), 0.0);
    }

    #[test]
    fn upper_bounds_exact() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let g1 = erdos_renyi(&mut rng, 5, 5, 3);
            let g2 = erdos_renyi(&mut rng, 6, 6, 3);
            let exact = exact_ged(&g1, &g2, &ExactLimits::default())
                .distance()
                .unwrap();
            for w in [1, 4, 16] {
                let d = beam_ged(&g1, &g2, w);
                assert!(d + 1e-9 >= exact, "beam({w}) = {d} < exact {exact}");
            }
        }
    }

    #[test]
    fn wider_beam_never_worse() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..15 {
            let g1 = erdos_renyi(&mut rng, 6, 6, 3);
            let g2 = erdos_renyi(&mut rng, 6, 7, 3);
            let d_wide = beam_ged(&g1, &g2, 64);
            let exact = exact_ged(&g1, &g2, &ExactLimits::default())
                .distance()
                .unwrap();
            // A wide beam on tiny graphs should be optimal or very close.
            assert!(d_wide <= exact + 2.0, "wide beam {d_wide} vs exact {exact}");
        }
    }

    #[test]
    fn fig2_beam_reaches_optimum() {
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(beam_ged(&g, &q, 32), 5.0);
    }

    #[test]
    fn mapping_consistency() {
        let mut rng = StdRng::seed_from_u64(44);
        let g1 = molecule_like(&mut rng, 12, 2, 4, 5);
        let g2 = molecule_like(&mut rng, 14, 2, 4, 5);
        let (d, m) = beam_ged_with_mapping(&g1, &g2, 8);
        assert!(m.is_injective());
        assert_eq!(mapping_cost(&g1, &g2, &m), d);
        assert_eq!(m.map.len(), g1.node_count());
    }

    #[test]
    fn empty_graphs() {
        let e = Graph::empty();
        assert_eq!(beam_ged(&e, &e, 4), 0.0);
        let g = Graph::from_edges(vec![0, 0], &[(0, 1)]).unwrap();
        assert_eq!(beam_ged(&e, &g, 4), 3.0);
        assert_eq!(beam_ged(&g, &e, 4), 3.0);
    }

    #[test]
    fn scales_to_paper_sized_graphs() {
        let mut rng = StdRng::seed_from_u64(45);
        let g1 = molecule_like(&mut rng, 35, 3, 4, 10);
        let g2 = molecule_like(&mut rng, 36, 3, 4, 10);
        let d = beam_ged(&g1, &g2, 8);
        assert!(d > 0.0 && d < 200.0);
    }
}
