//! Exact solvers for the linear sum assignment problem (LSAP).
//!
//! Two independent implementations, matching the two bipartite GED
//! references the paper compares for ground truth:
//!
//! * [`hungarian`] — the Kuhn–Munkres algorithm in its O(n³)
//!   potentials/shortest-augmenting-path form (Riesen & Bunke's "Hung").
//! * [`lapjv`] — Jonker & Volgenant's LAPJV: column reduction + augmenting
//!   row reduction preprocessing followed by shortest augmenting paths
//!   (Fankhauser et al.'s "VJ" speed-up).
//!
//! Both return an *optimal* assignment. They may return different optimal
//! assignments when ties exist, which is why the two derived bipartite GED
//! approximations can differ on the same pair of graphs.
//!
//! Each solver exists in two forms: the plain entry point, which allocates
//! its working arrays, and a `*_with` form that reuses an [`AssignScratch`].
//! The `*_with` forms reinitialize every buffer to exactly the values the
//! allocating path starts from, so the two forms are bit-identical; routing
//! calls them thousands of times per query through the per-thread
//! [`crate::scratch::GedScratch`].

/// A square cost matrix stored row-major.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        CostMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates from a row-major vector. Panics if `data.len() != n * n`.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        CostMatrix { n, data }
    }

    /// Resets to an `n × n` zero matrix, reusing the existing allocation.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cost of assigning row `i` to column `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets the cost of assigning row `i` to column `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

/// An optimal assignment: `row_to_col[i]` is the column assigned to row `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub row_to_col: Vec<usize>,
    pub cost: f64,
}

/// Reusable working arrays for [`hungarian_with`] and [`lapjv_with`].
///
/// Every buffer is fully reinitialized at the start of each solve, so a
/// scratch carries no state between calls — only capacity.
#[derive(Debug, Default)]
pub struct AssignScratch {
    // Hungarian (1-based arrays of length n + 1).
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    // LAPJV.
    y: Vec<usize>,
    vv: Vec<f64>,
    free: Vec<usize>,
    next_free: Vec<usize>,
    d: Vec<f64>,
    pred: Vec<usize>,
    done: Vec<bool>,
    ready: Vec<usize>,
}

impl AssignScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Clears and refills `buf` with `len` copies of `val` (the scratch
/// equivalent of `vec![val; len]`).
#[inline]
fn refill<T: Copy>(buf: &mut Vec<T>, len: usize, val: T) {
    buf.clear();
    buf.resize(len, val);
}

/// Kuhn–Munkres with potentials (the classic O(n³) "Hungarian algorithm").
///
/// Follows the standard formulation with row potentials `u`, column
/// potentials `v`, and one Dijkstra-like augmentation per row.
pub fn hungarian(c: &CostMatrix) -> Assignment {
    hungarian_with(c, &mut AssignScratch::new())
}

/// [`hungarian`] reusing the caller's scratch buffers. Bit-identical to the
/// allocating form.
pub fn hungarian_with(c: &CostMatrix, s: &mut AssignScratch) -> Assignment {
    let n = c.n();
    if n == 0 {
        return Assignment {
            row_to_col: vec![],
            cost: 0.0,
        };
    }
    const INF: f64 = f64::INFINITY;
    // 1-based internally per the classic formulation; p[j] = row matched to
    // column j (0 = none).
    refill(&mut s.u, n + 1, 0.0);
    refill(&mut s.v, n + 1, 0.0);
    refill(&mut s.p, n + 1, 0);
    refill(&mut s.way, n + 1, 0);

    for i in 1..=n {
        s.p[0] = i;
        let mut j0 = 0usize;
        refill(&mut s.minv, n + 1, INF);
        refill(&mut s.used, n + 1, false);
        loop {
            s.used[j0] = true;
            let i0 = s.p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !s.used[j] {
                    let cur = c.get(i0 - 1, j - 1) - s.u[i0] - s.v[j];
                    if cur < s.minv[j] {
                        s.minv[j] = cur;
                        s.way[j] = j0;
                    }
                    if s.minv[j] < delta {
                        delta = s.minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if s.used[j] {
                    s.u[s.p[j]] += delta;
                    s.v[j] -= delta;
                } else {
                    s.minv[j] -= delta;
                }
            }
            j0 = j1;
            if s.p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = s.way[j0];
            s.p[j0] = s.p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![0usize; n];
    for j in 1..=n {
        if s.p[j] > 0 {
            row_to_col[s.p[j] - 1] = j - 1;
        }
    }
    let cost = (0..n).map(|i| c.get(i, row_to_col[i])).sum();
    Assignment { row_to_col, cost }
}

/// Jonker–Volgenant LAPJV.
///
/// Column reduction and augmenting row reduction resolve most rows without
/// search; the remaining free rows are matched with shortest augmenting
/// paths over the reduced costs.
pub fn lapjv(c: &CostMatrix) -> Assignment {
    lapjv_with(c, &mut AssignScratch::new())
}

/// [`lapjv`] reusing the caller's scratch buffers. Bit-identical to the
/// allocating form.
pub fn lapjv_with(c: &CostMatrix, s: &mut AssignScratch) -> Assignment {
    let n = c.n();
    if n == 0 {
        return Assignment {
            row_to_col: vec![],
            cost: 0.0,
        };
    }
    const INF: f64 = f64::INFINITY;
    // `x` (row -> col) is the returned assignment, so it is a fresh
    // allocation either way; `y` and the potentials come from scratch.
    let mut x = vec![usize::MAX; n];
    refill(&mut s.y, n, usize::MAX); // col -> row
    refill(&mut s.vv, n, 0.0); // column potentials

    // --- Column reduction (scan columns right-to-left). ---
    for j in (0..n).rev() {
        let mut imin = 0usize;
        let mut min = c.get(0, j);
        for i in 1..n {
            let cij = c.get(i, j);
            if cij < min {
                min = cij;
                imin = i;
            }
        }
        s.vv[j] = min;
        if x[imin] == usize::MAX {
            x[imin] = j;
            s.y[j] = imin;
        }
    }

    // --- Augmenting row reduction (two passes over unassigned rows). ---
    s.free.clear();
    s.free.extend((0..n).filter(|&i| x[i] == usize::MAX));
    for _ in 0..2 {
        let mut k = 0usize;
        let nfree = s.free.len();
        s.next_free.clear();
        while k < nfree {
            let i = s.free[k];
            k += 1;
            // Find the two smallest reduced costs in row i.
            let mut u1 = c.get(i, 0) - s.vv[0];
            let mut u2 = INF;
            let mut j1 = 0usize;
            let mut j2 = usize::MAX;
            for (j, &vj) in s.vv.iter().enumerate().skip(1) {
                let h = c.get(i, j) - vj;
                if h < u2 {
                    if h < u1 {
                        u2 = u1;
                        j2 = j1;
                        u1 = h;
                        j1 = j;
                    } else {
                        u2 = h;
                        j2 = j;
                    }
                }
            }
            let mut jbest = j1;
            let i0 = s.y[jbest];
            if u1 < u2 {
                s.vv[jbest] -= u2 - u1;
            } else if i0 != usize::MAX {
                if j2 == usize::MAX {
                    // No alternative column; leave potentials as-is and fall
                    // through to the augmentation phase for this row.
                    s.next_free.push(i);
                    continue;
                }
                jbest = j2;
            }
            x[i] = jbest;
            let prev = s.y[jbest];
            s.y[jbest] = i;
            if prev != usize::MAX {
                // prev row becomes free and is retried in the next pass.
                s.next_free.push(prev);
                x[prev] = usize::MAX;
            }
        }
        std::mem::swap(&mut s.free, &mut s.next_free);
        if s.free.is_empty() {
            break;
        }
    }

    // --- Augmentation: shortest augmenting path for each remaining row. ---
    for fi in 0..s.free.len() {
        let f = s.free[fi];
        s.d.clear();
        s.d.extend((0..n).map(|j| c.get(f, j) - s.vv[j]));
        refill(&mut s.pred, n, f);
        refill(&mut s.done, n, false);
        s.ready.clear();
        let endj;
        loop {
            // Find nearest unscanned column.
            let mut jmin = usize::MAX;
            let mut dmin = INF;
            for j in 0..n {
                if !s.done[j] && s.d[j] < dmin {
                    dmin = s.d[j];
                    jmin = j;
                }
            }
            debug_assert!(jmin != usize::MAX, "LAPJV: no reachable column");
            s.done[jmin] = true;
            s.ready.push(jmin);
            if s.y[jmin] == usize::MAX {
                endj = jmin;
                // Update potentials for scanned columns.
                for &j in &s.ready {
                    if j != jmin {
                        s.vv[j] += s.d[j] - dmin;
                    }
                }
                break;
            }
            // Relax through the row matched to jmin.
            let i = s.y[jmin];
            for j in 0..n {
                if !s.done[j] {
                    let nd = dmin + c.get(i, j) - s.vv[j] - (c.get(i, jmin) - s.vv[jmin]);
                    if nd < s.d[j] {
                        s.d[j] = nd;
                        s.pred[j] = i;
                    }
                }
            }
        }
        // Augment along the alternating path.
        let mut j = endj;
        loop {
            let i = s.pred[j];
            s.y[j] = i;
            std::mem::swap(&mut x[i], &mut j);
            if j == usize::MAX {
                break;
            }
        }
    }

    let cost = (0..n).map(|i| c.get(i, x[i])).sum();
    Assignment {
        row_to_col: x,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force optimum by permutation enumeration (n <= 8).
    fn brute(c: &CostMatrix) -> f64 {
        fn rec(c: &CostMatrix, i: usize, used: &mut [bool], acc: f64, best: &mut f64) {
            if i == c.n() {
                *best = best.min(acc);
                return;
            }
            if acc >= *best {
                return;
            }
            for j in 0..c.n() {
                if !used[j] {
                    used[j] = true;
                    rec(c, i + 1, used, acc + c.get(i, j), best);
                    used[j] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(c, 0, &mut vec![false; c.n()], 0.0, &mut best);
        best
    }

    fn random_matrix(rng: &mut StdRng, n: usize) -> CostMatrix {
        let data: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0..100) as f64).collect();
        CostMatrix::from_vec(n, data)
    }

    fn assert_valid(a: &Assignment, n: usize) {
        let mut seen = vec![false; n];
        for &j in &a.row_to_col {
            assert!(j < n);
            assert!(!seen[j], "column assigned twice");
            seen[j] = true;
        }
    }

    #[test]
    fn empty_matrix() {
        let c = CostMatrix::zeros(0);
        assert_eq!(hungarian(&c).cost, 0.0);
        assert_eq!(lapjv(&c).cost, 0.0);
    }

    #[test]
    fn one_by_one() {
        let c = CostMatrix::from_vec(1, vec![7.0]);
        assert_eq!(hungarian(&c).cost, 7.0);
        assert_eq!(lapjv(&c).cost, 7.0);
    }

    #[test]
    fn known_small_case() {
        // Classic 3x3 with optimum 5 (1 + 2 + 2 along the anti-diagonal-ish).
        let c = CostMatrix::from_vec(3, vec![4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0]);
        let h = hungarian(&c);
        let j = lapjv(&c);
        assert_eq!(h.cost, 5.0);
        assert_eq!(j.cost, 5.0);
        assert_valid(&h, 3);
        assert_valid(&j, 3);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_zero() {
        let n = 5;
        let mut c = CostMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                c.set(i, j, if i == j { 0.0 } else { 10.0 });
            }
        }
        assert_eq!(hungarian(&c).cost, 0.0);
        assert_eq!(lapjv(&c).cost, 0.0);
    }

    #[test]
    fn agrees_with_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 2..=7 {
            for _ in 0..25 {
                let c = random_matrix(&mut rng, n);
                let want = brute(&c);
                let h = hungarian(&c);
                let j = lapjv(&c);
                assert_eq!(h.cost, want, "hungarian wrong on n={n}");
                assert_eq!(j.cost, want, "lapjv wrong on n={n}");
                assert_valid(&h, n);
                assert_valid(&j, n);
            }
        }
    }

    #[test]
    fn solvers_agree_on_larger_random() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let c = random_matrix(&mut rng, 40);
            let h = hungarian(&c);
            let j = lapjv(&c);
            assert!((h.cost - j.cost).abs() < 1e-9, "{} vs {}", h.cost, j.cost);
            assert_valid(&h, 40);
            assert_valid(&j, 40);
        }
    }

    #[test]
    fn handles_infinities_as_forbidden() {
        // One forbidden cell off the only remaining feasible permutation.
        let big = 1e18;
        let c = CostMatrix::from_vec(2, vec![big, 1.0, 2.0, big]);
        assert_eq!(hungarian(&c).cost, 3.0);
        assert_eq!(lapjv(&c).cost, 3.0);
    }

    #[test]
    fn ties_still_optimal() {
        let c = CostMatrix::from_vec(3, vec![1.0; 9]);
        assert_eq!(hungarian(&c).cost, 3.0);
        assert_eq!(lapjv(&c).cost, 3.0);
    }

    #[test]
    fn reused_scratch_is_bit_identical() {
        // One long-lived scratch across a mixed-size workload must produce
        // exactly the outputs of the allocating path — including assignment
        // choice on ties, not just cost.
        let mut rng = StdRng::seed_from_u64(13);
        let mut scratch = AssignScratch::new();
        for _ in 0..40 {
            let n = rng.gen_range(1..=12);
            let c = random_matrix(&mut rng, n);
            let h_fresh = hungarian(&c);
            let h_scr = hungarian_with(&c, &mut scratch);
            assert_eq!(h_fresh, h_scr);
            assert_eq!(h_fresh.cost.to_bits(), h_scr.cost.to_bits());
            let j_fresh = lapjv(&c);
            let j_scr = lapjv_with(&c, &mut scratch);
            assert_eq!(j_fresh, j_scr);
            assert_eq!(j_fresh.cost.to_bits(), j_scr.cost.to_bits());
        }
    }
}
