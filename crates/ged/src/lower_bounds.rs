//! Admissible lower bounds on GED.
//!
//! Used as the A\* heuristic, as cheap filters, and as test oracles (every
//! lower bound must be ≤ the exact GED ≤ every approximation).

use lan_graph::{Graph, Label};

/// Label-multiset lower bound on the *node* edit cost between two label
/// multisets: `max(|A|, |B|) - |A ∩ B|` where the intersection is the
/// multiset intersection.
///
/// Every node mapping must relabel nodes whose labels cannot be matched and
/// delete/insert the size difference, so this bounds node edits from below.
pub fn label_multiset_lb(a: &[Label], b: &[Label]) -> f64 {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    (sa.len().max(sb.len()) - common) as f64
}

/// Full label-and-size lower bound on GED:
/// node part (label multiset) + edge part (`| |E1| - |E2| |`).
///
/// Any edit path must perform at least `| |E1| - |E2| |` edge insertions or
/// deletions in excess, independently of the node edits counted by the label
/// bound, so the sum is admissible.
pub fn label_size_lb(g1: &Graph, g2: &Graph) -> f64 {
    let node_lb = label_multiset_lb(g1.labels(), g2.labels());
    let edge_lb = (g1.edge_count() as f64 - g2.edge_count() as f64).abs();
    node_lb + edge_lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::Graph;

    #[test]
    fn identical_graphs_zero() {
        let g = Graph::from_edges(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(label_size_lb(&g, &g), 0.0);
    }

    #[test]
    fn multiset_bound_examples() {
        assert_eq!(label_multiset_lb(&[0, 0, 1], &[0, 1, 1]), 1.0);
        assert_eq!(label_multiset_lb(&[0, 0], &[0, 0, 0]), 1.0);
        assert_eq!(label_multiset_lb(&[], &[1, 2]), 2.0);
        assert_eq!(label_multiset_lb(&[], &[]), 0.0);
        assert_eq!(label_multiset_lb(&[5], &[6]), 1.0);
    }

    #[test]
    fn edge_part_counts() {
        let g1 = Graph::from_edges(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g2 = Graph::from_edges(vec![0, 0, 0], &[(0, 1)]).unwrap();
        assert_eq!(label_size_lb(&g1, &g2), 2.0);
    }

    #[test]
    fn fig2_lower_bound_below_exact() {
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let lb = label_size_lb(&g, &q);
        assert!(lb <= 5.0);
        assert!(lb >= 1.0);
    }
}
