//! Admissible lower bounds on GED.
//!
//! Used as the A\* heuristic, as cheap filters, and as test oracles (every
//! lower bound must be ≤ the exact GED ≤ every approximation).

use lan_graph::{Graph, Label, NodeId};

/// Label-multiset lower bound on the *node* edit cost between two label
/// multisets: `max(|A|, |B|) - |A ∩ B|` where the intersection is the
/// multiset intersection.
///
/// Every node mapping must relabel nodes whose labels cannot be matched and
/// delete/insert the size difference, so this bounds node edits from below.
pub fn label_multiset_lb(a: &[Label], b: &[Label]) -> f64 {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    sorted_label_multiset_lb(&sa, &sb)
}

/// [`label_multiset_lb`] over *pre-sorted* slices: a pure merge walk, no
/// allocation. This is the hot-path form — callers pass
/// `Graph::signature().sorted_labels()` (or scratch buffers they sorted
/// themselves). The allocating [`label_multiset_lb`] stays as the test
/// oracle.
pub fn sorted_label_multiset_lb(sa: &[Label], sb: &[Label]) -> f64 {
    debug_assert!(sa.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(sb.windows(2).all(|w| w[0] <= w[1]));
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    (sa.len().max(sb.len()) - common) as f64
}

/// [`label_multiset_lb`] between a pre-sorted label slice and the labels of
/// the `g2` nodes *not* excluded by `used`, streamed in sorted order from
/// `g2_sorted` (the graph's labels paired with their node ids, sorted by
/// label). No allocation — this is the per-expansion heuristic form used by
/// the A\* and beam searches, where the remaining `g2` multiset changes with
/// every partial mapping.
pub fn masked_label_multiset_lb(
    sorted_rem1: &[Label],
    g2_sorted: &[(Label, NodeId)],
    used: impl Fn(NodeId) -> bool,
) -> f64 {
    debug_assert!(sorted_rem1.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(g2_sorted.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut i = 0;
    let mut common = 0usize;
    let mut len2 = 0usize;
    for &(lab, v) in g2_sorted {
        if used(v) {
            continue;
        }
        len2 += 1;
        while i < sorted_rem1.len() && sorted_rem1[i] < lab {
            i += 1;
        }
        if i < sorted_rem1.len() && sorted_rem1[i] == lab {
            common += 1;
            i += 1;
        }
    }
    (sorted_rem1.len().max(len2) - common) as f64
}

/// Full label-and-size lower bound on GED:
/// node part (label multiset) + edge part (`| |E1| - |E2| |`).
///
/// Any edit path must perform at least `| |E1| - |E2| |` edge insertions or
/// deletions in excess, independently of the node edits counted by the label
/// bound, so the sum is admissible.
pub fn label_size_lb(g1: &Graph, g2: &Graph) -> f64 {
    let node_lb = sorted_label_multiset_lb(
        g1.signature().sorted_labels(),
        g2.signature().sorted_labels(),
    );
    let edge_lb = (g1.edge_count() as f64 - g2.edge_count() as f64).abs();
    node_lb + edge_lb
}

/// Degree-sequence edge lower bound: at least
/// `ceil(Σ |d1_(i) - d2_(i)| / 2)` edge edits are needed, where the two
/// degree sequences are sorted the same way and the shorter one is padded
/// with zeros.
///
/// Admissibility: fix any node mapping `φ`. For a matched pair `(u, φ(u))`,
/// `|deg(u) - deg(φ(u))|` is at most the number of non-preserved `G1`-edges
/// at `u` plus non-hit `G2`-edges at `φ(u)`; a deleted (inserted) node
/// contributes its full degree, all of whose edges must be deleted
/// (inserted). Summing over the padded pairing induced by `φ`, every edge
/// deletion/insertion is counted at most twice, so
/// `Σ |Δdeg| ≤ 2·(edge edits)`. The same-order sorted pairing minimizes
/// `Σ |Δdeg|` over all pairings, hence the bound holds for every `φ`.
pub fn degree_sequence_edge_lb(g1: &Graph, g2: &Graph) -> f64 {
    let d1 = g1.signature().degree_sequence();
    let d2 = g2.signature().degree_sequence();
    let (long, short) = if d1.len() >= d2.len() {
        (d1, d2)
    } else {
        (d2, d1)
    };
    let mut total: u64 = 0;
    for (i, &a) in long.iter().enumerate() {
        let b = short.get(i).copied().unwrap_or(0);
        total += a.abs_diff(b) as u64;
    }
    total.div_ceil(2) as f64
}

/// Tier-2 cascade bound: label-multiset node part + the stronger of the
/// size and degree-sequence edge parts. Dominates [`label_size_lb`]
/// (`Σ |Δdeg| / 2 ≥ | |E1| - |E2| |` since degree sums are `2|E|`), while
/// staying `O(n)` on precomputed signatures.
pub fn label_degree_lb(g1: &Graph, g2: &Graph) -> f64 {
    let node_lb = sorted_label_multiset_lb(
        g1.signature().sorted_labels(),
        g2.signature().sorted_labels(),
    );
    let size_edge = (g1.edge_count() as f64 - g2.edge_count() as f64).abs();
    node_lb + degree_sequence_edge_lb(g1, g2).max(size_edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::Graph;

    #[test]
    fn identical_graphs_zero() {
        let g = Graph::from_edges(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(label_size_lb(&g, &g), 0.0);
    }

    #[test]
    fn multiset_bound_examples() {
        assert_eq!(label_multiset_lb(&[0, 0, 1], &[0, 1, 1]), 1.0);
        assert_eq!(label_multiset_lb(&[0, 0], &[0, 0, 0]), 1.0);
        assert_eq!(label_multiset_lb(&[], &[1, 2]), 2.0);
        assert_eq!(label_multiset_lb(&[], &[]), 0.0);
        assert_eq!(label_multiset_lb(&[5], &[6]), 1.0);
    }

    #[test]
    fn edge_part_counts() {
        let g1 = Graph::from_edges(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let g2 = Graph::from_edges(vec![0, 0, 0], &[(0, 1)]).unwrap();
        assert_eq!(label_size_lb(&g1, &g2), 2.0);
    }

    #[test]
    fn sorted_variant_matches_allocating_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xded);
        for _ in 0..200 {
            let na = rng.gen_range(0..12);
            let nb = rng.gen_range(0..12);
            let a: Vec<Label> = (0..na).map(|_| rng.gen_range(0..5)).collect();
            let b: Vec<Label> = (0..nb).map(|_| rng.gen_range(0..5)).collect();
            let mut sa = a.clone();
            let mut sb = b.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(
                label_multiset_lb(&a, &b),
                sorted_label_multiset_lb(&sa, &sb)
            );
        }
    }

    #[test]
    fn signature_bound_matches_slice_oracle() {
        let g1 = Graph::from_edges(vec![2, 0, 1, 0], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let g2 = Graph::from_edges(vec![0, 1, 2], &[(0, 2)]).unwrap();
        assert_eq!(
            sorted_label_multiset_lb(
                g1.signature().sorted_labels(),
                g2.signature().sorted_labels()
            ),
            label_multiset_lb(g1.labels(), g2.labels())
        );
    }

    #[test]
    fn masked_variant_matches_allocating_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xbee);
        for _ in 0..200 {
            let na = rng.gen_range(0..10);
            let n2 = rng.gen_range(0..10usize);
            let mut a: Vec<Label> = (0..na).map(|_| rng.gen_range(0..4)).collect();
            a.sort_unstable();
            let labels2: Vec<Label> = (0..n2).map(|_| rng.gen_range(0..4)).collect();
            let used: Vec<bool> = (0..n2).map(|_| rng.gen_bool(0.4)).collect();
            let mut g2_sorted: Vec<(Label, NodeId)> = labels2
                .iter()
                .enumerate()
                .map(|(v, &l)| (l, v as NodeId))
                .collect();
            g2_sorted.sort_unstable();
            let rem2: Vec<Label> = (0..n2).filter(|&v| !used[v]).map(|v| labels2[v]).collect();
            assert_eq!(
                masked_label_multiset_lb(&a, &g2_sorted, |v| used[v as usize]),
                label_multiset_lb(&a, &rem2)
            );
        }
    }

    #[test]
    fn degree_bound_examples() {
        // Triangle vs path on equal labels: degree sequences [2,2,2] vs
        // [2,1,1] -> sum |Δ| = 2 -> 1 edge edit; size bound also 1.
        let tri = Graph::from_edges(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let path = Graph::from_edges(vec![0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(degree_sequence_edge_lb(&tri, &path), 1.0);
        assert_eq!(label_degree_lb(&tri, &path), 1.0);

        // Star vs path on 4 equal-label nodes: same |E|, but degree
        // sequences [3,1,1,1] vs [2,2,1,1] differ -> the degree bound sees
        // an edit the size bound misses.
        let star = Graph::from_edges(vec![0; 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let p4 = Graph::from_edges(vec![0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(label_size_lb(&star, &p4), 0.0);
        assert_eq!(degree_sequence_edge_lb(&star, &p4), 1.0);
        assert_eq!(label_degree_lb(&star, &p4), 1.0);
    }

    #[test]
    fn degree_bound_dominates_size_bound() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let g1 = lan_graph::generators::molecule_like(&mut rng, 10, 3, 3, 6);
            let g2 = lan_graph::generators::molecule_like(&mut rng, 8, 3, 3, 6);
            assert!(label_degree_lb(&g1, &g2) >= label_size_lb(&g1, &g2));
        }
    }

    #[test]
    fn fig2_lower_bound_below_exact() {
        let g = Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let lb = label_size_lb(&g, &q);
        assert!(lb <= 5.0);
        assert!(lb >= 1.0);
    }
}
