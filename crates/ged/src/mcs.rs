//! Maximum common subgraph (MCS) and MCS-based distances.
//!
//! The paper (§I, §III-A) names GED and **MCS-based distance** as the two
//! standard graph-database similarity measures and treats MCS as a special
//! case of GED [48] (Bunke 1997: under a node-only cost function,
//! `d(G1, G2) = |V1| + |V2| - 2·|mcs(G1, G2)|`). This module provides:
//!
//! * [`mcs_size`] — the size (node count) of a maximum common *induced*
//!   subgraph (McGregor-style branch-and-bound over label-preserving,
//!   adjacency-consistent partial injections — the Bunke–Shearer
//!   similarity's MCS), with an expansion budget so it is total;
//! * [`mcs_distance`] — Bunke's unnormalized distance;
//! * [`mcs_distance_normalized`] — `1 - |mcs| / max(|V1|, |V2|)` in
//!   `[0, 1]`, the form used by similarity-search systems.
//!
//! Any of these can serve as the operational metric of a
//! `lan_datasets::DatasetSpec` — the routing layer is metric-agnostic.

use lan_graph::{Graph, NodeId};

/// Limits for the branch-and-bound search.
#[derive(Debug, Clone, Copy)]
pub struct McsLimits {
    /// Cap on search-tree expansions before falling back to the best
    /// mapping found so far (keeps the NP-hard search total).
    pub max_expansions: usize,
}

impl Default for McsLimits {
    fn default() -> Self {
        McsLimits {
            max_expansions: 200_000,
        }
    }
}

struct McsSearch<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    limits: McsLimits,
    expansions: usize,
    best: usize,
}

impl McsSearch<'_> {
    /// Extends a partial mapping `pairs` (list of `(u, v)` matched nodes).
    /// Candidates must match labels and agree on adjacency with every
    /// mapped pair in both directions (induced-subgraph semantics).
    fn rec(&mut self, pairs: &mut Vec<(NodeId, NodeId)>, next_u: NodeId, used2: &mut [bool]) {
        self.best = self.best.max(pairs.len());
        if self.expansions >= self.limits.max_expansions {
            return;
        }
        let n1 = self.g1.node_count() as NodeId;
        // Upper bound: everything still unmapped on the smaller side.
        let remaining = (n1 - next_u) as usize;
        if pairs.len() + remaining <= self.best {
            return;
        }
        for u in next_u..n1 {
            for v in self.g2.nodes() {
                if used2[v as usize] || self.g1.label(u) != self.g2.label(v) {
                    continue;
                }
                // Adjacency consistency against already-mapped pairs.
                let consistent = pairs
                    .iter()
                    .all(|&(pu, pv)| self.g1.has_edge(u, pu) == self.g2.has_edge(v, pv));
                if !consistent {
                    continue;
                }
                self.expansions += 1;
                pairs.push((u, v));
                used2[v as usize] = true;
                self.rec(pairs, u + 1, used2);
                used2[v as usize] = false;
                pairs.pop();
            }
            // Skipping `u` (leaving it unmatched) is covered by the loop
            // advancing to u + 1 within this same call.
        }
    }
}

/// Size (in nodes) of a maximum common induced subgraph of `g1` and `g2`
/// under label-preserving, adjacency-consistent injective mappings. Exact while
/// within `limits.max_expansions`; otherwise the best size found (a valid
/// lower bound on the true MCS).
pub fn mcs_size(g1: &Graph, g2: &Graph, limits: &McsLimits) -> usize {
    // Search from the smaller side.
    if g1.node_count() > g2.node_count() {
        return mcs_size(g2, g1, limits);
    }
    if g1.node_count() == 0 {
        return 0;
    }
    let mut s = McsSearch {
        g1,
        g2,
        limits: *limits,
        expansions: 0,
        best: 0,
    };
    let mut used2 = vec![false; g2.node_count()];
    s.rec(&mut Vec::new(), 0, &mut used2);
    s.best
}

/// Bunke's MCS distance `|V1| + |V2| - 2·|mcs|` (the node-cost GED of [48]).
pub fn mcs_distance(g1: &Graph, g2: &Graph, limits: &McsLimits) -> f64 {
    let m = mcs_size(g1, g2, limits);
    (g1.node_count() + g2.node_count()) as f64 - 2.0 * m as f64
}

/// Normalized MCS distance `1 - |mcs| / max(|V1|, |V2|)` in `[0, 1]`
/// (0 for graphs sharing a full-size common subgraph). Two empty graphs
/// have distance 0.
pub fn mcs_distance_normalized(g1: &Graph, g2: &Graph, limits: &McsLimits) -> f64 {
    let denom = g1.node_count().max(g2.node_count());
    if denom == 0 {
        return 0.0;
    }
    1.0 - mcs_size(g1, g2, limits) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_graph::generators::erdos_renyi;
    use lan_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path(labels: &[u16]) -> Graph {
        let edges: Vec<(u32, u32)> = (1..labels.len())
            .map(|i| ((i - 1) as u32, i as u32))
            .collect();
        Graph::from_edges(labels.to_vec(), &edges).unwrap()
    }

    #[test]
    fn identical_graph_full_mcs() {
        let g = path(&[0, 1, 2, 1]);
        assert_eq!(mcs_size(&g, &g, &McsLimits::default()), 4);
        assert_eq!(mcs_distance(&g, &g, &McsLimits::default()), 0.0);
        assert_eq!(mcs_distance_normalized(&g, &g, &McsLimits::default()), 0.0);
    }

    #[test]
    fn empty_graphs() {
        let e = Graph::empty();
        assert_eq!(mcs_size(&e, &e, &McsLimits::default()), 0);
        assert_eq!(mcs_distance_normalized(&e, &e, &McsLimits::default()), 0.0);
        let g = path(&[0]);
        assert_eq!(mcs_distance(&e, &g, &McsLimits::default()), 1.0);
    }

    #[test]
    fn disjoint_labels_no_common() {
        let g1 = path(&[0, 0]);
        let g2 = path(&[1, 1]);
        assert_eq!(mcs_size(&g1, &g2, &McsLimits::default()), 0);
        assert_eq!(mcs_distance(&g1, &g2, &McsLimits::default()), 4.0);
        assert_eq!(
            mcs_distance_normalized(&g1, &g2, &McsLimits::default()),
            1.0
        );
    }

    #[test]
    fn shared_path_segment() {
        // g1 = A-B-C, g2 = A-B-D: common subgraph A-B (2 nodes).
        let g1 = path(&[0, 1, 2]);
        let g2 = path(&[0, 1, 3]);
        assert_eq!(mcs_size(&g1, &g2, &McsLimits::default()), 2);
        assert_eq!(mcs_distance(&g1, &g2, &McsLimits::default()), 2.0);
    }

    #[test]
    fn subgraph_relation() {
        // A path inside a longer path: MCS = the smaller graph.
        let small = path(&[0, 1, 0]);
        let large = path(&[1, 0, 1, 0, 1]);
        assert_eq!(mcs_size(&small, &large, &McsLimits::default()), 3);
        // Bunke distance counts only the size difference.
        assert_eq!(mcs_distance(&small, &large, &McsLimits::default()), 2.0);
    }

    #[test]
    fn symmetry_and_bounds_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..15 {
            let g1 = erdos_renyi(&mut rng, 5, 5, 2);
            let g2 = erdos_renyi(&mut rng, 6, 6, 2);
            let lim = McsLimits::default();
            let m12 = mcs_size(&g1, &g2, &lim);
            let m21 = mcs_size(&g2, &g1, &lim);
            assert_eq!(m12, m21);
            assert!(m12 <= g1.node_count().min(g2.node_count()));
            let dn = mcs_distance_normalized(&g1, &g2, &lim);
            assert!((0.0..=1.0).contains(&dn));
        }
    }

    #[test]
    fn budget_fallback_is_sound() {
        let mut rng = StdRng::seed_from_u64(8);
        let g1 = erdos_renyi(&mut rng, 12, 20, 2);
        let g2 = erdos_renyi(&mut rng, 12, 20, 2);
        let exact_ish = mcs_size(&g1, &g2, &McsLimits::default());
        let budgeted = mcs_size(
            &g1,
            &g2,
            &McsLimits {
                max_expansions: 200,
            },
        );
        assert!(budgeted <= exact_ish);
        assert!(budgeted >= 1, "greedy progress should find something");
    }

    #[test]
    fn edge_consistency_enforced() {
        // Same labels, but g1 is a triangle and g2 a path: mapping all three
        // nodes is impossible because one edge pair mismatches.
        let tri = Graph::from_edges(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let p3 = path(&[0, 0, 0]);
        let m = mcs_size(&tri, &p3, &McsLimits::default());
        // Under induced semantics the closing triangle edge conflicts with
        // the path's non-edge, so only two nodes map.
        assert_eq!(m, 2);
    }
}
