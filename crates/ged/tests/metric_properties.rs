//! Metric-theoretic properties of exact GED and its approximations.

use lan_ged::beam::beam_ged;
use lan_ged::bipartite::{bipartite_ged, Solver};
use lan_ged::engine::{ged, ground_truth_ged, GedMethod, GroundTruthConfig};
use lan_ged::exact::{exact_ged, ExactLimits};
use lan_graph::generators::erdos_renyi;
use lan_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny(seed: u64, n: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    erdos_renyi(&mut rng, n, n, 3)
}

fn exact(a: &Graph, b: &Graph) -> f64 {
    exact_ged(a, b, &ExactLimits::default()).distance().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GED is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn exact_ged_is_a_metric(s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        let a = tiny(s1, 4);
        let b = tiny(s2, 4);
        let c = tiny(s3, 4);
        prop_assert_eq!(exact(&a, &a), 0.0);
        prop_assert_eq!(exact(&a, &b), exact(&b, &a));
        let (ab, bc, ac) = (exact(&a, &b), exact(&b, &c), exact(&a, &c));
        prop_assert!(ac <= ab + bc + 1e-9, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    /// Every approximation is an upper bound, and BestOfThree equals the
    /// minimum of its components.
    #[test]
    fn approximations_bound_and_compose(s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = tiny(s1, 5);
        let b = tiny(s2, 5);
        let ex = exact(&a, &b);
        let h = bipartite_ged(&a, &b, Solver::Hungarian);
        let v = bipartite_ged(&a, &b, Solver::Vj);
        let bm = beam_ged(&a, &b, 4);
        prop_assert!(h + 1e-9 >= ex);
        prop_assert!(v + 1e-9 >= ex);
        prop_assert!(bm + 1e-9 >= ex);
        let best = ged(&a, &b, &GedMethod::BestOfThree { beam_width: 4 }).unwrap();
        prop_assert_eq!(best, h.min(v).min(bm));
    }

    /// The ground-truth protocol never reports a distance below the exact
    /// one, and reports exactness correctly on small instances.
    #[test]
    fn ground_truth_protocol_sound(s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = tiny(s1, 5);
        let b = tiny(s2, 5);
        let ex = exact(&a, &b);
        let (d, is_exact) = ground_truth_ged(&a, &b, &GroundTruthConfig::default());
        prop_assert!(d + 1e-9 >= ex);
        if is_exact {
            prop_assert_eq!(d, ex);
        }
    }

    /// GED distances are integers under the unit cost model.
    #[test]
    fn unit_costs_are_integral(s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = tiny(s1, 5);
        let b = tiny(s2, 5);
        for m in [GedMethod::Hungarian, GedMethod::Vj, GedMethod::Beam { width: 4 }] {
            let d = ged(&a, &b, &m).unwrap();
            prop_assert!((d - d.round()).abs() < 1e-9, "{:?} returned non-integer {}", m, d);
        }
    }
}

#[test]
fn beam_width_one_still_bounds() {
    // Greedy matcher (width 1) remains a valid upper bound.
    for seed in 0..20u64 {
        let a = tiny(seed, 5);
        let b = tiny(seed + 100, 5);
        assert!(beam_ged(&a, &b, 1) + 1e-9 >= exact(&a, &b));
    }
}

#[test]
fn size_asymmetric_pairs() {
    // Large vs small graphs exercise the insertion-heavy paths.
    let small = tiny(1, 2);
    let large = tiny(2, 6);
    let ex = exact(&small, &large);
    assert!(ex >= (large.node_count() - small.node_count()) as f64);
    assert!(bipartite_ged(&small, &large, Solver::Vj) >= ex);
    assert!(beam_ged(&small, &large, 8) >= ex);
}
