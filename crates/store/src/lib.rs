//! The on-disk container format for LAN index artifacts.
//!
//! Every build artifact the workspace can persist — graph database with
//! cached signatures, proximity-graph adjacency, trained weight matrices,
//! quantized code books — is written into one file laid out as:
//!
//! ```text
//! superblock   magic "LANSTOR\0" · format version · section count
//! table        per section: name · absolute offset · length · FNV-1a64
//! table sum    FNV-1a64 over the encoded table itself
//! sections     payload bytes, each section 64-byte aligned, zero padded
//! ```
//!
//! Offsets are relative to the file start and no section references
//! another by address, so the file is relocatable: it can be copied,
//! memory-mapped, or read anywhere in one aligned `read_exact`.
//!
//! The reader loads the whole file into an 8-byte-aligned buffer and hands
//! out borrowed [`Dec`] cursors per section. Bulk numeric payloads
//! (`u32`/`f32`/`u64`/... slabs) are decoded **zero-copy**: the cursor
//! aligns to an 8-byte boundary before each slab, and because every
//! section starts 64-byte aligned within an 8-byte-aligned buffer, the
//! slab cast is a plain (checked) pointer reinterpretation, not a copy.
//!
//! Integrity is layered: magic and version first, then the table checksum
//! (rejects a corrupted directory before any offset is trusted), then a
//! per-section checksum verified lazily on first access (rejects payload
//! corruption), and finally the consumer's own semantic validation via
//! [`StoreError::Corrupt`]. Every failure is a typed [`StoreError`] —
//! never a panic, never silent truncation.
//!
//! The format is little-endian on disk; the zero-copy read path therefore
//! requires a little-endian target (checked at compile time below), which
//! covers every platform the workspace builds for.

use std::fmt;
use std::path::Path;

#[cfg(target_endian = "big")]
compile_error!("lan-store's zero-copy load path requires a little-endian target");

/// File magic, first 8 bytes of every store file.
pub const MAGIC: [u8; 8] = *b"LANSTOR\0";

/// Current container format version. Bump on any layout change; readers
/// reject other versions with [`StoreError::BadVersion`] (see DESIGN.md's
/// compat policy: the format is versioned, not self-migrating).
pub const FORMAT_VERSION: u32 = 1;

/// Section payload alignment within the file (and, because the read
/// buffer is 8-byte aligned, within memory after a load).
pub const SECTION_ALIGN: usize = 64;

/// Typed failures of the store layer. Consumers add context by wrapping
/// semantic failures in [`StoreError::Corrupt`].
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (open, read, write, rename).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a store file.
    BadMagic,
    /// The file is a store file of an unsupported format version.
    BadVersion { found: u32, expected: u32 },
    /// The file ends before the advertised superblock, table, or section.
    Truncated { what: String },
    /// A checksum mismatch: the named section (or the section table
    /// itself) does not hash to its recorded value.
    BadChecksum { section: String },
    /// A section the consumer requires is absent.
    MissingSection { name: String },
    /// The bytes decoded, but the content violates a semantic invariant
    /// (shape mismatch, out-of-range id, inconsistent lengths, ...).
    Corrupt { what: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic => write!(f, "not a LAN store file (bad magic)"),
            StoreError::BadVersion { found, expected } => {
                write!(
                    f,
                    "unsupported store format version {found} (expected {expected})"
                )
            }
            StoreError::Truncated { what } => write!(f, "truncated store file: {what}"),
            StoreError::BadChecksum { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            StoreError::MissingSection { name } => write!(f, "missing section '{name}'"),
            StoreError::Corrupt { what } => write!(f, "corrupt store content: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Shorthand for a semantic-validation failure.
    pub fn corrupt(what: impl Into<String>) -> StoreError {
        StoreError::Corrupt { what: what.into() }
    }
}

/// FNV-1a 64-bit over a byte slice — the container's checksum. Chosen for
/// being dependency-free, branch-free, and fast enough to verify hundreds
/// of megabytes at load without showing up next to the I/O itself; this
/// is corruption detection, not cryptography.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn align_up(x: usize, a: usize) -> usize {
    x.div_ceil(a) * a
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// An append-only little-endian section encoder.
///
/// Scalar puts write their LE byte representation; slab puts align to an
/// 8-byte boundary first (zero padding) so the matching [`Dec`] slab reads
/// can reinterpret in place without copying.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

macro_rules! enc_scalar {
    ($fn_name:ident, $ty:ty) => {
        pub fn $fn_name(&mut self, v: $ty) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    };
}

macro_rules! enc_slab {
    ($fn_name:ident, $ty:ty) => {
        /// Writes `v.len()` as `u64`, pads to 8-byte alignment, then the
        /// elements' LE bytes.
        pub fn $fn_name(&mut self, v: &[$ty]) {
            self.put_u64(v.len() as u64);
            self.align8();
            // LE target: the in-memory representation is the wire format,
            // so the slab is one memcpy.
            let bytes = unsafe {
                std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v))
            };
            self.buf.extend_from_slice(bytes);
        }
    };
}

impl Enc {
    pub fn new() -> Self {
        Enc::default()
    }

    enc_scalar!(put_u8, u8);
    enc_scalar!(put_u16, u16);
    enc_scalar!(put_u32, u32);
    enc_scalar!(put_u64, u64);
    enc_scalar!(put_f32, f32);
    enc_scalar!(put_f64, f64);

    /// `usize` always travels as `u64` (the format is host-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed UTF-8.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    enc_slab!(put_u16_slice, u16);
    enc_slab!(put_u32_slice, u32);
    enc_slab!(put_u64_slice, u64);
    enc_slab!(put_f32_slice, f32);
    enc_slab!(put_f64_slice, f64);
    enc_slab!(put_u8_slice, u8);

    fn align8(&mut self) {
        let target = align_up(self.buf.len(), 8);
        self.buf.resize(target, 0);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Accumulates named sections and writes the container file.
#[derive(Default)]
pub struct Writer {
    sections: Vec<(String, Vec<u8>)>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a finished section. Names must be unique within a file.
    pub fn add_section(&mut self, name: &str, enc: Enc) {
        assert!(
            !self.sections.iter().any(|(n, _)| n == name),
            "duplicate section name '{name}'"
        );
        self.sections.push((name.to_string(), enc.into_bytes()));
    }

    /// Serializes the container to bytes (superblock + table + table
    /// checksum + aligned payloads).
    pub fn to_bytes(&self) -> Vec<u8> {
        // Superblock.
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        head.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());

        // The table needs the payload offsets, which depend on the table's
        // own length — resolved in two passes over a fixed-width layout.
        let table_len: usize = self
            .sections
            .iter()
            .map(|(n, _)| 4 + n.len() + 8 + 8 + 8)
            .sum();
        // Superblock + table + table checksum, then the first payload.
        let payload_base = align_up(head.len() + table_len + 8, SECTION_ALIGN);

        let mut table = Vec::with_capacity(table_len);
        let mut offset = payload_base;
        for (name, bytes) in &self.sections {
            table.extend_from_slice(&(name.len() as u32).to_le_bytes());
            table.extend_from_slice(name.as_bytes());
            table.extend_from_slice(&(offset as u64).to_le_bytes());
            table.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            table.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
            offset = align_up(offset + bytes.len(), SECTION_ALIGN);
        }
        debug_assert_eq!(table.len(), table_len);

        let mut out = head;
        out.extend_from_slice(&table);
        out.extend_from_slice(&fnv1a64(&table).to_le_bytes());
        for (_, bytes) in &self.sections {
            out.resize(align_up(out.len(), SECTION_ALIGN), 0);
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Writes the container to `path` atomically (tmp file + rename), so a
    /// crash mid-save never leaves a half-written store behind.
    pub fn write(&self, path: &Path) -> Result<u64, StoreError> {
        let bytes = self.to_bytes();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| StoreError::Io(format!("create {}: {e}", dir.display())))?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| StoreError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| StoreError::Io(format!("rename to {}: {e}", path.display())))?;
        Ok(bytes.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// The whole file in an 8-byte-aligned allocation, so in-place slab casts
/// at 8-aligned offsets are valid.
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn with_len(len: usize) -> Self {
        AlignedBuf {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    fn from_bytes(bytes: &[u8]) -> Self {
        let mut buf = AlignedBuf::with_len(bytes.len());
        buf.as_mut_bytes()[..bytes.len()].copy_from_slice(bytes);
        buf
    }

    fn as_bytes(&self) -> &[u8] {
        // Sound: u64 words fully initialize their bytes; len <= words*8.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    fn as_mut_bytes(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }
}

struct SectionEntry {
    name: String,
    offset: usize,
    len: usize,
    checksum: u64,
}

/// A loaded store file: the validated section directory over one aligned
/// buffer. Section payloads are checksum-verified on first access.
pub struct Archive {
    buf: AlignedBuf,
    sections: Vec<SectionEntry>,
}

impl Archive {
    /// Opens and validates a store file: one metadata read, one aligned
    /// `read_exact` of the whole file, then magic / version / table
    /// checksum / bounds checks.
    pub fn open(path: &Path) -> Result<Archive, StoreError> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)
            .map_err(|e| StoreError::Io(format!("open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::Io(format!("stat {}: {e}", path.display())))?
            .len() as usize;
        let mut buf = AlignedBuf::with_len(len);
        file.read_exact(buf.as_mut_bytes())
            .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
        Archive::from_aligned(buf)
    }

    /// Builds an archive from in-memory bytes (tests, corruption probes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Archive, StoreError> {
        Archive::from_aligned(AlignedBuf::from_bytes(bytes))
    }

    fn from_aligned(buf: AlignedBuf) -> Result<Archive, StoreError> {
        let b = buf.as_bytes();
        let need = |n: usize, what: &str| -> Result<(), StoreError> {
            if b.len() < n {
                Err(StoreError::Truncated {
                    what: format!("{what} needs {n} bytes, file has {}", b.len()),
                })
            } else {
                Ok(())
            }
        };
        need(16, "superblock")?;
        if b[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(b[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let count = u32::from_le_bytes(b[12..16].try_into().unwrap()) as usize;

        let table_start = 16;
        let mut pos = table_start;
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            need(pos + 4, "section table entry")?;
            let name_len = u32::from_le_bytes(b[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            need(pos + name_len + 24, "section table entry")?;
            let name = std::str::from_utf8(&b[pos..pos + name_len])
                .map_err(|_| StoreError::corrupt(format!("section {i} name is not UTF-8")))?
                .to_string();
            pos += name_len;
            let offset = u64::from_le_bytes(b[pos..pos + 8].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(b[pos + 8..pos + 16].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(b[pos + 16..pos + 24].try_into().unwrap());
            pos += 24;
            sections.push(SectionEntry {
                name,
                offset,
                len,
                checksum,
            });
        }
        need(pos + 8, "table checksum")?;
        let table_sum = u64::from_le_bytes(b[pos..pos + 8].try_into().unwrap());
        if fnv1a64(&b[table_start..pos]) != table_sum {
            return Err(StoreError::BadChecksum {
                section: "<section table>".to_string(),
            });
        }
        for s in &sections {
            if s.offset % SECTION_ALIGN != 0 {
                return Err(StoreError::corrupt(format!(
                    "section '{}' offset {} is not {SECTION_ALIGN}-byte aligned",
                    s.name, s.offset
                )));
            }
            let end = s.offset.checked_add(s.len).ok_or_else(|| {
                StoreError::corrupt(format!("section '{}' offset+len overflows", s.name))
            })?;
            need(end, &format!("section '{}'", s.name))?;
        }
        Ok(Archive { buf, sections })
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|s| s.name.as_str())
    }

    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// Total file size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.buf.len
    }

    /// A borrowed cursor over the named section, after verifying its
    /// checksum.
    pub fn section(&self, name: &str) -> Result<Dec<'_>, StoreError> {
        let s = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| StoreError::MissingSection {
                name: name.to_string(),
            })?;
        let bytes = &self.buf.as_bytes()[s.offset..s.offset + s.len];
        if fnv1a64(bytes) != s.checksum {
            return Err(StoreError::BadChecksum {
                section: s.name.clone(),
            });
        }
        Ok(Dec {
            buf: bytes,
            pos: 0,
            section: &s.name,
        })
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over one section's payload. Slab reads return
/// borrowed, zero-copy slices into the archive buffer.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

macro_rules! dec_scalar {
    ($fn_name:ident, $ty:ty) => {
        pub fn $fn_name(&mut self) -> Result<$ty, StoreError> {
            const N: usize = std::mem::size_of::<$ty>();
            let b = self.take(N)?;
            Ok(<$ty>::from_le_bytes(b.try_into().unwrap()))
        }
    };
}

macro_rules! dec_slab {
    ($fn_name:ident, $ty:ty) => {
        /// Zero-copy slab read: length prefix, 8-byte alignment skip, then
        /// an in-place reinterpretation of the payload bytes.
        pub fn $fn_name(&mut self) -> Result<&'a [$ty], StoreError> {
            let len = self.get_u64()? as usize;
            self.align8()?;
            let byte_len = len
                .checked_mul(std::mem::size_of::<$ty>())
                .ok_or_else(|| self.err(concat!(stringify!($ty), " slab length overflows")))?;
            let bytes = self.take(byte_len)?;
            // Sound: `bytes` sits at an 8-aligned offset inside an 8-aligned
            // allocation (sections are 64-aligned, `align8` re-aligns the
            // cursor), covers exactly `len` elements, and `$ty` is a plain
            // little-endian numeric type on a little-endian target.
            debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<$ty>(), 0);
            Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const $ty, len) })
        }
    };
}

impl<'a> Dec<'a> {
    fn err(&self, what: &str) -> StoreError {
        StoreError::corrupt(format!("section '{}': {what}", self.section))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| StoreError::Truncated {
                what: format!("section '{}' read overflows", self.section),
            })?;
        if end > self.buf.len() {
            return Err(StoreError::Truncated {
                what: format!(
                    "section '{}' needs {end} bytes, has {}",
                    self.section,
                    self.buf.len()
                ),
            });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn align8(&mut self) -> Result<(), StoreError> {
        let target = align_up(self.pos, 8);
        let _ = self.take(target - self.pos)?;
        Ok(())
    }

    dec_scalar!(get_u8, u8);
    dec_scalar!(get_u16, u16);
    dec_scalar!(get_u32, u32);
    dec_scalar!(get_u64, u64);
    dec_scalar!(get_f32, f32);
    dec_scalar!(get_f64, f64);

    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.err("u64 does not fit usize on this host"))
    }

    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(&format!("bool byte {other}"))),
        }
    }

    pub fn get_str(&mut self) -> Result<&'a str, StoreError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.err("string is not UTF-8"))
    }

    dec_slab!(get_u16_slice, u16);
    dec_slab!(get_u32_slice, u32);
    dec_slab!(get_u64_slice, u64);
    dec_slab!(get_f32_slice, f32);
    dec_slab!(get_f64_slice, f64);
    dec_slab!(get_u8_slice, u8);

    /// Bytes left unread in the section.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the section was fully consumed — catches encoder/decoder
    /// drift where trailing bytes would otherwise pass silently.
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(self.err(&format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_writer() -> Writer {
        let mut w = Writer::new();
        let mut a = Enc::new();
        a.put_u32(7);
        a.put_str("hello");
        a.put_u32_slice(&[1, 2, 3, u32::MAX]);
        a.put_f64(1.5);
        w.add_section("alpha", a);
        let mut b = Enc::new();
        b.put_f32_slice(&[0.25, -1.0]);
        b.put_u8_slice(&[9, 8, 7]);
        b.put_bool(true);
        w.add_section("beta", b);
        w
    }

    #[test]
    fn round_trip_all_types() {
        let bytes = sample_writer().to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(a.section_names().collect::<Vec<_>>(), vec!["alpha", "beta"]);

        let mut d = a.section("alpha").unwrap();
        assert_eq!(d.get_u32().unwrap(), 7);
        assert_eq!(d.get_str().unwrap(), "hello");
        assert_eq!(d.get_u32_slice().unwrap(), &[1, 2, 3, u32::MAX]);
        assert_eq!(d.get_f64().unwrap(), 1.5);
        d.expect_end().unwrap();

        let mut d = a.section("beta").unwrap();
        assert_eq!(d.get_f32_slice().unwrap(), &[0.25, -1.0]);
        assert_eq!(d.get_u8_slice().unwrap(), &[9, 8, 7]);
        assert!(d.get_bool().unwrap());
        d.expect_end().unwrap();
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("lan_store_test");
        let path = dir.join("round_trip.lan");
        let written = sample_writer().write(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let a = Archive::open(&path).unwrap();
        assert_eq!(a.total_bytes() as u64, written);
        let mut d = a.section("alpha").unwrap();
        assert_eq!(d.get_u32().unwrap(), 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sections_are_aligned() {
        let bytes = sample_writer().to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        for s in &a.sections {
            assert_eq!(s.offset % SECTION_ALIGN, 0);
        }
        // Zero-copy slab alignment: the u32 slab pointer is 4-aligned.
        let mut d = a.section("alpha").unwrap();
        d.get_u32().unwrap();
        d.get_str().unwrap();
        let slab = d.get_u32_slice().unwrap();
        assert_eq!(slab.as_ptr() as usize % std::mem::align_of::<u32>(), 0);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_writer().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Archive::from_bytes(&bytes),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = sample_writer().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        match Archive::from_bytes(&bytes) {
            Err(StoreError::BadVersion { found, expected }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected BadVersion, got {:?}", other.err()),
        }
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        // Chopping the file anywhere must yield a typed error (or, for
        // cuts inside the final padding only, still open) — never a panic.
        let bytes = sample_writer().to_bytes();
        for cut in 0..bytes.len() {
            match Archive::from_bytes(&bytes[..cut]) {
                Ok(a) => {
                    // Opening can only succeed if every section is intact.
                    for name in ["alpha", "beta"] {
                        a.section(name).unwrap();
                    }
                }
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::BadMagic
                    | StoreError::BadChecksum { .. }
                    | StoreError::Corrupt { .. },
                ) => {}
                Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let bytes = sample_writer().to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let payload_off = a.sections[0].offset;
        drop(a);
        let mut corrupted = bytes.clone();
        corrupted[payload_off] ^= 0x01;
        let a = Archive::from_bytes(&corrupted).unwrap();
        match a.section("alpha") {
            Err(StoreError::BadChecksum { section }) => assert_eq!(section, "alpha"),
            other => panic!("expected BadChecksum, got {:?}", other.err()),
        }
        // The untouched section still verifies.
        a.section("beta").unwrap();
    }

    #[test]
    fn table_corruption_fails_table_checksum() {
        let bytes = sample_writer().to_bytes();
        // Flip a byte inside the table region (after the 16-byte
        // superblock, before the first 64-aligned payload).
        let mut corrupted = bytes.clone();
        corrupted[20] ^= 0x40;
        match Archive::from_bytes(&corrupted) {
            Err(StoreError::BadChecksum { section }) => assert_eq!(section, "<section table>"),
            // Some flips turn into bounds errors before the hash check.
            Err(StoreError::Truncated { .. } | StoreError::Corrupt { .. }) => {}
            other => panic!("expected a typed error, got {:?}", other.err()),
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let bytes = sample_writer().to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        assert!(matches!(
            a.section("gamma"),
            Err(StoreError::MissingSection { .. })
        ));
        assert!(!a.has_section("gamma"));
        assert!(a.has_section("alpha"));
    }

    #[test]
    fn reads_past_section_end_are_typed() {
        let mut w = Writer::new();
        let mut e = Enc::new();
        e.put_u32(1);
        w.add_section("tiny", e);
        let a = Archive::from_bytes(&w.to_bytes()).unwrap();
        let mut d = a.section("tiny").unwrap();
        d.get_u32().unwrap();
        assert!(matches!(d.get_u64(), Err(StoreError::Truncated { .. })));
        // A slab whose length prefix lies about the payload is typed too.
        let mut e = Enc::new();
        e.put_u64(1 << 60); // absurd length, no payload
        let mut w = Writer::new();
        w.add_section("liar", e);
        let a = Archive::from_bytes(&w.to_bytes()).unwrap();
        let mut d = a.section("liar").unwrap();
        assert!(matches!(
            d.get_u32_slice(),
            Err(StoreError::Truncated { .. } | StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_file_and_empty_sections() {
        assert!(matches!(
            Archive::from_bytes(&[]),
            Err(StoreError::Truncated { .. })
        ));
        let mut w = Writer::new();
        w.add_section("empty", Enc::new());
        let a = Archive::from_bytes(&w.to_bytes()).unwrap();
        let d = a.section("empty").unwrap();
        assert_eq!(d.remaining(), 0);
        d.expect_end().unwrap();
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Reference values of the canonical FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = StoreError::BadVersion {
            found: 2,
            expected: 1,
        };
        assert!(e.to_string().contains("version 2"));
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::corrupt("x").to_string().contains("x"));
    }
}
