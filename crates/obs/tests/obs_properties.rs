//! Property tests for the metrics layer: histogram bucketing edge cases,
//! span nesting, concurrent recording from `lan-par` worker threads, and
//! exporter well-formedness.
//!
//! These tests assert on *local* `Histogram` values or on snapshot diffs
//! of test-unique metric names, so they are safe to run on the shared
//! global registry. Recording is globally gated, so every recording test
//! forces the registry on — the same value for every thread of this
//! binary, hence no cross-test interference.

use lan_obs::metrics::{bucket_index, bucket_upper_bound, HISTOGRAM_BUCKETS};
use lan_obs::{span, Histogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in exactly one bucket whose range contains it.
    #[test]
    fn bucket_contains_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            // The previous bucket's upper bound is below the value.
            prop_assert!(bucket_upper_bound(i - 1) < v);
        }
    }

    /// Bucket index is monotone in the value.
    #[test]
    fn bucket_index_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// count == sum of bucket counts, sum == sum of recorded values.
    #[test]
    fn histogram_conserves_counts(values in prop::collection::vec(0u64..1_000_000, 1..64)) {
        lan_obs::set_enabled(true);
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        let bucket_total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
    }
}

#[test]
fn bucket_edges() {
    // 0 is its own bucket; u64::MAX lands in the last bucket.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    lan_obs::set_enabled(true);
    let h = Histogram::default();
    h.record(0);
    h.record(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.count, 2);
    // Saturating sum: 0 + u64::MAX.
    assert_eq!(s.sum, u64::MAX);
}

#[test]
fn concurrent_records_from_par_workers_all_land() {
    // `lan-par` worker threads hammer one histogram; no record is lost.
    lan_obs::set_enabled(true);
    let h = Histogram::default();
    let items: Vec<u64> = (0..1000).collect();
    lan_par::par_map(&items, |&v| h.record(v));
    let s = h.snapshot();
    assert_eq!(s.count, 1000);
    assert_eq!(s.sum, items.iter().sum::<u64>());
}

#[test]
fn span_nesting_records_self_time() {
    // Unique span names so parallel tests in this binary can't interfere.
    lan_obs::set_enabled(true);
    let before = lan_obs::snapshot();
    {
        let _outer = span("proptest.outer");
        std::thread::sleep(std::time::Duration::from_millis(4));
        {
            let _inner = span("proptest.inner");
            std::thread::sleep(std::time::Duration::from_millis(4));
        }
    }
    let d = lan_obs::snapshot().diff(&before);
    let outer = d.histogram("span.proptest.outer.ns");
    let outer_self = d.histogram("span.proptest.outer.self_ns");
    let inner = d.histogram("span.proptest.inner.ns");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    // Parent total >= child total; parent self-time excludes the child.
    assert!(outer.sum >= inner.sum);
    assert!(outer_self.sum <= outer.sum - inner.sum);
}

#[test]
fn exporters_emit_wellformed_output() {
    lan_obs::set_enabled(true);
    lan_obs::counter("proptest.export.count").add(3);
    lan_obs::histogram("proptest.export.hist").record(17);
    let s = lan_obs::snapshot();
    let prom = s.to_prometheus();
    let json = s.to_json();
    assert!(prom.contains("proptest_export_count"));
    assert!(json.contains("\"proptest.export.count\""));
    // Braces balance in the JSON document.
    let open = json.matches('{').count();
    let close = json.matches('}').count();
    assert_eq!(open, close);
}
