//! Opt-in per-query routing trace.
//!
//! With `LAN_TRACE=route` every `np_route` hop of a traced query is
//! recorded as one JSON object — current node and its distance, the active
//! γ threshold, how many neighbor batches the ranker produced and how many
//! were opened, and the query's running NDC / cache-hit counts — into a
//! bounded global ring buffer. Benches drain the buffer to
//! `results/trace_<bench>.jsonl` for offline analysis (the evidence
//! "Learning to Route in Similarity Graphs" tunes routing from, and the
//! distance-call counting CRouting motivates its design with).
//!
//! `LAN_TRACE_SAMPLE=N` traces only queries whose id is divisible by `N`.
//! The query id is attached with [`query`] (a thread-local RAII guard, set
//! by the harness / bench driver around each query); routing code checks
//! [`active_query`] — one relaxed load plus a thread-local read — and
//! emits nothing when no traced query is active, so the disabled path
//! costs nothing on the hot loop.

use crate::names;
use std::cell::Cell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Ring-buffer capacity in events; the oldest events are dropped (and
/// counted in `trace.dropped`) once the buffer is full.
pub const RING_CAPACITY: usize = 1 << 16;

/// 0 = uninitialized, 1 = routing trace on, 2 = off.
static MODE: AtomicU8 = AtomicU8::new(0);
/// 0 = uninitialized; otherwise the sample stride (≥ 1).
static SAMPLE: AtomicU64 = AtomicU64::new(0);

static RING: Mutex<VecDeque<String>> = Mutex::new(VecDeque::new());

thread_local! {
    static QUERY: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Whether the routing trace is on (`LAN_TRACE=route`, `1`, or `all`).
#[inline]
pub fn route_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_mode(),
    }
}

#[cold]
fn init_mode() -> bool {
    let on = matches!(
        std::env::var("LAN_TRACE").as_deref(),
        Ok("route") | Ok("1") | Ok("all")
    );
    MODE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Programmatic override of `LAN_TRACE` (tests; avoids racy env mutation).
pub fn set_route_enabled(on: bool) {
    MODE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// The `LAN_TRACE_SAMPLE` stride (default 1 = trace every query).
pub fn sample_stride() -> u64 {
    match SAMPLE.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("LAN_TRACE_SAMPLE")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            SAMPLE.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// RAII guard scoping the traced query id to the current thread.
pub struct QueryTrace {
    prev: Option<u64>,
    armed: bool,
}

/// Marks the dynamic extent of query `qid` on this thread. Sampling is
/// applied here: untraced queries get a disarmed guard and zero further
/// cost. Guards nest (the previous id is restored on drop).
pub fn query(qid: u64) -> QueryTrace {
    if !route_enabled() || !qid.is_multiple_of(sample_stride()) {
        return QueryTrace {
            prev: None,
            armed: false,
        };
    }
    propagate(Some(qid))
}

/// Re-attaches an already-sampled query id (or `None`) to this thread —
/// used when a traced query fans out to `lan-par` workers (per-shard
/// searches), whose thread-locals start empty.
pub fn propagate(qid: Option<u64>) -> QueryTrace {
    if !route_enabled() {
        return QueryTrace {
            prev: None,
            armed: false,
        };
    }
    let prev = QUERY.with(|q| q.replace(qid));
    QueryTrace { prev, armed: true }
}

impl Drop for QueryTrace {
    fn drop(&mut self) {
        if self.armed {
            QUERY.with(|q| q.set(self.prev));
        }
    }
}

/// The query id being traced on this thread, if any.
#[inline]
pub fn active_query() -> Option<u64> {
    if !route_enabled() {
        return None;
    }
    QUERY.with(|q| q.get())
}

/// One `np_route` hop of a traced query.
#[derive(Debug, Clone, Copy)]
pub struct HopEvent {
    pub q: u64,
    /// Hop index within the query (exploration order).
    pub hop: u32,
    /// 1 = greedy descent, 2 = γ-escalating backtracking.
    pub stage: u8,
    /// Node explored at this hop.
    pub node: u32,
    /// Its (cached) distance to the query.
    pub dist: f64,
    /// The γ threshold the hop's batch openings were judged against.
    pub gamma: f64,
    /// Neighbor count of the node.
    pub neighbors: u32,
    /// Batches the ranker produced for the node.
    pub batches_total: u32,
    /// Batches opened so far (cumulative for the node).
    pub batches_opened: u32,
    /// Query NDC after the hop (cache misses).
    pub ndc: u64,
    /// Query cache hits after the hop.
    pub cache_hits: u64,
}

/// Formats an f64 as a JSON number (finite values only on this path;
/// non-finite fall back to null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Records a hop event (call only when [`active_query`] is `Some`).
pub fn emit_hop(ev: &HopEvent) {
    push(format!(
        "{{\"ev\":\"hop\",\"q\":{},\"hop\":{},\"stage\":{},\"node\":{},\"d\":{},\"gamma\":{},\"nb\":{},\"batches\":{},\"opened\":{},\"ndc\":{},\"hits\":{}}}",
        ev.q,
        ev.hop,
        ev.stage,
        ev.node,
        json_f64(ev.dist),
        json_f64(ev.gamma),
        ev.neighbors,
        ev.batches_total,
        ev.batches_opened,
        ev.ndc,
        ev.cache_hits,
    ));
}

/// Records a stage-2 γ escalation decision for a traced query.
pub fn emit_gamma(q: u64, gamma: f64) {
    push(format!(
        "{{\"ev\":\"gamma\",\"q\":{},\"gamma\":{}}}",
        q,
        json_f64(gamma)
    ));
}

/// Records how a traced query ended: its [`Termination`] name (e.g.
/// `"converged"`, `"ndc_budget"`) and the final NDC.
pub fn emit_end(q: u64, termination: &str, ndc: u64) {
    push(format!(
        "{{\"ev\":\"end\",\"q\":{q},\"term\":\"{termination}\",\"ndc\":{ndc}}}"
    ));
}

fn push(line: String) {
    let dropped = {
        let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
        let full = ring.len() >= RING_CAPACITY;
        if full {
            ring.pop_front();
        }
        ring.push_back(line);
        full
    };
    if dropped {
        crate::counter(names::TRACE_DROPPED).inc();
    }
}

/// Drains and returns all buffered trace lines (oldest first).
pub fn drain() -> Vec<String> {
    RING.lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
        .collect()
}

/// Number of currently buffered events.
pub fn buffered() -> usize {
    RING.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Drains the ring buffer to a JSONL file (parent directories created),
/// returning the number of lines written.
pub fn write_jsonl(path: &str) -> std::io::Result<usize> {
    let lines = drain();
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for l in &lines {
        writeln!(f, "{l}")?;
    }
    f.flush()?;
    Ok(lines.len())
}

/// Pre-registers the trace metric families so exports list them
/// (zero-valued) even before the ring ever overflows.
pub fn register_schema() {
    let _ = crate::counter(names::TRACE_DROPPED);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace unit tests share the global ring and mode switch with nothing
    // else in this binary, but serialize anyway for determinism.
    #[test]
    fn guard_sampling_and_ring_round_trip() {
        let _l = crate::metrics::test_lock();
        set_route_enabled(true);
        SAMPLE.store(2, Ordering::Relaxed);
        drain();

        {
            let _t = query(4); // 4 % 2 == 0 → traced
            assert_eq!(active_query(), Some(4));
            emit_hop(&HopEvent {
                q: 4,
                hop: 0,
                stage: 1,
                node: 9,
                dist: 3.0,
                gamma: 3.0,
                neighbors: 5,
                batches_total: 3,
                batches_opened: 1,
                ndc: 6,
                cache_hits: 2,
            });
            emit_gamma(4, 4.0);
        }
        assert_eq!(active_query(), None);
        {
            let _t = query(3); // 3 % 2 != 0 → sampled out
            assert_eq!(active_query(), None);
        }

        let lines = drain();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"hop\""));
        assert!(lines[0].contains("\"node\":9"));
        assert!(lines[0].contains("\"d\":3"));
        assert!(lines[1].contains("\"ev\":\"gamma\""));

        SAMPLE.store(1, Ordering::Relaxed);
        set_route_enabled(false);
    }

    #[test]
    fn disabled_trace_is_inert() {
        let _l = crate::metrics::test_lock();
        set_route_enabled(false);
        let _t = query(0);
        assert_eq!(active_query(), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
