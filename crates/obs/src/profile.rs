//! Self-time profiler over the RAII span tree.
//!
//! With `LAN_PROFILE=1`, every closing span additionally records its
//! *stack path* — the `;`-joined names of its ancestor spans plus its own
//! (`query;query.route;gnn.forward`) — into a global aggregation map
//! keyed by path, accumulating self-time, total time, and hit count.
//! The aggregate folds directly into the flamegraph ecosystem's
//! folded-stack format ([`fold`] / [`write_folded`]): one line per path,
//! `frame;frame;frame value`, with self-time in microseconds as the
//! sample value — `inferno-flamegraph` and speedscope consume it as-is.
//! [`top_self_time`] / [`format_top`] give the quick textual top-N view.
//!
//! When `LAN_PROFILE` is unset the span drop path pays one extra relaxed
//! atomic load and nothing else (criterion-checked in `obs_overhead`).

use crate::names;
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Enable switch (same lazy-env AtomicU8 pattern as `metrics::enabled`).
// ---------------------------------------------------------------------------

/// 0 = uninitialized (read `LAN_PROFILE` lazily), 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether span-path profiling is on (`LAN_PROFILE=1`, `on`, or `true`).
/// One relaxed load on the hot path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = matches!(
        std::env::var("LAN_PROFILE").as_deref(),
        Ok("1") | Ok("on") | Ok("true")
    );
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Programmatic override of `LAN_PROFILE` (tests; avoids racy env mutation).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

/// Accumulated timings for one span stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Wall-clock spent in the leaf span itself, excluding child spans.
    pub self_ns: u64,
    /// Wall-clock of the leaf span including children.
    pub total_ns: u64,
    /// Number of times the path closed.
    pub count: u64,
}

static PATHS: Mutex<Option<HashMap<String, PathStats>>> = Mutex::new(None);

fn spans_counter() -> &'static crate::Counter {
    static CELL: OnceLock<&'static crate::Counter> = OnceLock::new();
    CELL.get_or_init(|| crate::counter(names::PROFILE_SPANS))
}

/// Accumulates one closed span occurrence under its stack path. Called
/// from the span drop glue; callers gate on [`enabled`].
pub fn record(path: String, self_ns: u64, total_ns: u64) {
    spans_counter().inc();
    let mut map = PATHS.lock().unwrap_or_else(|e| e.into_inner());
    let entry = map
        .get_or_insert_with(HashMap::new)
        .entry(path)
        .or_default();
    entry.self_ns = entry.self_ns.saturating_add(self_ns);
    entry.total_ns = entry.total_ns.saturating_add(total_ns);
    entry.count += 1;
}

/// Clears the aggregate (tests and multi-phase benches).
pub fn reset() {
    if let Some(map) = PATHS.lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
        map.clear();
    }
}

/// All accumulated `(path, stats)` pairs, sorted by path.
pub fn paths() -> Vec<(String, PathStats)> {
    let map = PATHS.lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<(String, PathStats)> = map
        .as_ref()
        .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
        .unwrap_or_default();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Folded-stack rendering: one `path self_time_us` line per path, sorted
/// by path — the input format of `inferno-flamegraph` / speedscope.
pub fn fold() -> String {
    let mut out = String::new();
    for (path, st) in paths() {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&(st.self_ns / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// Writes [`fold`] output to a file (parent directories created),
/// returning the number of stack lines written. Does not clear the
/// aggregate — call [`reset`] for phase-scoped profiles.
pub fn write_folded(path: &str) -> std::io::Result<usize> {
    let folded = fold();
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(folded.as_bytes())?;
    f.flush()?;
    Ok(folded.lines().count())
}

/// The `n` paths with the most self-time, descending.
pub fn top_self_time(n: usize) -> Vec<(String, PathStats)> {
    let mut v = paths();
    v.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

/// Textual top-N self-time table for bench stderr output.
pub fn format_top(n: usize) -> String {
    let top = top_self_time(n);
    let mut out = String::from("      self(ms)     total(ms)      count  path\n");
    for (path, st) in top {
        out.push_str(&format!(
            "  {:>12.3}  {:>12.3}  {:>9}  {}\n",
            st.self_ns as f64 / 1e6,
            st.total_ns as f64 / 1e6,
            st.count,
            path
        ));
    }
    out
}

/// Registers the `profile.*` counter family so exported snapshots carry
/// the schema even when profiling never ran (`lan-core` calls this at
/// index build time; zeros are the contract).
pub fn register_schema() {
    let _ = crate::counter(names::PROFILE_SPANS);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fold_and_top() {
        let _l = crate::metrics::test_lock();
        crate::metrics::set_enabled(true);
        reset();
        record("query".to_string(), 5_000, 12_000);
        record("query".to_string(), 3_000, 4_000);
        record("query;query.route".to_string(), 7_500, 7_500);

        let folded = fold();
        assert_eq!(folded, "query 8\nquery;query.route 7\n");

        let top = top_self_time(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, "query");
        assert_eq!(
            top[0].1,
            PathStats {
                self_ns: 8_000,
                total_ns: 16_000,
                count: 2
            }
        );
        assert!(format_top(5).contains("query;query.route"));
        reset();
        assert!(fold().is_empty());
    }

    #[test]
    fn spans_feed_profile_paths_when_enabled() {
        let _l = crate::metrics::test_lock();
        crate::metrics::set_enabled(true);
        set_enabled(true);
        reset();
        let before = crate::snapshot();
        {
            let _outer = crate::span("test.profile.outer");
            let _inner = crate::span("test.profile.inner");
        }
        set_enabled(false);
        let got = paths();
        let names: Vec<&str> = got.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            names,
            [
                "test.profile.outer",
                "test.profile.outer;test.profile.inner"
            ]
        );
        let d = crate::snapshot().diff(&before);
        assert_eq!(d.counter(crate::names::PROFILE_SPANS), 2);
        reset();
    }

    #[test]
    fn disabled_profile_records_nothing() {
        let _l = crate::metrics::test_lock();
        crate::metrics::set_enabled(true);
        set_enabled(false);
        reset();
        {
            let _g = crate::span("test.profile.disabled");
        }
        assert!(paths().is_empty());
    }
}
