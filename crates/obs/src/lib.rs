//! Observability for the LAN workspace: a global lock-striped metrics
//! registry, RAII timing spans, and an opt-in per-query routing trace.
//!
//! Built with zero external dependencies (std only) so every crate on the
//! hot path — `lan-pg`, `lan-ged`, `lan-gnn`, `lan-core`, `lan-bench` —
//! can depend on it without widening the dependency closure.
//!
//! # Design constraints
//!
//! * **Deterministic-NDC-safe.** Recording a metric never changes control
//!   flow: all counters are atomics, histograms are fixed arrays of
//!   atomics, and the registry lock is only taken to *resolve a name to a
//!   handle*, never inside the stripe-locked distance section of
//!   `DistCache` (callers resolve handles once at construction).
//! * **Zero-overhead when disabled.** Every record call starts with one
//!   relaxed atomic load (`enabled()`); when metrics are off nothing else
//!   happens — no `Instant::now()`, no allocation, no locking. The
//!   `obs_overhead` criterion microbench in `lan-bench` pins this down.
//! * **Allocation-light when enabled.** Hot-path increments are single
//!   `fetch_add`s on pre-resolved handles; only span exit and per-shard
//!   counters format a name (a handful of times per query).
//!
//! # Environment variables
//!
//! * `LAN_METRICS` — `0`/`off`/`false` disables the registry (default on);
//! * `LAN_TRACE` — `route` (or `1`/`all`) enables the routing trace;
//! * `LAN_TRACE_SAMPLE` — trace every N-th query id (default 1 = all);
//! * `LAN_EXPLAIN` — `1`/`on`/`jsonl` collects a per-query EXPLAIN plan
//!   (JSONL ring buffer; see [`explain`]);
//! * `LAN_PROFILE` — `1`/`on` aggregates span self-time by stack path
//!   into folded-stack output (see [`profile`]).
//!
//! # Quick tour
//!
//! ```
//! use lan_obs as obs;
//!
//! let before = obs::snapshot();
//! obs::counter(obs::names::GED_CALLS).add(3);
//! {
//!     let _span = obs::span::span("example.phase");
//!     // ... timed work ...
//! }
//! let delta = obs::snapshot().diff(&before);
//! assert!(delta.counter(obs::names::GED_CALLS) >= 3);
//! println!("{}", delta.to_json());
//! ```

pub mod explain;
pub mod export;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

pub use metrics::{
    counter, enabled, gauge, histogram, set_enabled, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, Snapshot, TimerCell,
};
pub use span::{span, SpanGuard};

/// Catalogue of the metric names emitted by the LAN crates (the single
/// source of truth; DESIGN.md's Observability section mirrors this list).
pub mod names {
    /// Unique query↔graph distance computations (`DistCache` misses) — by
    /// construction equal to the total reported NDC of a run.
    pub const GED_CALLS: &str = "ged.calls";
    /// `DistCache` lookups answered from memory.
    pub const GED_CACHE_HIT: &str = "ged.cache.hit";
    /// `DistCache` lookups that had to compute (== [`GED_CALLS`]).
    pub const GED_CACHE_MISS: &str = "ged.cache.miss";
    /// Unique construction-time pairwise distance computations.
    pub const PAIR_CALLS: &str = "pair.calls";
    /// `PairCache` lookups answered from memory.
    pub const PAIR_CACHE_HIT: &str = "pair.cache.hit";
    /// `PairCache` lookups that had to compute (== [`PAIR_CALLS`]).
    pub const PAIR_CACHE_MISS: &str = "pair.cache.miss";
    /// Nodes explored by routing (both `np_route` stages + beam search).
    pub const ROUTE_HOPS: &str = "route.hops";
    /// Neighbor batches opened by `np_route` (Algorithms 3–4).
    pub const ROUTE_BATCHES_OPENED: &str = "route.batches_opened";
    /// Batch-opening loops stopped by the γ threshold while unopened
    /// batches remained — each one is pruned distance computations.
    pub const ROUTE_GAMMA_PRUNES: &str = "route.gamma_prunes";
    /// Cross-graph network forward passes (plain and CG).
    pub const GNN_FORWARD_CALLS: &str = "gnn.forward_calls";
    /// GIN embedding computations.
    pub const GNN_EMBED_CALLS: &str = "gnn.embed_calls";
    /// Tape-free cross-graph forwards on the inference fast path (each one
    /// also counts into [`GNN_FORWARD_CALLS`], the total over both paths).
    pub const GNN_INFER_FORWARDS: &str = "gnn.infer.forwards";
    /// Per-query pair-embedding cache lookups answered from memory.
    pub const GNN_INFER_CACHE_HIT: &str = "gnn.infer.cache.hit";
    /// Per-query pair-embedding cache misses (each one is a tape-free
    /// cross-graph forward).
    pub const GNN_INFER_CACHE_MISS: &str = "gnn.infer.cache.miss";
    /// Queries answered (one per `search_with` / merged sharded query).
    pub const QUERY_COUNT: &str = "query.count";
    /// Queries that ended with a non-`Converged` `Termination` — a
    /// budget bound or a cooperative cancellation degraded the result.
    pub const QUERY_DEGRADED: &str = "query.degraded";
    /// Queries stopped by the NDC cap (counted once per query).
    pub const BUDGET_NDC_EXHAUSTED: &str = "budget.ndc_exhausted";
    /// Queries stopped by the wall-clock deadline (once per query).
    pub const BUDGET_DEADLINE_EXCEEDED: &str = "budget.deadline_exceeded";
    /// Queries whose first stop cause was a local bound (hop cap) or a
    /// sibling-shard cancellation (once per query).
    pub const BUDGET_CANCELLED: &str = "budget.cancelled";
    /// Faults injected by the `LAN_FAULTS` harness (timeouts + failures).
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Faulted distance computations retried against the primary metric.
    pub const FAULT_RETRIED: &str = "fault.retried";
    /// Faulted computations that fell back to the approximate metric
    /// after the retry also faulted.
    pub const FAULT_FALLBACK: &str = "fault.fallback";
    /// Exact-GED timeouts recovered by recomputing with the approximate
    /// fallback metric instead of panicking.
    pub const GED_TIMEOUT_FALLBACK: &str = "ged.timeout_fallback";
    /// GED evaluations that ran a full solver to completion (ungated calls
    /// and cascade survivors). The gap between [`GED_CALLS`] (= NDC) and
    /// this is the work the threshold cascade saved.
    pub const GED_FULL_EVALS: &str = "ged.full_evals";
    /// Threshold-gated evaluations settled by the label/size or
    /// degree-sequence lower bound alone (no solver ran).
    pub const GED_LB_PRUNE: &str = "ged.lb_prune";
    /// Threshold-gated exact evaluations aborted by branch-and-bound once
    /// every A\* branch reached the threshold.
    pub const GED_EARLY_ABORT: &str = "ged.early_abort";
    /// Quantized-surrogate evaluations made by the routing prefilter
    /// (each one is a Hamming/dot kernel call over packed codes).
    pub const QUANT_PREFILTER_EVALS: &str = "quant.prefilter.evals";
    /// Routing candidates skipped by the quantized prefilter — each one
    /// is a distance computation (one NDC) that never ran.
    pub const QUANT_PREFILTER_PRUNED: &str = "quant.prefilter.pruned";
    /// Ground-truth scans that visited candidates in quantized-surrogate
    /// order instead of plain lower-bound order (result-identical; only
    /// `ged.full_evals` moves).
    pub const QUANT_REORDER_USED: &str = "quant.reorder.used";
    /// Quantized-kernel batches served by the accelerated popcnt/AVX2
    /// path.
    pub const QUANT_KERNEL_SIMD: &str = "quant.kernel.simd";
    /// Quantized-kernel batches served by the portable scalar fallback.
    pub const QUANT_KERNEL_SCALAR: &str = "quant.kernel.scalar";
    /// Routing-trace events dropped because the ring buffer was full.
    pub const TRACE_DROPPED: &str = "trace.dropped";
    /// Per-query EXPLAIN plans collected (`LAN_EXPLAIN=1`).
    pub const EXPLAIN_QUERIES: &str = "explain.queries";
    /// EXPLAIN plans dropped because the ring buffer was full.
    pub const EXPLAIN_DROPPED: &str = "explain.dropped";
    /// Span occurrences folded into the self-time profiler
    /// (`LAN_PROFILE=1`).
    pub const PROFILE_SPANS: &str = "profile.spans";
    /// Wall-clock of the last `LanIndex::save` (nanoseconds).
    pub const STORE_SAVE_NS: &str = "store.save.ns";
    /// Wall-clock of the last `LanIndex::open` (nanoseconds).
    pub const STORE_LOAD_NS: &str = "store.load.ns";
    /// Size in bytes of the last store file written or opened.
    pub const STORE_BYTES: &str = "store.bytes";
    /// Peak resident-set size of the process in kilobytes (`VmHWM` from
    /// `/proc/self/status`; 0 on non-Linux hosts). A gauge sampled at
    /// phase boundaries — see [`crate::mem::sample_peak_rss`].
    pub const MEM_PEAK_RSS_KB: &str = "mem.peak_rss_kb";
    /// Fused-head score batches executed by the cross-query combining
    /// funnel (one per `FusedHeads` matmul, however many queries fed it).
    pub const FUSED_CALLS: &str = "gnn.fused.calls";
    /// Feature rows pushed through the combining funnel (summed over all
    /// co-batched queries; `rows / calls` is the mean stacking factor).
    pub const FUSED_ROWS: &str = "gnn.fused.rows";
    /// Hop-scoring jobs submitted to the combining funnel (one per query
    /// hop; `jobs / calls > 1` means genuine cross-query stacking).
    pub const FUSED_JOBS: &str = "gnn.fused.jobs";
    /// Funnel combines that stacked rows from more than one query — the
    /// cross-query fusion the serving batcher exists to produce.
    pub const FUSED_XQUERY: &str = "gnn.fused.cross_query";
    /// Requests accepted by the serving admission gate.
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Requests shed (typed `Overloaded` response) — admission caps and
    /// expired deadline budgets, never a queueing collapse.
    pub const SERVE_SHED: &str = "serve.shed";
    /// Requests currently admitted and not yet answered (gauge).
    pub const SERVE_INFLIGHT: &str = "serve.inflight";
    /// Histogram of micro-batch occupancy: shard tasks executed per
    /// batch-formation round of a shard worker.
    pub const SERVE_BATCH_OCCUPANCY: &str = "serve.batch.occupancy";
    /// Histogram of end-to-end request latency in nanoseconds (admission
    /// to response write).
    pub const SERVE_LATENCY_NS: &str = "serve.latency_ns";

    /// Per-shard NDC counter name (`shard.{i}.ndc`).
    pub fn shard_ndc(shard: usize) -> String {
        format!("shard.{shard}.ndc")
    }
}
