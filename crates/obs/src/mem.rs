//! Peak-RSS sampling: a process-wide memory high-water mark exposed as
//! the [`crate::names::MEM_PEAK_RSS_KB`] gauge.
//!
//! On Linux the value is `VmHWM` from `/proc/self/status` — the kernel's
//! own resident-set high-water mark, which is monotone over the process
//! lifetime, so sampling at phase boundaries (index build, benchmark
//! tiers, snapshot export) is enough to capture the true peak regardless
//! of where inside a phase it occurred. On other platforms the probe
//! returns `None` and the gauge stays at its last value (0 if never set);
//! consumers treat 0 as "unsupported host", not "no memory used".

use crate::names::MEM_PEAK_RSS_KB;

/// Reads the current peak RSS and publishes it to the
/// [`MEM_PEAK_RSS_KB`] gauge. Returns the sampled value in kilobytes
/// (0 when the platform probe is unavailable).
///
/// Cheap enough for phase boundaries (one small procfs read), not meant
/// for per-item hot loops.
pub fn sample_peak_rss() -> i64 {
    let kb = peak_rss_kb().unwrap_or(0);
    crate::gauge(MEM_PEAK_RSS_KB).set(kb);
    kb
}

/// The raw platform probe: peak RSS in kilobytes, `None` where
/// unsupported.
#[cfg(target_os = "linux")]
pub fn peak_rss_kb() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vmhwm_kb(&status)
}

/// The raw platform probe: peak RSS in kilobytes, `None` where
/// unsupported.
#[cfg(not(target_os = "linux"))]
pub fn peak_rss_kb() -> Option<i64> {
    None
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` blob. The field is
/// always reported in kB by the kernel; the unit suffix is verified
/// anyway so a format change fails loudly (returns `None`) instead of
/// mis-scaling.
#[allow(dead_code)] // non-Linux builds only use the fallback probe
fn parse_vmhwm_kb(status: &str) -> Option<i64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let mut parts = line.split_whitespace();
    let _key = parts.next()?;
    let value: i64 = parts.next()?.parse().ok()?;
    match parts.next() {
        Some("kB") => Some(value),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vmhwm() {
        let blob = "Name:\tlan\nVmPeak:\t  123 kB\nVmHWM:\t   4567 kB\nVmRSS:\t 100 kB\n";
        assert_eq!(parse_vmhwm_kb(blob), Some(4567));
        assert_eq!(parse_vmhwm_kb("Name: x\n"), None);
        assert_eq!(parse_vmhwm_kb("VmHWM:\t12 MB\n"), None, "unexpected unit");
        assert_eq!(parse_vmhwm_kb("VmHWM:\tnope kB\n"), None);
    }

    #[test]
    fn sample_publishes_gauge() {
        let kb = sample_peak_rss();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "a live Linux process has a nonzero peak RSS");
        }
        assert_eq!(crate::gauge(MEM_PEAK_RSS_KB).get(), kb);
        // Monotone: a second sample can only grow.
        assert!(sample_peak_rss() >= kb);
    }
}
