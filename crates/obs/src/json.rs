//! A minimal recursive-descent JSON parser for the bench artifacts and
//! the serving protocol.
//!
//! The workspace is dependency-free by policy, and the regression
//! sentinel needs more than the `obs_check` key scanner: it diffs whole
//! documents, so it walks real trees; `lan-serve` reuses the same parser
//! for its request frames. This parser covers exactly the JSON those
//! producers emit (objects, arrays, numbers, strings with plain escapes,
//! booleans, null) — not a general-purpose validator. It lives in
//! `lan-obs` (the workspace's leaf utility crate) so both the bench
//! binaries and the server can share it without a dependency cycle.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order preserved — bench artifacts are hand-formatted and the
    /// sentinel reports drift in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Every numeric leaf as `(dotted.path, value)`, depth-first in
    /// document order. Array elements get their index as a segment.
    pub fn flatten_numbers(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.walk(String::new(), &mut out);
        out
    }

    fn walk(&self, path: String, out: &mut Vec<(String, f64)>) {
        match self {
            Value::Num(n) => out.push((path, *n)),
            Value::Obj(members) => {
                for (k, v) in members {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    v.walk(sub, out);
                }
            }
            Value::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    v.walk(format!("{path}.{i}"), out);
                }
            }
            _ => {}
        }
    }
}

/// Parses a complete JSON document; trailing whitespace allowed, trailing
/// garbage is an error. Errors carry the byte offset.
pub fn parse(doc: &str) -> Result<Value, String> {
    let bytes = doc.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of document".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'u' => {
                        // \uXXXX — the bench artifacts never emit
                        // surrogate pairs, so the BMP decode suffices.
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            _ => {
                // Re-decode multi-byte UTF-8 starting at c.
                let start = *pos - 1;
                let len = utf8_len(c);
                let chunk = b
                    .get(start..start + len)
                    .and_then(|ch| std::str::from_utf8(ch).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                s.push_str(chunk);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
  "bench": "throughput",
  "queries": 10,
  "sequential": {"wall_s": 0.123456, "qps": 81.003, "avg_ndc": 37.20, "avg_recall": 0.9750},
  "speedup": 1.5,
  "flags": [true, false, null],
  "empty": {}
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench"), Some(&Value::Str("throughput".into())));
        assert_eq!(v.get("queries").and_then(Value::as_f64), Some(10.0));
        let seq = v.get("sequential").unwrap();
        assert_eq!(seq.get("avg_recall").and_then(Value::as_f64), Some(0.975));
        let flat = v.flatten_numbers();
        assert!(flat.contains(&("sequential.avg_ndc".to_string(), 37.2)));
        assert!(flat.contains(&("speedup".to_string(), 1.5)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let v = parse(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Value::Str("a\"b\\c\ndA".into())));
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let v = parse("[-1.5, 2e3, 0.001]").unwrap();
        assert_eq!(
            v.flatten_numbers(),
            vec![
                (".0".to_string(), -1.5),
                (".1".to_string(), 2000.0),
                (".2".to_string(), 0.001)
            ]
        );
    }
}
