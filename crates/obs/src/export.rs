//! Snapshot exporters: Prometheus text exposition format and JSON.
//!
//! Both are hand-rolled (the workspace is offline and serde-free, matching
//! the manual JSON the bench binaries already write). Metric names use `.`
//! separators internally; the Prometheus exporter rewrites them to `_` to
//! satisfy the exposition-format name charset.

use crate::metrics::{bucket_upper_bound, Snapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write;

/// A metric name sanitized for Prometheus (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Prometheus text exposition format, conformant enough for a real
    /// Prometheus server to scrape:
    ///
    /// * counters follow the `_total`-suffix naming convention, with
    ///   `# HELP` / `# TYPE` metadata;
    /// * histograms emit the **complete** cumulative `_bucket{le=...}`
    ///   series over every log2 boundary (not just the non-empty bins) so
    ///   the bucket schema is identical from scrape to scrape, ending in
    ///   the mandatory `le="+Inf"` bucket that equals `_count`, plus
    ///   `_sum` / `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(
                out,
                "# HELP {n}_total LAN counter '{name}'\n# TYPE {n}_total counter\n{n}_total {v}"
            );
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(
                out,
                "# HELP {n} LAN gauge '{name}'\n# TYPE {n} gauge\n{n} {v}"
            );
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(
                out,
                "# HELP {n} LAN log2-bucketed histogram '{name}'\n# TYPE {n} histogram"
            );
            let mut by_index = [0u64; HISTOGRAM_BUCKETS];
            for &(i, c) in &h.buckets {
                by_index[i as usize] = c;
            }
            let mut cumulative = 0u64;
            for (i, &c) in by_index.iter().enumerate() {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }

    /// JSON object with `counters`, `gauges`, and `histograms` maps.
    /// Histograms carry `count`, `sum`, `mean`, `p50`/`p95`/`p99`
    /// estimates, and sparse `buckets` as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
            first = false;
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, v) in &self.gauges {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
            first = false;
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            let sep = if first { "" } else { "," };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(i, c)| format!("[{}, {c}]", bucket_upper_bound(i as usize)))
                .collect();
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \
                 \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"buckets\": [{}]}}",
                json_escape(name),
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                buckets.join(", ")
            );
            first = false;
        }
        out.push_str("\n  }\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("ged.calls".into(), 42);
        s.gauges.insert("pool.size".into(), -3);
        s.histograms.insert(
            "span.query.ns".into(),
            HistogramSnapshot {
                count: 3,
                sum: 10,
                buckets: vec![(1, 1), (3, 2)],
            },
        );
        s
    }

    #[test]
    fn prometheus_format() {
        let text = sample().to_prometheus();
        // Counters: `_total` convention with HELP/TYPE metadata.
        assert!(text.contains("# HELP ged_calls_total LAN counter 'ged.calls'"));
        assert!(text.contains("# TYPE ged_calls_total counter"));
        assert!(text.contains("ged_calls_total 42"));
        assert!(text.contains("# TYPE pool_size gauge"));
        assert!(text.contains("pool_size -3"));
        // Histograms: complete cumulative bucket series (empty boundaries
        // included) ending in the mandatory +Inf bucket == _count.
        assert!(text.contains("# TYPE span_query_ns histogram"));
        assert!(text.contains("span_query_ns_bucket{le=\"0\"} 0"));
        assert!(text.contains("span_query_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("span_query_ns_bucket{le=\"3\"} 1"));
        assert!(text.contains("span_query_ns_bucket{le=\"7\"} 3"));
        assert!(text.contains("span_query_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("span_query_ns_sum 10"));
        assert!(text.contains("span_query_ns_count 3"));
        // One bucket line per boundary plus +Inf.
        assert_eq!(
            text.matches("span_query_ns_bucket{le=").count(),
            crate::metrics::HISTOGRAM_BUCKETS + 1
        );
    }

    #[test]
    fn json_format() {
        let json = sample().to_json();
        assert!(json.contains("\"ged.calls\": 42"));
        assert!(json.contains("\"pool.size\": -3"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"p50\": "));
        assert!(json.contains("\"p95\": "));
        assert!(json.contains("\"p99\": "));
        assert!(json.contains("[7, 2]"));
        // Balanced braces (rough structural sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(prom_name("shard.0.ndc"), "shard_0_ndc");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
