//! Per-query EXPLAIN plans: a structured, JSON-serializable record of
//! where one query's time and distance computations went.
//!
//! A [`QueryExplain`] is assembled by `lan-core`'s `search_explain` path
//! and carries per-stage wall-clock (init / route / distance / GNN), the
//! query's NDC broken down by cascade tier (quantized prefilter skips,
//! signature lower-bound prunes, tau-aborted A\* runs, full solves),
//! cache hit/miss counts, the budget consumption timeline, per-shard
//! sub-plans, and the termination cause.
//!
//! # The reconciliation contract
//!
//! Tier attribution is noted exactly once per `DistCache` **miss** (the
//! definition of NDC), never on hits or on cached-bound refinements, so
//! for every query:
//!
//! ```text
//! lb_prunes + tau_aborts + full_solves == ndc == per-query ged.calls delta
//! lookups == ndc + cache_hits
//! ```
//!
//! Quantized prefilter skips are counted separately: each one is a
//! distance computation that never happened, so it is *not* part of NDC.
//! `crates/core/tests/explain_properties.rs` property-tests these
//! identities under shard fan-out and every budget termination cause.
//!
//! # Emission
//!
//! `LAN_EXPLAIN=1` makes `search_with_budget` collect a plan per query
//! and push its JSON line into a bounded ring buffer (mirroring the
//! routing trace); benches drain it to `results/explain_<bench>.jsonl`.
//! When the variable is unset the only cost on the query path is one
//! relaxed atomic load.

use crate::names;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Enable switch (same lazy-env AtomicU8 pattern as `metrics::enabled`).
// ---------------------------------------------------------------------------

/// 0 = uninitialized (read `LAN_EXPLAIN` lazily), 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether per-query EXPLAIN collection is on (`LAN_EXPLAIN=1`, `on`, or
/// `jsonl`). One relaxed load on the hot path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = matches!(
        std::env::var("LAN_EXPLAIN").as_deref(),
        Ok("1") | Ok("on") | Ok("true") | Ok("jsonl")
    );
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Programmatic override of `LAN_EXPLAIN` (tests; avoids racy env mutation).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Cascade tier attribution.
// ---------------------------------------------------------------------------

/// How one distance computation (one `DistCache` miss) was settled by the
/// GED kernel cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveTier {
    /// Settled by a precomputed-signature lower bound alone (label/size
    /// or degree-sequence); no solver ran.
    LbPrune,
    /// The tau-gated exact solver aborted once every A\* branch reached
    /// the threshold.
    TauAbort,
    /// A full solver ran to completion (ungated calls, cascade survivors,
    /// and timeout fallbacks).
    FullSolve,
}

/// Per-query tier tallies, written by `DistCache` while a query runs.
/// Plain relaxed atomics — *not* gated on the metrics switch, because an
/// instance only exists when explain collection is active for the query.
#[derive(Debug, Default)]
pub struct TierCounts {
    quant_skips: AtomicU64,
    lb_prunes: AtomicU64,
    tau_aborts: AtomicU64,
    full_solves: AtomicU64,
}

impl TierCounts {
    /// Attributes one `DistCache` miss to the tier that settled it.
    #[inline]
    pub fn note_solve(&self, tier: SolveTier) {
        let cell = match tier {
            SolveTier::LbPrune => &self.lb_prunes,
            SolveTier::TauAbort => &self.tau_aborts,
            SolveTier::FullSolve => &self.full_solves,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a routing candidate skipped by the quantized prefilter (a
    /// distance computation that never ran — avoided NDC, not NDC).
    #[inline]
    pub fn note_quant_skip(&self) {
        self.quant_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the tallies.
    pub fn snapshot(&self) -> TierBreakdown {
        TierBreakdown {
            quant_skips: self.quant_skips.load(Ordering::Relaxed),
            lb_prunes: self.lb_prunes.load(Ordering::Relaxed),
            tau_aborts: self.tau_aborts.load(Ordering::Relaxed),
            full_solves: self.full_solves.load(Ordering::Relaxed),
        }
    }
}

/// A query's NDC decomposed by cascade tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierBreakdown {
    /// Candidates skipped by the quantized prefilter (avoided NDC).
    pub quant_skips: u64,
    /// Misses settled by a signature lower bound.
    pub lb_prunes: u64,
    /// Misses settled by a tau-aborted exact solve.
    pub tau_aborts: u64,
    /// Misses that ran a full solver to completion.
    pub full_solves: u64,
}

impl TierBreakdown {
    /// Misses attributed to a tier — equals the query's NDC by the
    /// reconciliation contract (quant skips are avoided work, not NDC).
    pub fn attributed(&self) -> u64 {
        self.lb_prunes + self.tau_aborts + self.full_solves
    }

    /// Component-wise accumulation (shard merging).
    pub fn accumulate(&mut self, other: &TierBreakdown) {
        self.quant_skips += other.quant_skips;
        self.lb_prunes += other.lb_prunes;
        self.tau_aborts += other.tau_aborts;
        self.full_solves += other.full_solves;
    }
}

// ---------------------------------------------------------------------------
// The plan itself.
// ---------------------------------------------------------------------------

/// The budget a query ran under and what it consumed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetExplain {
    /// NDC cap shared across the query's shard searches, if any.
    pub max_ndc: Option<u64>,
    /// Wall-clock deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Per-shard hop cap, if any.
    pub max_hops: Option<u64>,
    /// Distance computations charged against the shared cap (0 when the
    /// budget is unlimited — the unlimited path skips the accounting).
    pub spent_ndc: u64,
}

/// One point on the budget consumption timeline: cumulative NDC and
/// elapsed wall-clock when a stage finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Stage label (`"init"`, `"route"`, `"shard.3"`, ...).
    pub stage: String,
    /// Cumulative query NDC when the stage finished.
    pub ndc: u64,
    /// Elapsed nanoseconds since the query started.
    pub elapsed_ns: u64,
}

/// A per-query EXPLAIN plan. See the module docs for the reconciliation
/// contract; the JSON schema produced by [`QueryExplain::to_json`] is
/// pinned by a golden test.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryExplain {
    /// Query id (the search seed).
    pub query: u64,
    /// Result size requested.
    pub k: usize,
    /// Candidate pool size.
    pub b: usize,
    /// Initialization strategy name (`"lan_is"`, `"hnsw_is"`, `"rand_is"`).
    pub init: String,
    /// Routing strategy name (`"lan_route_cg"`, `"lan_route"`,
    /// `"hnsw_route"`).
    pub route: String,
    /// Termination cause (`Termination::as_str()`).
    pub termination: String,
    /// End-to-end wall-clock.
    pub total_ns: u64,
    /// Entry-point selection wall-clock.
    pub init_ns: u64,
    /// Routing wall-clock.
    pub route_ns: u64,
    /// Time inside the distance oracle (subset of init + route).
    pub dist_ns: u64,
    /// Time inside GNN inference (subset of route).
    pub gnn_ns: u64,
    /// Distance computations (`DistCache` misses).
    pub ndc: u64,
    /// `DistCache` lookups answered from memory.
    pub cache_hits: u64,
    /// Nodes explored by routing (exploration-order length).
    pub hops: u64,
    /// NDC decomposed by cascade tier.
    pub tiers: TierBreakdown,
    /// Budget limits and consumption.
    pub budget: BudgetExplain,
    /// Budget consumption timeline (stage completions, oldest first).
    pub timeline: Vec<TimelineEvent>,
    /// Per-shard sub-plans (empty for a single-shard search).
    pub shards: Vec<QueryExplain>,
}

impl QueryExplain {
    /// Total `DistCache` lookups (misses + hits).
    pub fn lookups(&self) -> u64 {
        self.ndc + self.cache_hits
    }

    /// Single-line JSON rendering (the JSONL emission format; schema
    /// pinned by the `explain_json_golden` test).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        let opt = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"q\":{},\"k\":{},\"b\":{},\"init\":\"{}\",\"route\":\"{}\",\"term\":\"{}\",\
             \"ns\":{{\"total\":{},\"init\":{},\"route\":{},\"dist\":{},\"gnn\":{}}},\
             \"ndc\":{},\"cache_hits\":{},\"hops\":{},\
             \"tiers\":{{\"quant_skips\":{},\"lb_prunes\":{},\"tau_aborts\":{},\"full_solves\":{}}},\
             \"budget\":{{\"max_ndc\":{},\"deadline_ms\":{},\"max_hops\":{},\"spent\":{}}},\
             \"timeline\":[",
            self.query,
            self.k,
            self.b,
            self.init,
            self.route,
            self.termination,
            self.total_ns,
            self.init_ns,
            self.route_ns,
            self.dist_ns,
            self.gnn_ns,
            self.ndc,
            self.cache_hits,
            self.hops,
            self.tiers.quant_skips,
            self.tiers.lb_prunes,
            self.tiers.tau_aborts,
            self.tiers.full_solves,
            opt(self.budget.max_ndc),
            opt(self.budget.deadline_ms),
            opt(self.budget.max_hops),
            self.budget.spent_ndc,
        );
        for (i, ev) in self.timeline.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}{{\"stage\":\"{}\",\"ndc\":{},\"ns\":{}}}",
                ev.stage, ev.ndc, ev.elapsed_ns
            );
        }
        out.push_str("],\"shards\":[");
        for (i, sh) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            sh.write_json(out);
        }
        out.push_str("]}");
    }
}

// ---------------------------------------------------------------------------
// JSONL ring buffer (mirrors `trace`).
// ---------------------------------------------------------------------------

/// Ring-buffer capacity in plans; the oldest are dropped (and counted in
/// `explain.dropped`) once the buffer is full. One plan per query, so
/// this covers any realistic bench batch.
pub const RING_CAPACITY: usize = 1 << 14;

static RING: Mutex<VecDeque<String>> = Mutex::new(VecDeque::new());

/// Buffers a finished plan's JSON line for later draining and counts it
/// in `explain.queries`. Callers gate on [`enabled`].
pub fn emit(ex: &QueryExplain) {
    crate::counter(names::EXPLAIN_QUERIES).inc();
    let dropped = {
        let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
        let full = ring.len() >= RING_CAPACITY;
        if full {
            ring.pop_front();
        }
        ring.push_back(ex.to_json());
        full
    };
    if dropped {
        crate::counter(names::EXPLAIN_DROPPED).inc();
    }
}

/// Drains and returns all buffered plan lines (oldest first).
pub fn drain() -> Vec<String> {
    RING.lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
        .collect()
}

/// Number of currently buffered plans.
pub fn buffered() -> usize {
    RING.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Drains the ring buffer to a JSONL file (parent directories created),
/// returning the number of lines written.
pub fn write_jsonl(path: &str) -> std::io::Result<usize> {
    let lines = drain();
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for l in &lines {
        writeln!(f, "{l}")?;
    }
    f.flush()?;
    Ok(lines.len())
}

/// Registers the `explain.*` counter family so snapshots exported by any
/// bench carry the schema even when explain collection never ran
/// (`lan-core` calls this at index build time; zeros are the contract).
pub fn register_schema() {
    let _ = crate::counter(names::EXPLAIN_QUERIES);
    let _ = crate::counter(names::EXPLAIN_DROPPED);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryExplain {
        QueryExplain {
            query: 7,
            k: 5,
            b: 10,
            init: "lan_is".into(),
            route: "lan_route_cg".into(),
            termination: "converged".into(),
            total_ns: 1000,
            init_ns: 200,
            route_ns: 700,
            dist_ns: 600,
            gnn_ns: 150,
            ndc: 42,
            cache_hits: 11,
            hops: 9,
            tiers: TierBreakdown {
                quant_skips: 4,
                lb_prunes: 20,
                tau_aborts: 7,
                full_solves: 15,
            },
            budget: BudgetExplain {
                max_ndc: Some(100),
                deadline_ms: None,
                max_hops: None,
                spent_ndc: 42,
            },
            timeline: vec![
                TimelineEvent {
                    stage: "init".into(),
                    ndc: 6,
                    elapsed_ns: 210,
                },
                TimelineEvent {
                    stage: "route".into(),
                    ndc: 42,
                    elapsed_ns: 930,
                },
            ],
            shards: Vec::new(),
        }
    }

    /// Golden test pinning the EXPLAIN JSON schema (the JSONL consumer
    /// contract; `obs_check` validates these fields in `--smoke` mode).
    #[test]
    fn explain_json_golden() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"q\":7,\"k\":5,\"b\":10,\"init\":\"lan_is\",\"route\":\"lan_route_cg\",\
             \"term\":\"converged\",\
             \"ns\":{\"total\":1000,\"init\":200,\"route\":700,\"dist\":600,\"gnn\":150},\
             \"ndc\":42,\"cache_hits\":11,\"hops\":9,\
             \"tiers\":{\"quant_skips\":4,\"lb_prunes\":20,\"tau_aborts\":7,\"full_solves\":15},\
             \"budget\":{\"max_ndc\":100,\"deadline_ms\":null,\"max_hops\":null,\"spent\":42},\
             \"timeline\":[{\"stage\":\"init\",\"ndc\":6,\"ns\":210},\
             {\"stage\":\"route\",\"ndc\":42,\"ns\":930}],\"shards\":[]}"
        );
    }

    #[test]
    fn nested_shard_plans_serialize() {
        let mut parent = sample();
        parent.shards = vec![sample(), sample()];
        let json = parent.to_json();
        assert_eq!(json.matches("\"q\":7").count(), 3);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn tier_counts_reconcile() {
        let t = TierCounts::default();
        t.note_solve(SolveTier::LbPrune);
        t.note_solve(SolveTier::LbPrune);
        t.note_solve(SolveTier::TauAbort);
        t.note_solve(SolveTier::FullSolve);
        t.note_quant_skip();
        let b = t.snapshot();
        assert_eq!(b.lb_prunes, 2);
        assert_eq!(b.tau_aborts, 1);
        assert_eq!(b.full_solves, 1);
        assert_eq!(b.quant_skips, 1);
        assert_eq!(b.attributed(), 4);
    }

    #[test]
    fn ring_round_trip_and_drop_counting() {
        let _l = crate::metrics::test_lock();
        crate::metrics::set_enabled(true);
        drain();
        let before = crate::snapshot();
        let ex = sample();
        for _ in 0..RING_CAPACITY + 3 {
            emit(&ex);
        }
        assert_eq!(buffered(), RING_CAPACITY);
        let d = crate::snapshot().diff(&before);
        assert_eq!(d.counter(names::EXPLAIN_QUERIES), RING_CAPACITY as u64 + 3);
        assert_eq!(d.counter(names::EXPLAIN_DROPPED), 3);
        assert_eq!(drain().len(), RING_CAPACITY);
    }
}
