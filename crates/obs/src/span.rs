//! RAII timing spans with a thread-local span stack and parent/child
//! aggregation.
//!
//! `span("query.route")` pushes a frame and returns a guard; when the
//! guard drops, the elapsed wall-clock is recorded into the histograms
//! `span.query.route.ns` (total) and `span.query.route.self_ns` (total
//! minus time spent in child spans), and the total is credited to the
//! parent frame's child time. Spans are strictly thread-local — a span
//! opened on one `lan-par` worker never nests under a span of another —
//! which matches how the query path parallelizes (each query runs
//! entirely on one worker).
//!
//! When metrics are disabled, `span()` is a no-op: no `Instant::now()`,
//! no thread-local push, no histogram lookup.

use crate::metrics::{enabled, histogram};
use std::cell::RefCell;
use std::time::Instant;

struct Frame {
    name: &'static str,
    start: Instant,
    /// Nanoseconds spent in already-closed child spans of this frame.
    child_nanos: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Active guard returned by [`span`]; records timings on drop.
#[must_use = "a span measures until the guard is dropped"]
pub struct SpanGuard {
    armed: bool,
}

/// Opens a timing span (no-op while metrics are disabled).
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            name,
            start: Instant::now(),
            child_nanos: 0,
        })
    });
    SpanGuard { armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order on a thread, so the top frame is
            // ours; a disarmed guard never pushed, so depth stays matched
            // even if `set_enabled` flips mid-span.
            let Some(frame) = stack.pop() else { return };
            let total = frame.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let self_ns = total.saturating_sub(frame.child_nanos);
            if let Some(parent) = stack.last_mut() {
                parent.child_nanos = parent.child_nanos.saturating_add(total);
            }
            // With `LAN_PROFILE` on, fold this occurrence into the
            // profiler under its full stack path (ancestors still on the
            // stack + this frame); one relaxed load otherwise.
            let profile_path = crate::profile::enabled().then(|| {
                let mut path = String::with_capacity(64);
                for f in stack.iter() {
                    path.push_str(f.name);
                    path.push(';');
                }
                path.push_str(frame.name);
                path
            });
            drop(stack);
            if let Some(path) = profile_path {
                crate::profile::record(path, self_ns, total);
            }
            histogram(&format!("span.{}.ns", frame.name)).record(total);
            histogram(&format!("span.{}.self_ns", frame.name)).record(self_ns);
        });
    }
}

/// Depth of the calling thread's span stack (diagnostics and tests).
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{set_enabled, snapshot};

    #[test]
    fn nested_spans_aggregate_to_parent() {
        let _l = crate::metrics::test_lock();
        set_enabled(true);
        let before = snapshot();
        {
            let _outer = span("test.span.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test.span.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(depth(), 1);
        }
        assert_eq!(depth(), 0);
        let d = snapshot().diff(&before);
        let outer = d.histogram("span.test.span.outer.ns");
        let outer_self = d.histogram("span.test.span.outer.self_ns");
        let inner = d.histogram("span.test.span.inner.ns");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Parent total covers the child; parent self-time excludes it.
        assert!(outer.sum >= inner.sum);
        assert!(outer_self.sum <= outer.sum - inner.sum);
    }

    #[test]
    fn disabled_span_pushes_nothing() {
        let _l = crate::metrics::test_lock();
        set_enabled(false);
        {
            let _g = span("test.span.disabled");
            assert_eq!(depth(), 0);
        }
        set_enabled(true);
    }
}
