//! The global lock-striped metrics registry: counters, gauges, and
//! log2-bucketed histograms, with `snapshot()`/`diff()` for delta
//! assertions in tests and benches.
//!
//! Names resolve to `&'static` handles through a stripe-locked intern map;
//! the handles themselves are plain atomics, so recording never takes a
//! lock. Metrics registered while disabled still appear in snapshots (with
//! zero values), which keeps exported schemas stable across runs.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global enable switch.
// ---------------------------------------------------------------------------

/// 0 = uninitialized (read `LAN_METRICS` lazily), 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether metric recording is on. One relaxed load on the hot path; the
/// first call reads the `LAN_METRICS` environment variable (`0`, `off`,
/// or `false` disable; anything else, including unset, enables).
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = !matches!(
        std::env::var("LAN_METRICS").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    );
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Programmatic override of the `LAN_METRICS` switch (used by tests and
/// the enabled-vs-disabled equivalence property; avoids racy env mutation).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Metric primitives.
// ---------------------------------------------------------------------------

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v` (no-op while disabled).
    #[inline]
    pub fn add(&self, v: u64) {
        if enabled() {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (pool sizes, worker counts, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge (no-op while disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta (no-op while disabled).
    #[inline]
    pub fn add(&self, v: i64) {
        if enabled() {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values whose bit length
/// is `i` (bucket 0 holds only 0), so bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i - 1]` and bucket 64 ends at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index of a value: its bit length (0 for 0, 64 for `u64::MAX`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Lower bound (inclusive) of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Log2-bucketed histogram. `sum` wraps on overflow (only reachable by
/// recording near-`u64::MAX` values; `count` stays exact either way).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation (no-op while disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// Sparse copy of a [`Histogram`]: `(bucket index, count)` pairs for the
/// non-empty buckets, plus totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// This snapshot minus an earlier one (per-bucket saturating).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let old: HashMap<u32, u64> = earlier.buckets.iter().copied().collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .filter_map(|&(i, n)| {
                    let d = n.saturating_sub(old.get(&i).copied().unwrap_or(0));
                    (d > 0).then_some((i, d))
                })
                .collect(),
        }
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) assuming observations are
    /// uniform within each log2 bucket (linear interpolation between the
    /// bucket bounds). Exact to within one bucket width; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for &(i, n) in &self.buckets {
            let before = cumulative as f64;
            cumulative += n;
            if cumulative as f64 >= target {
                let lo = bucket_lower_bound(i as usize) as f64;
                let hi = bucket_upper_bound(i as usize) as f64;
                let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        // Unreachable when bucket counts sum to `count`; fall back to the
        // highest recorded bound for defensively-constructed snapshots.
        self.buckets
            .last()
            .map(|&(i, _)| bucket_upper_bound(i as usize) as f64)
            .unwrap_or(0.0)
    }

    /// Median estimate (see [`Self::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Self::quantile`]).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Self::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Atomic nanosecond accumulator for per-query component timings (the
/// replacement for the hand-rolled `AtomicU64` + `Instant` plumbing in
/// `query.rs` / `l2route.rs`).
///
/// Unlike [`Counter`] this is **not** gated on [`enabled`]: it feeds
/// `QueryOutcome` fields that must stay bit-identical whether or not the
/// metrics registry is on.
#[derive(Debug, Default)]
pub struct TimerCell(AtomicU64);

impl TimerCell {
    pub fn new() -> Self {
        TimerCell::default()
    }

    /// Runs `f`, adding its wall-clock to the cell.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(t0.elapsed());
        r
    }

    /// Adds a duration directly.
    #[inline]
    pub fn add(&self, d: Duration) {
        self.0.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Total accumulated time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.0.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Number of independent intern-map stripes; name lookups hash to one, so
/// concurrent handle resolution from `lan-par` workers rarely contends.
const REGISTRY_STRIPES: usize = 16;

struct Registry {
    stripes: Vec<Mutex<HashMap<String, Metric>>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        stripes: (0..REGISTRY_STRIPES)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
    })
}

fn stripe_of(name: &str) -> usize {
    // FNV-1a; stable across platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % REGISTRY_STRIPES
}

macro_rules! resolve {
    ($fn_name:ident, $ty:ty, $variant:ident, $what:literal) => {
        /// Resolves (registering on first use) the named metric. The
        /// returned handle is `'static` and lock-free to record on —
        /// resolve once per scope, not per event, on hot paths.
        ///
        /// Panics if the name is already registered as a different kind.
        pub fn $fn_name(name: &str) -> &'static $ty {
            let reg = registry();
            let mut map = reg.stripes[stripe_of(name)]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match map
                .entry(name.to_string())
                .or_insert_with(|| Metric::$variant(Box::leak(Box::default())))
            {
                Metric::$variant(m) => m,
                _ => panic!(concat!("metric {:?} is not a ", $what), name),
            }
        }
    };
}

resolve!(counter, Counter, Counter, "counter");
resolve!(gauge, Gauge, Gauge, "gauge");
resolve!(histogram, Histogram, Histogram, "histogram");

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Snapshots the whole registry (works whether or not metrics are
/// enabled; disabled metrics read as zero).
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for stripe in &registry().stripes {
        let map = stripe.lock().unwrap_or_else(|e| e.into_inner());
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
    }
    snap
}

impl Snapshot {
    /// Counters/histograms as deltas against an `earlier` snapshot; gauges
    /// keep their latest value. Benches and tests assert on these deltas.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let d = match earlier.histograms.get(k) {
                        Some(old) => v.diff(old),
                        None => v.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }
}

/// Serializes unit tests that flip [`set_enabled`] or assert on global
/// counter deltas (tests in one binary run on parallel threads).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 5, 1000, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations of 0 → every quantile is 0.
        let zeros = HistogramSnapshot {
            count: 100,
            sum: 0,
            buckets: vec![(0, 100)],
        };
        assert_eq!(zeros.p50(), 0.0);
        assert_eq!(zeros.p99(), 0.0);

        // 90 in bucket 1 (value 1) and 10 in bucket 4 ([8, 15]): the
        // median sits in bucket 1, p99 inside bucket 4.
        let h = HistogramSnapshot {
            count: 100,
            sum: 90 + 10 * 12,
            buckets: vec![(1, 90), (4, 10)],
        };
        assert_eq!(h.p50(), 1.0);
        let p99 = h.p99();
        assert!((8.0..=15.0).contains(&p99), "p99 = {p99}");
        assert!(h.p95() <= p99);
        assert_eq!(h.quantile(1.0), 15.0);

        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p95(), 0.0);
    }

    #[test]
    fn bucket_lower_bounds_partition() {
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(4), 8);
        for i in 1..=64 {
            assert_eq!(bucket_lower_bound(i), bucket_upper_bound(i - 1) + 1);
        }
    }

    #[test]
    fn counter_and_snapshot_diff() {
        let _l = test_lock();
        set_enabled(true);
        let c = counter("test.metrics.counter_and_snapshot_diff");
        let before = snapshot();
        c.add(5);
        c.inc();
        let delta = snapshot().diff(&before);
        assert_eq!(delta.counter("test.metrics.counter_and_snapshot_diff"), 6);
        assert_eq!(delta.counter("test.metrics.never_registered"), 0);
    }

    #[test]
    fn gauge_set_and_add() {
        let _l = test_lock();
        set_enabled(true);
        let g = gauge("test.metrics.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn timer_cell_accumulates_regardless_of_enabled() {
        let t = TimerCell::new();
        t.add(Duration::from_nanos(40));
        let r = t.time(|| 7);
        assert_eq!(r, 7);
        assert!(t.total() >= Duration::from_nanos(40));
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn kind_mismatch_panics() {
        let _ = counter("test.metrics.kind_mismatch");
        let _ = gauge("test.metrics.kind_mismatch");
    }
}
