//! Random graph generators.
//!
//! These are the structural families behind the synthetic stand-ins for the
//! paper's datasets (`lan-datasets` parameterizes them to match Table I):
//!
//! * [`molecule_like`] — sparse connected graphs made of a random spanning
//!   tree plus a few ring-closing edges with a degree cap, mimicking the
//!   chemistry datasets (AIDS, PUBCHEM: avg |E| ≈ avg |V|).
//! * [`control_flow_like`] — a linear chain of basic blocks with branch
//!   (diamond) and loop (back-edge) motifs, mimicking LINUX control-flow
//!   graphs.
//! * [`power_law_like`] — preferential-attachment graphs with extra random
//!   edges, mimicking the graphgen-produced SYN dataset (avg |E| ≈ 1.6 avg
//!   |V| at |V| ≈ 10).
//! * [`erdos_renyi`] — plain G(n, m) used by the property tests.

use crate::graph::{Graph, GraphBuilder, Label, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Draws a label from `0..num_labels` with a strongly skewed (Zipf-ish,
/// exponent 2) distribution: real label sets are heavily skewed — e.g. the
/// AIDS compounds are ~3/4 carbon — and that skew is what makes WL grouping
/// (and hence the compressed-GNN-graph acceleration) effective.
pub fn skewed_label<R: Rng + ?Sized>(rng: &mut R, num_labels: u16) -> Label {
    debug_assert!(num_labels > 0);
    // P(l) proportional to (l+1)^-2; inverse-CDF by linear scan
    // (num_labels <= 51 in all datasets).
    let w = |l: u16| 1.0 / ((l as f64 + 1.0) * (l as f64 + 1.0));
    let total: f64 = (0..num_labels).map(w).sum();
    let mut x = rng.gen::<f64>() * total;
    for l in 0..num_labels {
        x -= w(l);
        if x <= 0.0 {
            return l;
        }
    }
    num_labels - 1
}

/// Sparse connected "molecule" graph: random spanning tree + `extra_edges`
/// ring closures, maximum degree `max_degree` (valence cap).
pub fn molecule_like<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    extra_edges: usize,
    max_degree: usize,
    num_labels: u16,
) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new();
    // Labels are run-correlated along the growth order: molecular backbones
    // are long same-element (carbon) runs, which is what real compound data
    // looks like and what WL grouping compresses.
    let mut prev = skewed_label(rng, num_labels);
    b.add_node(prev);
    for _ in 1..n {
        if !rng.gen_bool(0.7) {
            prev = skewed_label(rng, num_labels);
        }
        b.add_node(prev);
    }
    // Chain-biased spanning tree: molecules are mostly chains and rings
    // (average degree ≈ 2), so node i usually extends the chain from node
    // i-1 and only occasionally branches from a random earlier node. The
    // long same-label runs this produces are also what gives real compound
    // data its strong WL compressibility (paper §VI).
    let mut deg = vec![0usize; n];
    for i in 1..n {
        let chain = rng.gen_bool(0.85) && deg[i - 1] < max_degree;
        let j = if chain {
            i - 1
        } else {
            let mut tries = 0;
            loop {
                let j = rng.gen_range(0..i);
                if deg[j] < max_degree || tries > 16 {
                    break j;
                }
                tries += 1;
            }
        };
        b.add_edge(i as NodeId, j as NodeId).unwrap();
        deg[i] += 1;
        deg[j] += 1;
    }
    // Ring closures.
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 + 20 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || deg[u] >= max_degree || deg[v] >= max_degree {
            continue;
        }
        if b.has_edge(u as NodeId, v as NodeId) {
            continue;
        }
        b.add_edge(u as NodeId, v as NodeId).unwrap();
        deg[u] += 1;
        deg[v] += 1;
        added += 1;
    }
    b.build()
}

/// Control-flow-like graph: a chain of `n` blocks where each interior block
/// may open a branch diamond (probability `branch_p`) or close a loop with a
/// back edge (probability `loop_p`). The result is undirected per the
/// paper's graph model (§III studies undirected graphs).
pub fn control_flow_like<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    branch_p: f64,
    loop_p: f64,
    num_labels: u16,
) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new();
    // Opcode-class labels repeat in runs (straight-line code is dominated
    // by a few instruction kinds), mirroring real control-flow graphs.
    let mut prev = skewed_label(rng, num_labels);
    b.add_node(prev);
    for _ in 1..n {
        if !rng.gen_bool(0.6) {
            prev = skewed_label(rng, num_labels);
        }
        b.add_node(prev);
    }
    // Backbone chain.
    for i in 1..n {
        b.add_edge((i - 1) as NodeId, i as NodeId).unwrap();
    }
    for i in 1..n.saturating_sub(1) {
        if rng.gen_bool(branch_p) {
            // Branch: skip edge i-1 -> i+1 models the "else" arm.
            let (u, v) = ((i - 1) as NodeId, (i + 1) as NodeId);
            if !b.has_edge(u, v) {
                b.add_edge(u, v).unwrap();
            }
        }
        if rng.gen_bool(loop_p) && i >= 3 {
            // Loop: back edge to a random earlier block.
            let t = rng.gen_range(0..i - 1) as NodeId;
            if !b.has_edge(i as NodeId, t) {
                b.add_edge(i as NodeId, t).unwrap();
            }
        }
    }
    b.build()
}

/// Preferential-attachment (Barabási–Albert-flavored) graph with `m` edges
/// per new node, plus `extra_edges` uniform random edges.
pub fn power_law_like<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    extra_edges: usize,
    num_labels: u16,
) -> Graph {
    assert!(n >= 1);
    let m = m.max(1);
    let mut b = GraphBuilder::new();
    // Correlated labels (consecutively generated nodes often share one),
    // matching the community-label structure of graphgen output.
    let mut prev = skewed_label(rng, num_labels);
    b.add_node(prev);
    for _ in 1..n {
        if !rng.gen_bool(0.5) {
            prev = skewed_label(rng, num_labels);
        }
        b.add_node(prev);
    }
    // `targets` holds one entry per edge endpoint, giving degree-proportional
    // sampling without bookkeeping.
    let mut targets: Vec<NodeId> = vec![0];
    for i in 1..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        for _ in 0..m.min(i) {
            let mut tries = 0;
            loop {
                let t = *targets.choose(rng).unwrap();
                if t != i as NodeId && !chosen.contains(&t) {
                    chosen.push(t);
                    break;
                }
                tries += 1;
                if tries > 16 {
                    break;
                }
            }
        }
        if chosen.is_empty() {
            chosen.push(rng.gen_range(0..i) as NodeId);
        }
        for &t in &chosen {
            if !b.has_edge(i as NodeId, t) {
                b.add_edge(i as NodeId, t).unwrap();
                targets.push(i as NodeId);
                targets.push(t);
            }
        }
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 + 20 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
            added += 1;
        }
    }
    b.build()
}

/// Uniform G(n, m): exactly `m` distinct edges if possible.
pub fn erdos_renyi<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize, num_labels: u16) -> Graph {
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let l = rng.gen_range(0..num_labels);
        b.add_node(l);
    }
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_m);
    let mut added = 0;
    while added < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
            added += 1;
        }
    }
    b.build()
}

/// True if the graph is connected (empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0 as NodeId];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn molecule_is_connected_and_capped() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = molecule_like(&mut rng, 25, 3, 4, 51);
            assert!(is_connected(&g));
            assert!(g.max_degree() <= 4);
            assert_eq!(g.node_count(), 25);
            assert!(g.edge_count() >= 24);
        }
    }

    #[test]
    fn molecule_single_node() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = molecule_like(&mut rng, 1, 5, 4, 10);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn control_flow_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = control_flow_like(&mut rng, 35, 0.3, 0.1, 36);
        assert!(is_connected(&g));
        assert_eq!(g.node_count(), 35);
        assert!(g.edge_count() >= 34);
    }

    #[test]
    fn power_law_has_hubs() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = power_law_like(&mut rng, 100, 2, 10, 5);
        assert!(is_connected(&g));
        // Preferential attachment should produce at least one hub well above
        // the average degree.
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            g.max_degree() as f64 > 1.5 * avg,
            "max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn erdos_renyi_edge_count_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(&mut rng, 10, 12, 3);
        assert_eq!(g.edge_count(), 12);
        // Requesting more edges than possible clamps.
        let g2 = erdos_renyi(&mut rng, 4, 100, 3);
        assert_eq!(g2.edge_count(), 6);
    }

    #[test]
    fn labels_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let g = molecule_like(&mut rng, 30, 4, 4, 7);
            assert!(g.labels().iter().all(|&l| l < 7));
        }
    }

    #[test]
    fn skewed_label_prefers_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[skewed_label(&mut rng, 8) as usize] += 1;
        }
        assert!(counts[0] > counts[7] * 2, "{counts:?}");
    }

    #[test]
    fn determinism_per_seed() {
        let g1 = molecule_like(&mut StdRng::seed_from_u64(42), 20, 3, 4, 10);
        let g2 = molecule_like(&mut StdRng::seed_from_u64(42), 20, 3, 4, 10);
        assert_eq!(g1, g2);
    }

    #[test]
    fn is_connected_detects_disconnection() {
        let g = Graph::from_edges(vec![0, 0, 0], &[(0, 1)]).unwrap();
        assert!(!is_connected(&g));
        assert!(is_connected(&Graph::empty()));
    }
}
