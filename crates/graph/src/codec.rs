//! On-disk codec for [`Graph`] and its cached [`GraphSignature`].
//!
//! Graphs are serialized as CSR adjacency (offsets + flattened sorted
//! neighbor lists) so a load rebuilds the in-memory representation with
//! straight copies — no per-node sorting at open time. The precomputed
//! signature travels with the graph: recomputing a million signatures
//! would dominate a cold start, which is exactly what the store exists to
//! avoid. Loads always run the cheap O(|V|+|E|) structural validation
//! (offsets monotone, endpoints in range, lengths consistent); the full
//! signature recomputation is a debug assertion only.

use crate::graph::{Graph, GraphSignature};
use lan_store::{Dec, Enc, StoreError};

impl Graph {
    /// Serializes the graph (labels, CSR adjacency, cached signature).
    pub fn store_encode(&self, enc: &mut Enc) {
        let n = self.node_count();
        enc.put_u32(n as u32);
        enc.put_u64(self.edge_count() as u64);
        enc.put_u16_slice(self.labels());
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut flat: Vec<u32> = Vec::with_capacity(2 * self.edge_count());
        offsets.push(0);
        for v in self.nodes() {
            flat.extend_from_slice(self.neighbors(v));
            offsets.push(flat.len() as u32);
        }
        enc.put_u32_slice(&offsets);
        enc.put_u32_slice(&flat);
        enc.put_u16_slice(self.signature().sorted_labels());
        enc.put_u32_slice(self.signature().degree_sequence());
    }

    /// Decodes and structurally validates one graph.
    pub fn store_decode(dec: &mut Dec<'_>) -> Result<Graph, StoreError> {
        let n = dec.get_u32()? as usize;
        let edge_count = dec.get_u64()? as usize;
        let labels = dec.get_u16_slice()?;
        let offsets = dec.get_u32_slice()?;
        let flat = dec.get_u32_slice()?;
        let sig_labels = dec.get_u16_slice()?;
        let sig_degrees = dec.get_u32_slice()?;

        if labels.len() != n {
            return Err(StoreError::corrupt(format!(
                "graph labels: {} entries for {n} nodes",
                labels.len()
            )));
        }
        if offsets.len() != n + 1 || offsets.first().copied().unwrap_or(0) != 0 {
            return Err(StoreError::corrupt("graph CSR offsets malformed"));
        }
        if offsets.last().copied().unwrap_or(0) as usize != flat.len() {
            return Err(StoreError::corrupt(
                "graph CSR offsets disagree with adjacency",
            ));
        }
        if flat.len() != 2 * edge_count {
            return Err(StoreError::corrupt(format!(
                "graph adjacency holds {} entries for {edge_count} edges",
                flat.len()
            )));
        }
        if sig_labels.len() != n || sig_degrees.len() != n {
            return Err(StoreError::corrupt("graph signature length mismatch"));
        }

        let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            if hi < lo {
                return Err(StoreError::corrupt("graph CSR offsets not monotone"));
            }
            let ns = &flat[lo..hi];
            if ns.iter().any(|&w| w as usize >= n || w as usize == v) {
                return Err(StoreError::corrupt(format!(
                    "graph node {v} has an out-of-range or self-loop neighbor"
                )));
            }
            if ns.windows(2).any(|w| w[0] >= w[1]) {
                return Err(StoreError::corrupt(format!(
                    "graph node {v} neighbor list not strictly sorted"
                )));
            }
            adj.push(ns.to_vec());
        }

        let sig = GraphSignature::from_parts_impl(sig_labels.to_vec(), sig_degrees.to_vec());
        let g = Graph::from_stored_parts(labels.to_vec(), adj, edge_count, sig);
        debug_assert!(
            {
                let fresh = GraphSignature::compute_for(&g);
                fresh.sorted_labels() == g.signature().sorted_labels()
                    && fresh.degree_sequence() == g.signature().degree_sequence()
            },
            "stored signature disagrees with recomputation"
        );
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use lan_store::{Archive, Writer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn round_trip(g: &Graph) -> Graph {
        let mut enc = Enc::new();
        g.store_encode(&mut enc);
        let mut w = Writer::new();
        w.add_section("g", enc);
        let bytes = w.to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let mut d = a.section("g").unwrap();
        let out = Graph::store_decode(&mut d).unwrap();
        d.expect_end().unwrap();
        out
    }

    #[test]
    fn round_trips_generated_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..20 {
            let g = generators::molecule_like(&mut rng, 3 + i % 17, 4, 4, 6);
            let back = round_trip(&g);
            assert_eq!(back, g);
            assert_eq!(
                back.signature().sorted_labels(),
                g.signature().sorted_labels()
            );
            assert_eq!(
                back.signature().degree_sequence(),
                g.signature().degree_sequence()
            );
        }
        let empty = Graph::empty();
        assert_eq!(round_trip(&empty), empty);
    }

    #[test]
    fn corrupt_adjacency_is_typed_not_panic() {
        // Encode a valid graph, then lie about the node count so every
        // neighbor id lands out of range.
        let g = Graph::from_edges(vec![0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let mut enc = Enc::new();
        enc.put_u32(1); // claim 1 node
        enc.put_u64(g.edge_count() as u64);
        enc.put_u16_slice(&g.labels()[..1]);
        enc.put_u32_slice(&[0, 2]);
        enc.put_u32_slice(&[1, 2]); // neighbors >= node count
        enc.put_u16_slice(&[0]);
        enc.put_u32_slice(&[1]);
        let mut w = Writer::new();
        w.add_section("g", enc);
        let bytes = w.to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let mut d = a.section("g").unwrap();
        assert!(matches!(
            Graph::store_decode(&mut d),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
