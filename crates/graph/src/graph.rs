//! The core labeled undirected graph type.

use std::fmt;

/// Node index within a single [`Graph`]. Kept at 32 bits: the datasets in the
/// paper have graphs of at most a few hundred nodes, and the proximity-graph
/// layer stores millions of these per database.
pub type NodeId = u32;

/// Node label. The paper's datasets have at most 51 distinct labels
/// (Table I), so 16 bits are ample.
pub type Label = u16;

/// Errors produced while constructing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint refers to a node that has not been added.
    UnknownNode(NodeId),
    /// Self loops are not allowed in the simple graphs the paper studies.
    SelfLoop(NodeId),
    /// The edge was already present; graphs are simple (no multi-edges).
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "unknown node id {v}"),
            GraphError::SelfLoop(v) => write!(f, "self loop on node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected, node-labeled simple graph `G = (V_G, E_G, l_G)` (paper
/// §III).
///
/// The representation is an adjacency list sorted per node, which gives
/// deterministic iteration order (important for reproducible routing and
/// learning) and `O(log deg)` edge queries.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    labels: Vec<Label>,
    /// `adj[u]` holds the sorted neighbor list of `u`.
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
    /// Precomputed isomorphism-invariant signature; see [`GraphSignature`].
    sig: GraphSignature,
}

/// Immutable per-graph signature computed once at construction.
///
/// GED lower bounds (label multiset, degree sequence, size) are evaluated
/// once per A\* expansion and once per routing candidate, so they must not
/// sort or allocate. The signature pre-sorts everything they need:
///
/// * `sorted_labels` — the node label multiset in ascending order, so the
///   label-multiset bound is a merge walk over two pre-sorted slices;
/// * `degree_sequence` — node degrees in *descending* order, for the
///   degree-sequence edit bound.
///
/// The signature is a pure function of the graph's content and is invariant
/// under node permutation, so the derived `PartialEq`/`Eq`/`Hash` on
/// [`Graph`] remain consistent.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct GraphSignature {
    sorted_labels: Vec<Label>,
    degree_sequence: Vec<u32>,
}

impl GraphSignature {
    fn compute(labels: &[Label], adj: &[Vec<NodeId>]) -> Self {
        let mut sorted_labels = labels.to_vec();
        sorted_labels.sort_unstable();
        let mut degree_sequence: Vec<u32> = adj.iter().map(|ns| ns.len() as u32).collect();
        degree_sequence.sort_unstable_by(|a, b| b.cmp(a));
        GraphSignature {
            sorted_labels,
            degree_sequence,
        }
    }

    /// Reassembly from stored arrays (the store codec's path around the
    /// private fields; validation lives in `codec`).
    pub(crate) fn from_parts_impl(sorted_labels: Vec<Label>, degree_sequence: Vec<u32>) -> Self {
        GraphSignature {
            sorted_labels,
            degree_sequence,
        }
    }

    /// Fresh recomputation from a finished graph — the store codec's
    /// debug-time cross-check of a stored signature.
    pub(crate) fn compute_for(g: &Graph) -> Self {
        GraphSignature::compute(&g.labels, &g.adj)
    }

    /// The node label multiset, ascending.
    #[inline]
    pub fn sorted_labels(&self) -> &[Label] {
        &self.sorted_labels
    }

    /// Node degrees, descending.
    #[inline]
    pub fn degree_sequence(&self) -> &[u32] {
        &self.degree_sequence
    }
}

impl Graph {
    /// Assembles a graph from validated parts, computing the signature.
    /// `adj` must already be sorted per node and consistent with
    /// `edge_count`.
    fn assemble(labels: Vec<Label>, adj: Vec<Vec<NodeId>>, edge_count: usize) -> Self {
        let sig = GraphSignature::compute(&labels, &adj);
        Graph {
            labels,
            adj,
            edge_count,
            sig,
        }
    }

    /// Reassembles a graph from store-validated parts *with* its cached
    /// signature — skips the signature recomputation [`Graph::assemble`]
    /// performs. Crate-internal: only the store codec, which has already
    /// validated the parts, may call this.
    pub(crate) fn from_stored_parts(
        labels: Vec<Label>,
        adj: Vec<Vec<NodeId>>,
        edge_count: usize,
        sig: GraphSignature,
    ) -> Self {
        Graph {
            labels,
            adj,
            edge_count,
            sig,
        }
    }

    /// An empty graph.
    pub fn empty() -> Self {
        Graph::assemble(Vec::new(), Vec::new(), 0)
    }

    /// Builds a graph directly from labels and an edge list.
    ///
    /// Edges are deduplicated-checked and validated; see [`GraphBuilder`] for
    /// incremental construction.
    pub fn from_edges(labels: Vec<Label>, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::with_labels(labels);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of nodes `|V_G|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges `|E_G|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The label `l_G(v)`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The sorted neighbor list `N_G(v)`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// The degree `|N_G(v)|`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && (u as usize) < self.adj.len() && self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Iterates over all undirected edges once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            let u = u as NodeId;
            ns.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The number of distinct labels that occur in the graph.
    pub fn distinct_labels(&self) -> usize {
        let mut ls: Vec<Label> = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }

    /// Applies a node permutation, producing an isomorphic graph where node
    /// `v` of `self` becomes node `perm[v]` of the result.
    ///
    /// Used by the property tests for isomorphism invariance of WL labeling,
    /// GED, and GNN embeddings. `perm` must be a permutation of
    /// `0..node_count()`; this is checked with a debug assertion only because
    /// the function sits inside proptest inner loops.
    pub fn permute(&self, perm: &[NodeId]) -> Graph {
        debug_assert_eq!(perm.len(), self.node_count());
        debug_assert!({
            let mut seen = vec![false; perm.len()];
            perm.iter().all(|&p| {
                let fresh = !seen[p as usize];
                seen[p as usize] = true;
                fresh
            })
        });
        let n = self.node_count();
        let mut labels = vec![0 as Label; n];
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            let nv = perm[v] as usize;
            labels[nv] = self.labels[v];
            adj[nv] = self.adj[v].iter().map(|&w| perm[w as usize]).collect();
            adj[nv].sort_unstable();
        }
        Graph::assemble(labels, adj, self.edge_count)
    }

    /// The precomputed isomorphism-invariant signature.
    #[inline]
    pub fn signature(&self) -> &GraphSignature {
        &self.sig
    }

    /// Histogram of node labels as `(label, count)` pairs sorted by label.
    ///
    /// This is the `l = 0` WL histogram and doubles as the node part of the
    /// label-multiset GED lower bound.
    pub fn label_histogram(&self) -> Vec<(Label, u32)> {
        let mut ls: Vec<Label> = self.labels.clone();
        ls.sort_unstable();
        let mut out: Vec<(Label, u32)> = Vec::new();
        for l in ls {
            match out.last_mut() {
                Some((pl, c)) if *pl == l => *c += 1,
                _ => out.push((l, 1)),
            }
        }
        out
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(|V|={}, |E|={})",
            self.node_count(),
            self.edge_count()
        )
    }
}

/// Incremental builder enforcing the simple-graph invariants.
#[derive(Clone, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from a fixed label vector (nodes `0..labels.len()`).
    pub fn with_labels(labels: Vec<Label>) -> Self {
        let n = labels.len();
        GraphBuilder {
            labels,
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Adds a node with the given label and returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        self.labels.push(label);
        self.adj.push(Vec::new());
        (self.labels.len() - 1) as NodeId
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Adds the undirected edge `(u, v)`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.labels.len() as NodeId;
        if u >= n {
            return Err(GraphError::UnknownNode(u));
        }
        if v >= n {
            return Err(GraphError::UnknownNode(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.adj[u as usize].contains(&v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.edge_count += 1;
        Ok(())
    }

    /// Whether the edge is already present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        (u as usize) < self.adj.len() && self.adj[u as usize].contains(&v)
    }

    /// Finalizes, sorting adjacency lists for deterministic iteration.
    pub fn build(mut self) -> Graph {
        for ns in &mut self.adj {
            ns.sort_unstable();
        }
        Graph::assemble(self.labels, self.adj, self.edge_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(vec![0, 1, 2], &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.distinct_labels(), 0);
    }

    #[test]
    fn basic_construction() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.label(2), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(vec![0; 4], &[(0, 3), (0, 1), (0, 2)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(0);
        assert_eq!(b.add_edge(v, v), Err(GraphError::SelfLoop(v)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        let v = b.add_node(0);
        b.add_edge(u, v).unwrap();
        assert_eq!(b.add_edge(v, u), Err(GraphError::DuplicateEdge(v, u)));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(0);
        assert_eq!(b.add_edge(u, 7), Err(GraphError::UnknownNode(7)));
    }

    #[test]
    fn permute_preserves_structure() {
        let g = Graph::from_edges(vec![5, 6, 7], &[(0, 1), (1, 2)]).unwrap();
        let p = g.permute(&[2, 0, 1]);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        // node 0 (label 5) became node 2
        assert_eq!(p.label(2), 5);
        assert!(p.has_edge(2, 0)); // old (0,1)
        assert!(p.has_edge(0, 1)); // old (1,2)
        assert_eq!(p.degree(0), 2); // old node 1 had degree 2
    }

    #[test]
    fn signature_matches_content() {
        let g = Graph::from_edges(vec![3, 1, 3, 1], &[(0, 1), (1, 2), (1, 3)]).unwrap();
        assert_eq!(g.signature().sorted_labels(), &[1, 1, 3, 3]);
        assert_eq!(g.signature().degree_sequence(), &[3, 1, 1, 1]);
        let e = Graph::empty();
        assert!(e.signature().sorted_labels().is_empty());
        assert!(e.signature().degree_sequence().is_empty());
    }

    #[test]
    fn signature_is_permutation_invariant() {
        let g = Graph::from_edges(vec![5, 6, 7, 6], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = g.permute(&[2, 0, 3, 1]);
        assert_eq!(g.signature().sorted_labels(), p.signature().sorted_labels());
        assert_eq!(
            g.signature().degree_sequence(),
            p.signature().degree_sequence()
        );
    }

    #[test]
    fn label_histogram_sorted() {
        let g = Graph::from_edges(vec![3, 1, 3, 1, 1], &[]).unwrap();
        assert_eq!(g.label_histogram(), vec![(1, 3), (3, 2)]);
    }

    #[test]
    fn error_display() {
        assert_eq!(GraphError::UnknownNode(3).to_string(), "unknown node id 3");
        assert_eq!(GraphError::SelfLoop(1).to_string(), "self loop on node 1");
        assert_eq!(
            GraphError::DuplicateEdge(1, 2).to_string(),
            "duplicate edge (1, 2)"
        );
    }
}
