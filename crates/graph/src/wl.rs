//! Weisfeiler–Lehman (WL) labeling (paper Eq. 2–3).
//!
//! GIN (paper §III-C) is exactly as powerful as WL labeling: two nodes with
//! the same WL label at iteration `l` are guaranteed to carry the same GIN
//! embedding at layer `l`. The compressed GNN-graph construction
//! (Algorithm 5) therefore groups nodes by WL label per layer.
//!
//! WL labels are interned into dense `u32` ids per iteration, shared across
//! *both* graphs when two graphs are labeled jointly — this is what lets the
//! CG cross-graph learning recognize identical embeddings across `G` and `Q`
//! at layer 0 (input features depend only on the raw label).

use crate::graph::{Graph, Label, NodeId};
use std::collections::HashMap;

/// The result of `L` WL iterations on a graph.
///
/// `labels[l][v]` is the interned WL label of node `v` at iteration `l`,
/// for `l = 0..=L`. Interned ids are dense per iteration but their numeric
/// values are only meaningful relative to the [`WlInterner`] that produced
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WlLabeling {
    /// `labels[l][v]`: WL label of node `v` at iteration `l`.
    pub labels: Vec<Vec<u32>>,
}

impl WlLabeling {
    /// Number of iterations performed (`L`), i.e. `labels.len() - 1`.
    pub fn iterations(&self) -> usize {
        self.labels.len() - 1
    }

    /// Number of distinct WL labels at iteration `l` *within this graph*.
    pub fn distinct_at(&self, l: usize) -> usize {
        let mut v = self.labels[l].clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }
}

/// Interns WL signatures to dense ids, shared across graphs.
///
/// Iteration 0 interns raw node labels; iteration `l > 0` interns
/// `(own_label_{l-1}, multiset of neighbor labels_{l-1})` signatures
/// (paper Eq. 2). Using one interner for a set of graphs makes WL ids
/// comparable across those graphs.
#[derive(Debug, Default)]
pub struct WlInterner {
    level0: HashMap<Label, u32>,
    /// One signature table per refinement iteration.
    levels: Vec<HashMap<(u32, Vec<u32>), u32>>,
}

impl WlInterner {
    /// A fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern0(&mut self, l: Label) -> u32 {
        let next = self.level0.len() as u32;
        *self.level0.entry(l).or_insert(next)
    }

    fn intern(&mut self, iter: usize, own: u32, mut neigh: Vec<u32>) -> u32 {
        while self.levels.len() < iter {
            self.levels.push(HashMap::new());
        }
        neigh.sort_unstable();
        let table = &mut self.levels[iter - 1];
        let next = table.len() as u32;
        *table.entry((own, neigh)).or_insert(next)
    }

    /// Runs `l_max` WL iterations on `g`, recording labels for iterations
    /// `0..=l_max`.
    pub fn label(&mut self, g: &Graph, l_max: usize) -> WlLabeling {
        let n = g.node_count();
        let mut labels: Vec<Vec<u32>> = Vec::with_capacity(l_max + 1);
        let mut cur: Vec<u32> = (0..n as NodeId).map(|v| self.intern0(g.label(v))).collect();
        labels.push(cur.clone());
        for it in 1..=l_max {
            let mut next = Vec::with_capacity(n);
            for v in 0..n as NodeId {
                let neigh: Vec<u32> = g.neighbors(v).iter().map(|&w| cur[w as usize]).collect();
                next.push(self.intern(it, cur[v as usize], neigh));
            }
            labels.push(next.clone());
            cur = next;
        }
        WlLabeling { labels }
    }
}

/// Convenience: WL-labels a single graph with a private interner.
pub fn wl_labels(g: &Graph, l_max: usize) -> WlLabeling {
    WlInterner::new().label(g, l_max)
}

/// Sorted `(wl_label, count)` histogram of a graph at WL iteration `l`,
/// using a shared interner so histograms of different graphs are comparable.
///
/// Histograms at `l = 1` give a cheap graph-similarity signal used by the
/// test suite and as a sanity baseline.
pub fn wl_histogram(interner: &mut WlInterner, g: &Graph, l: usize) -> Vec<(u32, u32)> {
    let lab = interner.label(g, l);
    let mut v = lab.labels[l].clone();
    v.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::new();
    for x in v {
        match out.last_mut() {
            Some((px, c)) if *px == x => *c += 1,
            _ => out.push((x, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// The example graphs of paper Fig. 2: G is a star with center v0
    /// labeled A and leaves v1..v3 labeled B (the CG edge weights of
    /// Example 4 fix this shape); Q is the path A–B–A. Labels: A = 0, B = 1.
    fn fig2_g() -> Graph {
        Graph::from_edges(vec![0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap()
    }

    fn fig2_q() -> Graph {
        Graph::from_edges(vec![0, 1, 0], &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn iteration_zero_is_raw_labels() {
        let g = fig2_g();
        let wl = wl_labels(&g, 0);
        assert_eq!(wl.iterations(), 0);
        // v1, v2, v3 share label B; v0 is A.
        assert_eq!(wl.labels[0][1], wl.labels[0][2]);
        assert_eq!(wl.labels[0][2], wl.labels[0][3]);
        assert_ne!(wl.labels[0][0], wl.labels[0][1]);
    }

    #[test]
    fn fig2_example_grouping() {
        // Paper Example 2: since l(v1)=l(v2)=l(v3) and the three leaves are
        // automorphic, h^l_{v1}=h^l_{v2}=h^l_{v3} for l = 0, 1, 2 — WL keeps
        // them grouped at every iteration (this grouping is what Example 4's
        // CG relies on).
        let g = fig2_g();
        let wl = wl_labels(&g, 2);
        for l in 0..=2 {
            assert_eq!(wl.labels[l][1], wl.labels[l][2]);
            assert_eq!(wl.labels[l][2], wl.labels[l][3]);
        }
        // v0 (label A) stays distinct throughout.
        assert_ne!(wl.labels[1][0], wl.labels[1][1]);
    }

    #[test]
    fn query_graph_twins() {
        // In Q, u0 and u2 are automorphic twins (both A, both adjacent to u1).
        let q = fig2_q();
        let wl = wl_labels(&q, 2);
        for l in 0..=2 {
            assert_eq!(
                wl.labels[l][0], wl.labels[l][2],
                "twins separated at iter {l}"
            );
        }
    }

    #[test]
    fn refinement_is_monotone() {
        // Once two nodes are separated they stay separated.
        let g = fig2_g();
        let wl = wl_labels(&g, 3);
        for l in 1..=3 {
            for u in 0..g.node_count() {
                for v in 0..g.node_count() {
                    if wl.labels[l - 1][u] != wl.labels[l - 1][v] {
                        assert_ne!(wl.labels[l][u], wl.labels[l][v]);
                    }
                }
            }
        }
    }

    #[test]
    fn shared_interner_aligns_graphs() {
        let g = fig2_g();
        let q = fig2_q();
        let mut int = WlInterner::new();
        let wg = int.label(&g, 1);
        let wq = int.label(&q, 1);
        // Raw label A receives the same interned id in both graphs.
        assert_eq!(wg.labels[0][0], wq.labels[0][0]);
        assert_eq!(wg.labels[0][1], wq.labels[0][1]);
    }

    #[test]
    fn histogram_counts() {
        let mut int = WlInterner::new();
        let q = fig2_q();
        let h = wl_histogram(&mut int, &q, 0);
        let total: u32 = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn isomorphism_invariance_small() {
        let g = fig2_g();
        let p = g.permute(&[3, 0, 1, 2]);
        let mut i1 = WlInterner::new();
        let mut i2 = WlInterner::new();
        let h1 = wl_histogram(&mut i1, &g, 2);
        let h2 = wl_histogram(&mut i2, &p, 2);
        // Same multiset of WL labels (ids align because each interner saw
        // structurally identical signatures in some order; compare counts).
        let c1: Vec<u32> = {
            let mut v: Vec<u32> = h1.iter().map(|&(_, c)| c).collect();
            v.sort_unstable();
            v
        };
        let c2: Vec<u32> = {
            let mut v: Vec<u32> = h2.iter().map(|&(_, c)| c).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(c1, c2);
    }
}
