//! Labeled undirected graphs for the LAN graph-database system.
//!
//! This crate is the bottom-most substrate of the workspace: it defines the
//! [`Graph`] type studied by the paper (undirected, node-labeled, simple
//! graphs), Weisfeiler–Lehman labeling ([`wl`]) used both as a GNN-equivalent
//! invariant and to build compressed GNN-graphs, random graph
//! [`generators`], edit [`perturb`]ation used to derive query workloads, and
//! a plain-text [`io`] format.
//!
//! # Example
//!
//! ```
//! use lan_graph::{Graph, GraphBuilder};
//!
//! // The data graph G of Fig. 2(a) in the paper: one 'A' node attached to a
//! // triangle of 'B' nodes (labels encoded as integers: A = 0, B = 1).
//! let mut b = GraphBuilder::new();
//! let v0 = b.add_node(0);
//! let v1 = b.add_node(1);
//! let v2 = b.add_node(1);
//! let v3 = b.add_node(1);
//! b.add_edge(v0, v1).unwrap();
//! b.add_edge(v1, v2).unwrap();
//! b.add_edge(v2, v3).unwrap();
//! b.add_edge(v3, v1).unwrap();
//! let g: Graph = b.build();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.degree(v1), 3);
//! ```

pub mod codec;
pub mod generators;
pub mod graph;
pub mod io;
pub mod perturb;
pub mod wl;

pub use graph::{Graph, GraphBuilder, GraphError, GraphSignature, Label, NodeId};
pub use perturb::{perturb, EditKind};
pub use wl::{wl_histogram, wl_labels, WlLabeling};
