//! Random edit perturbation.
//!
//! Query workloads in the paper are sampled from the database ([9]'s
//! protocol); we additionally perturb sampled graphs with a small number of
//! random edit operations so queries are near-but-not-in the database —
//! this is what creates the "neighborhood of Q" structure that LAN exploits,
//! and it gives test oracles: applying `t` edits bounds GED from above by
//! `t`.

use crate::graph::{Graph, GraphBuilder, Label, NodeId};
use rand::Rng;

/// One of the five GED edit operation kinds (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    NodeInsert,
    NodeDelete,
    EdgeInsert,
    EdgeDelete,
    Relabel,
}

/// Applies up to `t` random edit operations to `g`, returning the perturbed
/// graph and the number of edits actually applied (an upper bound on
/// `GED(g, result)`).
///
/// Node deletion targets only isolated-able nodes by first removing incident
/// edges, with each removed edge counted as an edit — so the returned count
/// remains a valid GED upper bound.
pub fn perturb<R: Rng + ?Sized>(
    rng: &mut R,
    g: &Graph,
    t: usize,
    num_labels: u16,
) -> (Graph, usize) {
    let mut labels: Vec<Label> = g.labels().to_vec();
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut applied = 0usize;

    while applied < t {
        let n = labels.len();
        let kind = match rng.gen_range(0..5) {
            0 => EditKind::NodeInsert,
            1 => EditKind::NodeDelete,
            2 => EditKind::EdgeInsert,
            3 => EditKind::EdgeDelete,
            _ => EditKind::Relabel,
        };
        match kind {
            EditKind::NodeInsert => {
                labels.push(rng.gen_range(0..num_labels));
                applied += 1;
                // Attach it so the graph stays connected-ish (edge counts as
                // a second edit when budget allows; otherwise leave isolated).
                if applied < t && n > 0 {
                    let u = labels.len() as NodeId - 1;
                    let v = rng.gen_range(0..n) as NodeId;
                    edges.push((v.min(u), v.max(u)));
                    applied += 1;
                }
            }
            EditKind::NodeDelete => {
                if n <= 2 {
                    continue;
                }
                let v = rng.gen_range(0..n) as NodeId;
                let incident = edges.iter().filter(|&&(a, b)| a == v || b == v).count();
                if applied + incident + 1 > t {
                    continue; // not enough edit budget
                }
                edges.retain(|&(a, b)| a != v && b != v);
                applied += incident;
                labels.remove(v as usize);
                // Reindex nodes above v.
                for e in &mut edges {
                    if e.0 > v {
                        e.0 -= 1;
                    }
                    if e.1 > v {
                        e.1 -= 1;
                    }
                }
                applied += 1;
            }
            EditKind::EdgeInsert => {
                if n < 2 {
                    continue;
                }
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u == v {
                    continue;
                }
                let e = (u.min(v), u.max(v));
                if edges.contains(&e) {
                    continue;
                }
                edges.push(e);
                applied += 1;
            }
            EditKind::EdgeDelete => {
                if edges.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..edges.len());
                edges.swap_remove(i);
                applied += 1;
            }
            EditKind::Relabel => {
                if n == 0 || num_labels < 2 {
                    continue;
                }
                let v = rng.gen_range(0..n);
                let old = labels[v];
                let mut newl = rng.gen_range(0..num_labels);
                if newl == old {
                    newl = (newl + 1) % num_labels;
                }
                labels[v] = newl;
                applied += 1;
            }
        }
    }

    let mut b = GraphBuilder::with_labels(labels);
    for (u, v) in edges {
        // Duplicates impossible by construction, but be defensive.
        if !b.has_edge(u, v) {
            b.add_edge(u, v).unwrap();
        }
    }
    (b.build(), applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::molecule_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_edits_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = molecule_like(&mut rng, 20, 3, 4, 10);
        let (p, applied) = perturb(&mut rng, &g, 0, 10);
        assert_eq!(applied, 0);
        assert_eq!(p, g);
    }

    #[test]
    fn applied_never_exceeds_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        for t in [1usize, 3, 5, 10] {
            let g = molecule_like(&mut rng, 15, 2, 4, 8);
            let (_, applied) = perturb(&mut rng, &g, t, 8);
            assert!(applied <= t, "applied {applied} > budget {t}");
        }
    }

    #[test]
    fn result_is_valid_simple_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let g = molecule_like(&mut rng, 12, 2, 4, 6);
            let (p, _) = perturb(&mut rng, &g, 6, 6);
            // GraphBuilder enforces simplicity; check no node vanished below 2.
            assert!(p.node_count() >= 2);
            for v in p.nodes() {
                for &w in p.neighbors(v) {
                    assert!(p.has_edge(w, v));
                    assert_ne!(w, v);
                }
            }
        }
    }

    #[test]
    fn perturbation_changes_graph() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = molecule_like(&mut rng, 20, 3, 4, 10);
        let mut changed = 0;
        for _ in 0..10 {
            let (p, applied) = perturb(&mut rng, &g, 4, 10);
            if p != g {
                changed += 1;
            }
            assert!(applied >= 1);
        }
        assert!(changed >= 8);
    }
}
