//! Plain-text serialization for graphs and graph databases.
//!
//! Format (one graph):
//!
//! ```text
//! t <node_count> <edge_count>
//! v <id> <label>      # node_count lines
//! e <u> <v>           # edge_count lines
//! ```
//!
//! A database file is a concatenation of graph records. The format is a
//! simplification of the `t/v/e` files used by the graph-similarity-search
//! literature the paper builds on.

use crate::graph::{Graph, GraphBuilder, Label, NodeId};
use std::fmt::Write as _;
use std::io::{self, BufRead};

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// Unexpected line content, with the 1-based line number.
    Syntax(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Syntax(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Serializes one graph to the text format.
pub fn write_graph(g: &Graph, out: &mut String) {
    let _ = writeln!(out, "t {} {}", g.node_count(), g.edge_count());
    for v in g.nodes() {
        let _ = writeln!(out, "v {} {}", v, g.label(v));
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {u} {v}");
    }
}

/// Serializes a whole database.
pub fn write_database(db: &[Graph]) -> String {
    let mut s = String::new();
    for g in db {
        write_graph(g, &mut s);
    }
    s
}

/// Parses a database (zero or more graph records) from a reader.
pub fn read_database<R: BufRead>(reader: R) -> Result<Vec<Graph>, ParseError> {
    let mut graphs = Vec::new();
    let mut lines = reader.lines().enumerate();

    while let Some((lno, line)) = lines.next() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        if tag != "t" {
            return Err(ParseError::Syntax(
                lno + 1,
                format!("expected 't', got {tag:?}"),
            ));
        }
        let n: usize = parse_field(&mut parts, lno, "node count")?;
        let m: usize = parse_field(&mut parts, lno, "edge count")?;

        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let (lno2, line) = next_content_line(&mut lines)?;
            let mut p = line.split_whitespace();
            expect_tag(&mut p, "v", lno2)?;
            let _id: NodeId = parse_field(&mut p, lno2, "node id")?;
            let label: Label = parse_field(&mut p, lno2, "label")?;
            b.add_node(label);
        }
        for _ in 0..m {
            let (lno2, line) = next_content_line(&mut lines)?;
            let mut p = line.split_whitespace();
            expect_tag(&mut p, "e", lno2)?;
            let u: NodeId = parse_field(&mut p, lno2, "edge endpoint")?;
            let v: NodeId = parse_field(&mut p, lno2, "edge endpoint")?;
            b.add_edge(u, v)
                .map_err(|e| ParseError::Syntax(lno2 + 1, e.to_string()))?;
        }
        graphs.push(b.build());
    }
    Ok(graphs)
}

/// Parses a database from a string.
pub fn parse_database(s: &str) -> Result<Vec<Graph>, ParseError> {
    read_database(s.as_bytes())
}

fn next_content_line(
    lines: &mut impl Iterator<Item = (usize, io::Result<String>)>,
) -> Result<(usize, String), ParseError> {
    for (lno, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim().to_string();
        if !t.is_empty() && !t.starts_with('#') {
            return Ok((lno, t));
        }
    }
    Err(ParseError::Syntax(0, "unexpected end of input".into()))
}

fn expect_tag<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    want: &str,
    lno: usize,
) -> Result<(), ParseError> {
    match parts.next() {
        Some(t) if t == want => Ok(()),
        other => Err(ParseError::Syntax(
            lno + 1,
            format!("expected {want:?}, got {other:?}"),
        )),
    }
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    lno: usize,
    what: &str,
) -> Result<T, ParseError> {
    parts
        .next()
        .ok_or_else(|| ParseError::Syntax(lno + 1, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::Syntax(lno + 1, format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::molecule_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_single() {
        let g = Graph::from_edges(vec![0, 1, 1], &[(0, 1), (1, 2)]).unwrap();
        let mut s = String::new();
        write_graph(&g, &mut s);
        let parsed = parse_database(&s).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], g);
    }

    #[test]
    fn roundtrip_database() {
        let mut rng = StdRng::seed_from_u64(9);
        let db: Vec<Graph> = (0..10)
            .map(|_| molecule_like(&mut rng, 15, 2, 4, 8))
            .collect();
        let s = write_database(&db);
        let parsed = parse_database(&s).unwrap();
        assert_eq!(parsed, db);
    }

    #[test]
    fn empty_input() {
        assert!(parse_database("").unwrap().is_empty());
        assert!(parse_database("\n# comment only\n").unwrap().is_empty());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = "# header\n\nt 2 1\nv 0 5\n# mid comment\nv 1 6\ne 0 1\n";
        let parsed = parse_database(s).unwrap();
        assert_eq!(parsed[0].label(0), 5);
        assert_eq!(parsed[0].edge_count(), 1);
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_database("x 1 0\n").is_err());
        assert!(parse_database("t 1\n").is_err());
        assert!(parse_database("t 1 0\nw 0 0\n").is_err());
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\ne 0 0\n").is_err()); // self loop
        assert!(parse_database("t 1 0\nv 0 0\n").is_ok());
        assert!(parse_database("t 0 0\n").is_ok()); // empty graph record
        assert!(parse_database("t 1 0\n").is_err()); // declared node missing
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\n").is_err()); // truncated
    }
}
