//! Plain-text serialization for graphs and graph databases.
//!
//! Format (one graph):
//!
//! ```text
//! t <node_count> <edge_count>
//! v <id> <label>      # node_count lines
//! e <u> <v>           # edge_count lines
//! ```
//!
//! A database file is a concatenation of graph records. The format is a
//! simplification of the `t/v/e` files used by the graph-similarity-search
//! literature the paper builds on.

use crate::graph::{Graph, GraphBuilder, Label, NodeId};
use std::fmt::Write as _;
use std::io::{self, BufRead};

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// Unexpected line content, with the 1-based line number.
    Syntax(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Syntax(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Serializes one graph to the text format.
pub fn write_graph(g: &Graph, out: &mut String) {
    let _ = writeln!(out, "t {} {}", g.node_count(), g.edge_count());
    for v in g.nodes() {
        let _ = writeln!(out, "v {} {}", v, g.label(v));
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {u} {v}");
    }
}

/// Serializes a whole database.
pub fn write_database(db: &[Graph]) -> String {
    let mut s = String::new();
    for g in db {
        write_graph(g, &mut s);
    }
    s
}

/// Parses a database (zero or more graph records) from a reader.
pub fn read_database<R: BufRead>(reader: R) -> Result<Vec<Graph>, ParseError> {
    let mut graphs = Vec::new();
    let mut lines = reader.lines().enumerate();

    while let Some((lno, line)) = lines.next() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        if tag != "t" {
            return Err(ParseError::Syntax(
                lno + 1,
                format!("expected 't', got {tag:?}"),
            ));
        }
        let n: usize = parse_field(&mut parts, lno, "node count")?;
        let m: usize = parse_field(&mut parts, lno, "edge count")?;
        expect_end_of_line(&mut parts, lno)?;

        let mut b = GraphBuilder::new();
        for expect_id in 0..n {
            let (lno2, line) = next_content_line(&mut lines)?;
            let mut p = line.split_whitespace();
            expect_tag(&mut p, "v", lno2)?;
            let id: NodeId = parse_field(&mut p, lno2, "node id")?;
            // Node ids must be the dense sequence 0..n in order: a
            // duplicate, gap, or out-of-order id means edge endpoints
            // would silently bind to the wrong nodes.
            if id as usize != expect_id {
                return Err(ParseError::Syntax(
                    lno2 + 1,
                    format!("node id {id} out of order (expected {expect_id})"),
                ));
            }
            let label: Label = parse_field(&mut p, lno2, "label")?;
            expect_end_of_line(&mut p, lno2)?;
            b.add_node(label);
        }
        for _ in 0..m {
            let (lno2, line) = next_content_line(&mut lines)?;
            let mut p = line.split_whitespace();
            expect_tag(&mut p, "e", lno2)?;
            let u: NodeId = parse_field(&mut p, lno2, "edge endpoint")?;
            let v: NodeId = parse_field(&mut p, lno2, "edge endpoint")?;
            expect_end_of_line(&mut p, lno2)?;
            // Out-of-range endpoints, self loops, and duplicate edges are
            // all rejected by the builder — surfaced as syntax errors with
            // the offending line number, never silently dropped.
            b.add_edge(u, v)
                .map_err(|e| ParseError::Syntax(lno2 + 1, e.to_string()))?;
        }
        graphs.push(b.build());
    }
    Ok(graphs)
}

/// Parses a database from a string.
pub fn parse_database(s: &str) -> Result<Vec<Graph>, ParseError> {
    read_database(s.as_bytes())
}

fn next_content_line(
    lines: &mut impl Iterator<Item = (usize, io::Result<String>)>,
) -> Result<(usize, String), ParseError> {
    for (lno, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim().to_string();
        if !t.is_empty() && !t.starts_with('#') {
            return Ok((lno, t));
        }
    }
    Err(ParseError::Syntax(0, "unexpected end of input".into()))
}

fn expect_tag<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    want: &str,
    lno: usize,
) -> Result<(), ParseError> {
    match parts.next() {
        Some(t) if t == want => Ok(()),
        other => Err(ParseError::Syntax(
            lno + 1,
            format!("expected {want:?}, got {other:?}"),
        )),
    }
}

/// Rejects trailing tokens: a line like `e 0 1 2` is a malformed record
/// (likely a missing newline), not an edge with decoration.
fn expect_end_of_line<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    lno: usize,
) -> Result<(), ParseError> {
    match parts.next() {
        None => Ok(()),
        Some(tok) => Err(ParseError::Syntax(
            lno + 1,
            format!("unexpected trailing token {tok:?}"),
        )),
    }
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    lno: usize,
    what: &str,
) -> Result<T, ParseError> {
    parts
        .next()
        .ok_or_else(|| ParseError::Syntax(lno + 1, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::Syntax(lno + 1, format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::molecule_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_single() {
        let g = Graph::from_edges(vec![0, 1, 1], &[(0, 1), (1, 2)]).unwrap();
        let mut s = String::new();
        write_graph(&g, &mut s);
        let parsed = parse_database(&s).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], g);
    }

    #[test]
    fn roundtrip_database() {
        let mut rng = StdRng::seed_from_u64(9);
        let db: Vec<Graph> = (0..10)
            .map(|_| molecule_like(&mut rng, 15, 2, 4, 8))
            .collect();
        let s = write_database(&db);
        let parsed = parse_database(&s).unwrap();
        assert_eq!(parsed, db);
    }

    #[test]
    fn empty_input() {
        assert!(parse_database("").unwrap().is_empty());
        assert!(parse_database("\n# comment only\n").unwrap().is_empty());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = "# header\n\nt 2 1\nv 0 5\n# mid comment\nv 1 6\ne 0 1\n";
        let parsed = parse_database(s).unwrap();
        assert_eq!(parsed[0].label(0), 5);
        assert_eq!(parsed[0].edge_count(), 1);
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_database("x 1 0\n").is_err());
        assert!(parse_database("t 1\n").is_err());
        assert!(parse_database("t 1 0\nw 0 0\n").is_err());
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\ne 0 0\n").is_err()); // self loop
        assert!(parse_database("t 1 0\nv 0 0\n").is_ok());
        assert!(parse_database("t 0 0\n").is_ok()); // empty graph record
        assert!(parse_database("t 1 0\n").is_err()); // declared node missing
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\n").is_err()); // truncated
    }

    #[test]
    fn edge_endpoints_beyond_node_count_rejected() {
        // u >= n
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\ne 2 0\n").is_err());
        // v >= n
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\ne 0 9\n").is_err());
        // duplicate edge (both orientations)
        assert!(parse_database("t 2 2\nv 0 0\nv 1 0\ne 0 1\ne 0 1\n").is_err());
        assert!(parse_database("t 2 2\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n").is_err());
    }

    #[test]
    fn node_ids_must_be_dense_and_ordered() {
        // Duplicate id.
        assert!(parse_database("t 2 0\nv 0 0\nv 0 1\n").is_err());
        // Out of order.
        assert!(parse_database("t 2 0\nv 1 0\nv 0 1\n").is_err());
        // Gap (id 2 in a 2-node graph).
        assert!(parse_database("t 2 0\nv 0 0\nv 2 1\n").is_err());
        // Negative id is not a u32.
        assert!(parse_database("t 1 0\nv -1 0\n").is_err());
    }

    #[test]
    fn counts_must_agree_with_lines() {
        // More v lines than declared: the extra v is read as an edge line.
        assert!(parse_database("t 1 0\nv 0 0\nv 1 0\n").is_err());
        // More e lines than declared: the extra e is read as a 't' header.
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n").is_err());
        // Trailing tokens on any record line are rejected.
        assert!(parse_database("t 1 0 7\nv 0 0\n").is_err());
        assert!(parse_database("t 1 0\nv 0 0 7\n").is_err());
        assert!(parse_database("t 2 1\nv 0 0\nv 1 0\ne 0 1 5\n").is_err());
    }

    #[test]
    fn crlf_and_trailing_blank_lines_accepted() {
        let unix = "t 2 1\nv 0 5\nv 1 6\ne 0 1\n";
        let dos = "t 2 1\r\nv 0 5\r\nv 1 6\r\ne 0 1\r\n";
        let trailing = "t 2 1\nv 0 5\nv 1 6\ne 0 1\n\n\n  \n";
        let a = parse_database(unix).unwrap();
        let b = parse_database(dos).unwrap();
        let c = parse_database(trailing).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a[0].edge_count(), 1);
    }

    #[test]
    fn write_parse_round_trip_property() {
        // Randomized write→parse round trip over many generated databases.
        let mut rng = StdRng::seed_from_u64(0xD15C);
        for trial in 0..30 {
            let db: Vec<Graph> = (0..5)
                .map(|i| molecule_like(&mut rng, 3 + (trial + i) % 20, 3, 4, 9))
                .collect();
            let s = write_database(&db);
            let parsed = parse_database(&s).expect("well-formed output must parse");
            assert_eq!(parsed, db, "trial {trial}");
        }
    }

    #[test]
    fn malformed_inputs_error_but_never_panic() {
        // Mutational fuzz: corrupt a valid serialization one byte at a
        // time (and with random splices); every outcome must be Ok or a
        // typed Syntax error — no panic, no silent truncation of a graph
        // that still parses whole.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(0xF422);
        let db: Vec<Graph> = (0..3)
            .map(|_| molecule_like(&mut rng, 8, 2, 4, 5))
            .collect();
        let s = write_database(&db);
        let bytes = s.as_bytes();
        let total_nodes: usize = db.iter().map(|g| g.node_count()).sum();
        let total_edges: usize = db.iter().map(|g| g.edge_count()).sum();
        let replacements = [b'0', b'9', b'x', b' ', b'\n', b'-', b't', b'v', b'e'];
        for i in 0..bytes.len() {
            for &r in &replacements {
                let mut m = bytes.to_vec();
                m[i] = r;
                if let Ok(parsed) = parse_database(std::str::from_utf8(&m).unwrap()) {
                    // A mutation that still parses must not have silently
                    // dropped structure it claimed: totals stay consistent
                    // with each record's own t-line by construction, so
                    // just sanity-bound the totals.
                    let n: usize = parsed.iter().map(|g| g.node_count()).sum();
                    let e: usize = parsed.iter().map(|g| g.edge_count()).sum();
                    assert!(n <= total_nodes + 9 && e <= total_edges + 9);
                }
            }
        }
        // Random truncations.
        for _ in 0..200 {
            let cut = rng.gen_range(0..bytes.len());
            let _ = parse_database(std::str::from_utf8(&bytes[..cut]).unwrap_or(""));
        }
    }
}
