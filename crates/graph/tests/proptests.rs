//! Property tests for the graph substrate.

use lan_graph::generators::{
    control_flow_like, erdos_renyi, is_connected, molecule_like, power_law_like,
};
use lan_graph::io::{parse_database, write_database};
use lan_graph::perturb::perturb;
use lan_graph::wl::{wl_histogram, WlInterner};
use lan_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_valid(g: &Graph) {
    for v in g.nodes() {
        for &w in g.neighbors(v) {
            assert_ne!(v, w, "self loop");
            assert!(g.has_edge(w, v), "asymmetric adjacency");
        }
    }
    assert_eq!(
        g.edges().count(),
        g.edge_count(),
        "edge iterator disagrees with edge_count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generators_produce_valid_graphs(seed in any::<u64>(), n in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g1 = molecule_like(&mut rng, n, 3, 4, 8);
        let g2 = control_flow_like(&mut rng, n, 0.2, 0.1, 8);
        let g3 = power_law_like(&mut rng, n, 2, 2, 4);
        let g4 = erdos_renyi(&mut rng, n, n, 4);
        for g in [&g1, &g2, &g3, &g4] {
            assert_valid(g);
            prop_assert_eq!(g.node_count(), n);
        }
        prop_assert!(is_connected(&g1));
        prop_assert!(is_connected(&g2));
        prop_assert!(is_connected(&g3));
    }

    #[test]
    fn io_roundtrip(seed in any::<u64>(), count in 0usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db: Vec<Graph> =
            (0..count).map(|_| molecule_like(&mut rng, 1 + (seed as usize % 12), 2, 4, 6)).collect();
        let text = write_database(&db);
        let parsed = parse_database(&text).unwrap();
        prop_assert_eq!(parsed, db);
    }

    #[test]
    fn wl_histogram_invariant_under_permutation(seed in any::<u64>(), n in 2usize..20) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(&mut rng, n, n + 2, 3);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        let p = g.permute(&perm);
        // Shared interner makes the label ids comparable across both graphs.
        let mut interner = WlInterner::new();
        for l in 0..=2usize {
            let h1 = wl_histogram(&mut interner, &g, l);
            let h2 = wl_histogram(&mut interner, &p, l);
            prop_assert_eq!(h1, h2, "WL histograms differ at iteration {}", l);
        }
    }

    #[test]
    fn perturb_respects_budget_and_validity(seed in any::<u64>(), t in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = molecule_like(&mut rng, 10, 2, 4, 5);
        let (p, applied) = perturb(&mut rng, &g, t, 5);
        prop_assert!(applied <= t);
        assert_valid(&p);
        if t == 0 {
            prop_assert_eq!(p, g);
        }
    }

    #[test]
    fn wl_refinement_partitions_nest(seed in any::<u64>(), n in 2usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(&mut rng, n, n, 3);
        let wl = lan_graph::wl::wl_labels(&g, 3);
        for l in 1..=3usize {
            for u in 0..n {
                for v in 0..n {
                    if wl.labels[l][u] == wl.labels[l][v] {
                        prop_assert_eq!(
                            wl.labels[l - 1][u],
                            wl.labels[l - 1][v],
                            "iteration {} merged nodes split at {}",
                            l,
                            l - 1
                        );
                    }
                }
            }
        }
    }
}
