//! Criterion microbenchmark pinning down the observability layer's cost:
//! counter increments, histogram records, and spans, with the registry
//! enabled vs disabled — the "zero-overhead when disabled" claim, plus an
//! end-to-end routing comparison showing the enabled cost drowns in the
//! distance computations it measures.

use criterion::{criterion_group, criterion_main, Criterion};
use lan_obs::span;
use lan_pg::np_route::{np_route, OracleRanker};
use lan_pg::{DistCache, PairCache, PgConfig, ProximityGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_primitives(c: &mut Criterion) {
    let counter = lan_obs::counter("bench.obs.counter");
    let hist = lan_obs::histogram("bench.obs.hist");
    let mut group = c.benchmark_group("obs_primitives");

    lan_obs::set_enabled(false);
    group.bench_function("counter_inc_disabled", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_record_disabled", |b| b.iter(|| hist.record(42)));
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _s = span("bench.obs.span");
        })
    });

    lan_obs::set_enabled(true);
    group.bench_function("counter_inc_enabled", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_record_enabled", |b| b.iter(|| hist.record(42)));
    group.bench_function("span_enabled", |b| {
        b.iter(|| {
            let _s = span("bench.obs.span");
        })
    });
    group.finish();
}

/// The EXPLAIN/profiler disabled paths: the acceptance bar is a single
/// relaxed atomic load per check — same cost class as
/// `counter_inc_disabled` above, nanoseconds against a microseconds-scale
/// query. `span_profile_off` shows an *enabled metrics* span still pays
/// nothing extra for the profiler being off.
fn bench_explain_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_explain");

    lan_obs::explain::set_enabled(false);
    lan_obs::profile::set_enabled(false);
    group.bench_function("explain_enabled_check_disabled", |b| {
        b.iter(lan_obs::explain::enabled)
    });
    group.bench_function("profile_enabled_check_disabled", |b| {
        b.iter(lan_obs::profile::enabled)
    });
    lan_obs::set_enabled(true);
    group.bench_function("span_profile_off", |b| {
        b.iter(|| {
            let _s = span("bench.obs.span");
        })
    });
    lan_obs::profile::set_enabled(true);
    group.bench_function("span_profile_on", |b| {
        b.iter(|| {
            let _s = span("bench.obs.span");
        })
    });
    lan_obs::profile::set_enabled(false);
    group.finish();
}

fn bench_routing_overhead(c: &mut Criterion) {
    let n = 2000usize;
    let mut rng = StdRng::seed_from_u64(3);
    let pts: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let pts2 = pts.clone();
    let pf = move |a: u32, b: u32| (pts2[a as usize] - pts2[b as usize]).abs();
    let pairs = PairCache::new_uncounted(&pf);
    let pg = ProximityGraph::build(n, &pairs, &PgConfig::new(8));
    let dists: Vec<f64> = pts.iter().map(|p| (p - 37.5).abs()).collect();
    let entry = pg.entry;
    let adj = pg.base().to_vec();

    let mut group = c.benchmark_group("obs_routing");
    for (label, on) in [
        ("np_route_metrics_off", false),
        ("np_route_metrics_on", true),
    ] {
        lan_obs::set_enabled(on);
        group.bench_function(label, |b| {
            b.iter(|| {
                let f = |id: u32| dists[id as usize];
                let cache = DistCache::new(&f);
                let oracle = OracleRanker::new(&f, 20);
                np_route(&adj, &cache, &oracle, &[entry], 32, 10, 1.0)
            })
        });
    }
    lan_obs::set_enabled(true);
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_explain_overhead,
    bench_routing_overhead
);
criterion_main!(benches);
