//! Criterion microbenchmark: plain vs compressed (CG) cross-graph forward —
//! the Fig. 12 mechanism at micro scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lan_gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput, GnnConfig};
use lan_graph::generators::molecule_like;
use lan_tensor::{ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cross(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_forward");
    // Fewer labels => more WL-equal nodes => stronger compression.
    for &labels in &[2u16, 5, 20] {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GnnConfig::uniform(labels as usize, 32, 2);
        let mut store = ParamStore::new();
        let net = CrossGraphNet::new(&mut rng, &mut store, cfg.clone());
        let g = molecule_like(&mut rng, 30, 3, 4, labels);
        let q = molecule_like(&mut rng, 30, 3, 4, labels);
        let plain_g = CrossInput::plain(&g, &cfg);
        let plain_q = CrossInput::plain(&q, &cfg);
        let cg_g = CrossInput::compressed(&CompressedGnnGraph::build(&g, 2), &cfg);
        let cg_q = CrossInput::compressed(&CompressedGnnGraph::build(&q, 2), &cfg);

        group.bench_with_input(BenchmarkId::new("plain", labels), &(), |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                net.forward(&mut tape, &store, &plain_g, &plain_q)
            })
        });
        group.bench_with_input(BenchmarkId::new("cg", labels), &(), |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                net.forward(&mut tape, &store, &cg_g, &cg_q)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cross
}
criterion_main!(benches);
