//! Criterion microbenchmark: baseline beam search vs oracle np_route on a
//! synthetic metric space — isolates the Algorithm 2 control-flow overhead
//! and its NDC savings from the GED cost.

use criterion::{criterion_group, criterion_main, Criterion};
use lan_pg::np_route::{np_route, OracleRanker};
use lan_pg::{beam_search, DistCache, PairCache, PgConfig, ProximityGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(n: usize) -> (Vec<Vec<u32>>, Vec<f64>, u32) {
    let mut rng = StdRng::seed_from_u64(3);
    let pts: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let pts2 = pts.clone();
    let f = move |a: u32, b: u32| (pts2[a as usize] - pts2[b as usize]).abs();
    let pairs = PairCache::new(&f);
    let pg = ProximityGraph::build(n, &pairs, &PgConfig::new(8));
    let q = 37.5f64;
    let dists: Vec<f64> = pts.iter().map(|p| (p - q).abs()).collect();
    (pg.base().to_vec(), dists, pg.entry)
}

fn bench_routing(c: &mut Criterion) {
    let (adj, dists, entry) = setup(2000);
    let mut group = c.benchmark_group("routing");
    group.bench_function("baseline_beam", |b| {
        b.iter(|| {
            let f = |id: u32| dists[id as usize];
            let cache = DistCache::new(&f);
            beam_search(&adj, &cache, &[entry], 32, 10)
        })
    });
    group.bench_function("np_route_oracle", |b| {
        b.iter(|| {
            let f = |id: u32| dists[id as usize];
            let cache = DistCache::new(&f);
            let oracle = OracleRanker::new(&f, 20);
            np_route(&adj, &cache, &oracle, &[entry], 32, 10, 1.0)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing
}
criterion_main!(benches);
