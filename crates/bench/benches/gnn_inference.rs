//! Criterion microbenchmarks for the tape-free inference fast path:
//! per-pair cross-graph forward (tape vs `infer_pair`) and ranker-head
//! scoring of one routing hop (per-row tapes vs one fused matmul).
//!
//! The figure-level numbers (including the cached-hop speedup gate) come
//! from the `gnn_inference` binary, which writes `results/BENCH_gnn.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lan_gnn::{CrossGraphNet, CrossInput, GnnConfig};
use lan_graph::generators::molecule_like;
use lan_tensor::{FusedHeads, Matrix, Mlp, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_pair_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_forward");
    for &n in &[10usize, 25] {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = GnnConfig::uniform(5, 16, 2);
        let mut store = ParamStore::new();
        let net = CrossGraphNet::new(&mut rng, &mut store, cfg.clone());
        let g = molecule_like(&mut rng, n, 2, 3, 5);
        let q = molecule_like(&mut rng, n, 2, 3, 5);
        let gx = CrossInput::plain(&g, &cfg);
        let qx = CrossInput::plain(&q, &cfg);

        group.bench_with_input(BenchmarkId::new("tape", n), &(), |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                net.forward(&mut tape, &store, &gx, &qx)
            })
        });
        group.bench_with_input(BenchmarkId::new("infer", n), &(), |b, _| {
            lan_gnn::with_scratch(|s| {
                let mut out = Vec::new();
                b.iter(|| {
                    net.infer_pair(&store, &gx, &qx, s, &mut out);
                    std::hint::black_box(out.len())
                })
            })
        });
    }
    group.finish();
}

fn bench_hop_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("hop_scoring");
    // One routing hop: `neighbors` feature rows scored by 5 [d, h, 1] heads.
    let (dim, hidden, heads_n) = (65usize, 16usize, 5usize);
    for &neighbors in &[8usize, 20] {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let heads: Vec<Mlp> = (0..heads_n)
            .map(|_| Mlp::new(&mut rng, &mut store, &[dim, hidden, 1]))
            .collect();
        let fused = FusedHeads::new(&heads, &store);
        let x = Matrix::from_fn(neighbors, dim, |_, _| rng.gen_range(-1.0..1.0f32));

        group.bench_with_input(BenchmarkId::new("per_row_tapes", neighbors), &(), |b, _| {
            b.iter(|| {
                let mut total = 0.0f32;
                for i in 0..neighbors {
                    for head in &heads {
                        let mut tape = Tape::new();
                        let xv = tape.leaf(Matrix::from_vec(1, dim, x.row(i).to_vec()));
                        let y = head.forward(&mut tape, &store, xv);
                        total += tape.value(y).scalar();
                    }
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", neighbors), &(), |b, _| {
            let mut hid = Matrix::zeros(0, 0);
            let mut out = Matrix::zeros(0, 0);
            b.iter(|| {
                fused.score_into(&x, &mut hid, &mut out);
                let mut total = 0.0f32;
                for i in 0..neighbors {
                    for hd in 0..heads_n {
                        total += out.get(i, hd);
                    }
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pair_forward, bench_hop_scoring
}
criterion_main!(benches);
