//! Criterion microbenchmarks for the GED algorithms (the cost LAN's NDC
//! reduction amortizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lan_ged::beam::beam_ged;
use lan_ged::bipartite::{bipartite_ged, Solver};
use lan_ged::exact::{exact_ged, ExactLimits};
use lan_graph::generators::molecule_like;
use lan_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pairs(n: usize, count: usize, seed: u64) -> Vec<(Graph, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                molecule_like(&mut rng, n, 3, 4, 20),
                molecule_like(&mut rng, n, 3, 4, 20),
            )
        })
        .collect()
}

fn bench_ged(c: &mut Criterion) {
    let mut group = c.benchmark_group("ged");
    for &n in &[10usize, 25, 48] {
        let ps = pairs(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::new("hungarian", n), &ps, |b, ps| {
            b.iter(|| {
                ps.iter()
                    .map(|(g1, g2)| bipartite_ged(g1, g2, Solver::Hungarian))
                    .sum::<f64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("vj", n), &ps, |b, ps| {
            b.iter(|| {
                ps.iter()
                    .map(|(g1, g2)| bipartite_ged(g1, g2, Solver::Vj))
                    .sum::<f64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("beam8", n), &ps, |b, ps| {
            b.iter(|| ps.iter().map(|(g1, g2)| beam_ged(g1, g2, 8)).sum::<f64>())
        });
    }
    // Exact GED only on tiny graphs (NP-hard — this is the paper's point).
    let tiny = pairs(6, 4, 99);
    group.bench_function("exact_n6", |b| {
        b.iter(|| {
            tiny.iter()
                .map(|(g1, g2)| {
                    exact_ged(g1, g2, &ExactLimits::default())
                        .distance()
                        .unwrap_or(0.0)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ged
}
criterion_main!(benches);
