//! Criterion microbenchmark: proximity-graph construction cost as the
//! database grows (index-time GED budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lan_datasets::{Dataset, DatasetSpec};
use lan_ged::GedMethod;
use lan_pg::{PairCache, PgConfig, ProximityGraph};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pg_build");
    group.sample_size(10);
    for &n in &[40usize, 80, 160] {
        // Hungarian-only metric: the bench isolates construction logic, not
        // the GED ensemble cost (which `ged_algorithms` measures).
        let ds = Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(n)
                .with_queries(2)
                .with_metric(GedMethod::Hungarian),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| {
                let f = |a: u32, bb: u32| ds.pair_distance(a, bb);
                let pairs = PairCache::new(&f);
                ProximityGraph::build(ds.graphs.len(), &pairs, &PgConfig::new(6))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
