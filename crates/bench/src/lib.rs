//! Shared scaffolding for the figure-regeneration binaries.
//!
//! Every binary accepts a scale from the `LAN_SCALE` environment variable:
//!
//! * `small` (default) — minutes-scale runs that reproduce the *shapes* of
//!   the paper's figures;
//! * `medium` — larger databases and more queries for tighter curves.
//!
//! Absolute numbers cannot match the paper's testbed (V100S + 800 GB
//! server, 42k–1M graph databases); EXPERIMENTS.md records what transfers:
//! orderings, approximate speedup factors, and crossover locations.

/// The zero-dep JSON parser now lives in `lan-obs` (shared with the
/// serving protocol); re-exported here so the sentinel and smoke
/// checkers keep their `lan_bench::json::` paths.
pub mod json {
    pub use lan_obs::json::*;
}

use lan_core::{LanConfig, LanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::PgConfig;

/// Benchmark scale selected via `LAN_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Medium,
}

impl Scale {
    /// Reads `LAN_SCALE` (default `small`).
    pub fn from_env() -> Self {
        match std::env::var("LAN_SCALE").as_deref() {
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        }
    }
}

/// Database / query sizes per dataset at a scale.
pub fn sized_spec(spec: DatasetSpec, scale: Scale) -> DatasetSpec {
    match scale {
        Scale::Small => {
            let (g, q) = match spec.name {
                "AIDS" => (240, 40),
                "LINUX" => (240, 40),
                "PUBCHEM" => (160, 30),
                _ => (600, 40),
            };
            spec.with_graphs(g).with_queries(q)
        }
        Scale::Medium => {
            let (g, q) = match spec.name {
                "AIDS" => (600, 80),
                "LINUX" => (600, 80),
                "PUBCHEM" => (400, 60),
                _ => (1500, 80),
            };
            spec.with_graphs(g).with_queries(q)
        }
    }
}

/// Index configuration used by all figure binaries.
pub fn bench_lan_config(scale: Scale) -> LanConfig {
    let model = match scale {
        Scale::Small => ModelConfig {
            embed_dim: 16,
            epochs: 3,
            max_samples_per_epoch: 500,
            nh_cover_k: 40,
            clusters: 6,
            top_clusters: 3,
            mlp_hidden: 16,
            ..ModelConfig::default()
        },
        Scale::Medium => ModelConfig {
            embed_dim: 32,
            epochs: 5,
            max_samples_per_epoch: 1000,
            nh_cover_k: 80,
            clusters: 8,
            top_clusters: 3,
            ..ModelConfig::default()
        },
    };
    LanConfig {
        pg: PgConfig::new(6),
        model,
        ds: 1.0,
        quant: lan_core::QuantConfig::from_env(),
    }
}

/// Builds the index for one dataset preset at the current scale, printing
/// progress (index construction dominated by GED computations is slow by
/// nature — that is the paper's premise).
///
/// When `LAN_STORE` names a directory, built indexes are cached there as
/// store files keyed by dataset name, size, and scale: a later run with
/// the same key `open`s the file (milliseconds) instead of rebuilding
/// (minutes). A stale or corrupt cache entry is rebuilt and overwritten —
/// the typed open error is printed, never trusted.
pub fn build_index(spec: DatasetSpec, scale: Scale) -> LanIndex {
    let spec = sized_spec(spec, scale);
    let cache = cache_path(&spec, scale);
    if let Some(path) = &cache {
        match LanIndex::open(path) {
            Ok(index) => {
                eprintln!("[{}] opened cached index {}", spec.name, path.display());
                return index;
            }
            Err(lan_store::StoreError::Io(_)) => {} // not cached yet
            Err(e) => eprintln!(
                "[{}] ignoring unusable cache {}: {e}",
                spec.name,
                path.display()
            ),
        }
    }
    let index = build_index_uncached(spec, scale);
    if let Some(path) = &cache {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match index.save(path) {
            Ok(bytes) => eprintln!(
                "[{}] cached index to {} ({bytes} bytes)",
                index.dataset.spec.name,
                path.display()
            ),
            Err(e) => eprintln!(
                "[{}] failed to cache index to {}: {e}",
                index.dataset.spec.name,
                path.display()
            ),
        }
    }
    index
}

/// Cache file for a sized spec under `LAN_STORE`, or `None` when the env
/// knob is unset. The key carries everything `sized_spec` pins (name,
/// sizes, scale); model/PG config follow from the scale.
fn cache_path(spec: &DatasetSpec, scale: Scale) -> Option<std::path::PathBuf> {
    std::env::var("LAN_STORE").ok().map(|dir| {
        std::path::PathBuf::from(dir).join(format!(
            "{}_g{}_q{}_{:?}.lan",
            spec.name.to_lowercase(),
            spec.num_graphs,
            spec.num_queries,
            scale
        ))
    })
}

/// [`build_index`] without the `sized_spec` re-sizing or the `LAN_STORE`
/// cache: builds exactly the spec given (the `persist` bench's 10k tier
/// must not be clamped to the scale's default database size, and must
/// measure a real rebuild).
pub fn build_index_exact(spec: DatasetSpec, scale: Scale) -> LanIndex {
    build_index_uncached(spec, scale)
}

fn build_index_uncached(spec: DatasetSpec, scale: Scale) -> LanIndex {
    let name = spec.name;
    eprintln!(
        "[{name}] generating dataset ({} graphs)...",
        spec.num_graphs
    );
    let ds = Dataset::generate(spec);
    eprintln!(
        "[{name}] building index (PG + model training); avg |V| = {:.1}, avg |E| = {:.1}",
        ds.avg_nodes(),
        ds.avg_edges()
    );
    let t0 = std::time::Instant::now();
    let index = LanIndex::build(ds, bench_lan_config(scale));
    eprintln!(
        "[{name}] index ready in {:.1}s (build NDC = {}, gamma* = {}, M_nh precision = {:.2})",
        t0.elapsed().as_secs_f64(),
        index.build_ndc,
        index.report.gamma_star,
        index.report.nh_precision
    );
    index
}

/// The four dataset presets.
pub fn all_specs() -> Vec<DatasetSpec> {
    DatasetSpec::all()
}

/// Beam sweep used for recall–QPS curves.
pub fn beam_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![20, 24, 30, 40, 56, 80],
        Scale::Medium => vec![50, 56, 68, 88, 120, 160, 220],
    }
}

/// `k` for recall@k. The paper reports k = 50; at the scaled database sizes
/// 50 is a large fraction of the database, so `small` uses k = 20.
pub fn k_for(scale: Scale) -> usize {
    match scale {
        Scale::Small => 20,
        Scale::Medium => 50,
    }
}

/// Builds (or `open`s from the `LAN_STORE` cache) a sharded index over an
/// **already generated** dataset. The cache key pins everything the scale
/// campaign varies — dataset name, sizes, seed, and shard count; callers
/// are responsible for regenerating `dataset` identically (the scale
/// tiers use the seed-deterministic `Dataset::generate_par`). Stale or
/// corrupt entries are rebuilt and overwritten, like [`build_index`].
pub fn build_sharded_cached(
    dataset: &Dataset,
    cfg: &LanConfig,
    num_shards: usize,
) -> lan_core::ShardedLanIndex {
    let spec = &dataset.spec;
    let cache = std::env::var("LAN_STORE").ok().map(|dir| {
        std::path::PathBuf::from(dir).join(format!(
            "sharded_{}_g{}_q{}_seed{}_s{}.lan",
            spec.name.to_lowercase(),
            spec.num_graphs,
            spec.num_queries,
            spec.seed,
            num_shards
        ))
    });
    if let Some(path) = &cache {
        match lan_core::ShardedLanIndex::open(path) {
            Ok(index) => {
                eprintln!(
                    "[{}] opened cached sharded index {}",
                    spec.name,
                    path.display()
                );
                return index;
            }
            Err(lan_store::StoreError::Io(_)) => {} // not cached yet
            Err(e) => eprintln!(
                "[{}] ignoring unusable cache {}: {e}",
                spec.name,
                path.display()
            ),
        }
    }
    let index = lan_core::ShardedLanIndex::build(dataset, cfg, num_shards);
    if let Some(path) = &cache {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match index.save(path) {
            Ok(bytes) => eprintln!(
                "[{}] cached sharded index to {} ({bytes} bytes)",
                spec.name,
                path.display()
            ),
            Err(e) => eprintln!(
                "[{}] failed to cache sharded index to {}: {e}",
                spec.name,
                path.display()
            ),
        }
    }
    index
}

/// Host hardware parallelism (`available_parallelism`; 1 when the probe
/// fails). Distinct from [`lan_par::num_threads`], which is the worker
/// count actually used (clamped by `LAN_THREADS`).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// True when the host has too little parallelism for any speedup field to
/// be meaningful (< 4 hardware threads). Benches record this flag instead
/// of asserting speedup floors — a 1.0x "speedup" measured on a 1-core
/// host is a property of the host, not a regression.
pub fn underprovisioned() -> bool {
    host_threads() < 4
}

/// JSON header fragment recording host and worker parallelism. Embedded
/// near the top of every `BENCH_*.json` so readers (and the sentinel)
/// can tell that speedup/QPS fields are functions of this configuration.
/// Emits complete `"key": value,` lines; splice between two fields.
pub fn host_header_json() -> String {
    format!(
        "  \"host_threads\": {},\n  \"lan_threads\": {},\n",
        host_threads(),
        lan_par::num_threads()
    )
}

/// Finishes a bench run's observability outputs: the global metrics
/// snapshot as `results/BENCH_obs.json` (+ `results/BENCH_obs.prom`);
/// when `LAN_TRACE=route`, the buffered routing trace as
/// `results/trace_<bench>.jsonl`; when `LAN_EXPLAIN=1`, the buffered
/// per-query EXPLAIN plans as `results/explain_<bench>.jsonl`; and when
/// `LAN_PROFILE=1`, the folded span-tree stacks as
/// `results/PROFILE_<bench>.folded` (inferno/speedscope-compatible) plus
/// a top-self-time table on stderr.
///
/// `extra` entries (e.g. the run's independently summed `total_ndc`) are
/// embedded at the top level of the JSON next to the metrics, so checkers
/// can cross-validate the snapshot against the bench's own accounting.
pub fn finish_obs(bench: &str, extra: &[(&str, u64)]) {
    std::fs::create_dir_all("results").expect("create results/");
    lan_obs::mem::sample_peak_rss();
    let snap = lan_obs::snapshot();
    let extras: String = extra
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v},\n"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"metrics_enabled\": {},\n{extras}  \"metrics\": {}\n}}\n",
        lan_obs::enabled(),
        snap.to_json(),
    );
    std::fs::write("results/BENCH_obs.json", json).expect("write results/BENCH_obs.json");
    std::fs::write("results/BENCH_obs.prom", snap.to_prometheus())
        .expect("write results/BENCH_obs.prom");
    eprintln!("wrote results/BENCH_obs.json (+ .prom)");
    if lan_obs::trace::route_enabled() {
        let path = format!("results/trace_{bench}.jsonl");
        match lan_obs::trace::write_jsonl(&path) {
            Ok(n) => eprintln!("wrote {n} routing-trace events to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if lan_obs::explain::enabled() {
        let path = format!("results/explain_{bench}.jsonl");
        match lan_obs::explain::write_jsonl(&path) {
            Ok(n) => eprintln!("wrote {n} EXPLAIN plans to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if lan_obs::profile::enabled() {
        let path = format!("results/PROFILE_{bench}.folded");
        match lan_obs::profile::write_folded(&path) {
            Ok(n) => eprintln!("wrote {n} folded stacks to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
        eprint!("{}", lan_obs::profile::format_top(10));
    }
}

/// Prints a curve as aligned rows.
pub fn print_curve(method: &str, curve: &[lan_core::CurvePoint]) {
    for p in curve {
        println!(
            "{method:<12} param={:<5} recall@k={:<8.3} QPS={:<10.2} avgNDC={:.1}",
            p.param, p.recall, p.qps, p.avg_ndc
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_default() {
        // Do not set the env var here (tests run in parallel); just check
        // the parse of explicit values via sized_spec behavior.
        let s = sized_spec(DatasetSpec::aids(), Scale::Small);
        assert_eq!(s.num_graphs, 240);
        let m = sized_spec(DatasetSpec::aids(), Scale::Medium);
        assert!(m.num_graphs > s.num_graphs);
    }

    #[test]
    fn lan_store_cache_is_opened_instead_of_rebuilt() {
        // Plant a tiny prebuilt index under the exact cache key build_index
        // computes for (SYN, Small); the call must come back with the
        // planted 25-graph index instead of rebuilding the 600-graph one.
        let tiny = LanIndex::build(
            Dataset::generate(
                DatasetSpec::syn()
                    .with_graphs(25)
                    .with_queries(8)
                    .with_metric(lan_ged::GedMethod::Hungarian),
            ),
            LanConfig {
                pg: PgConfig::new(4),
                model: ModelConfig {
                    embed_dim: 8,
                    epochs: 1,
                    max_samples_per_epoch: 50,
                    nh_cover_k: 5,
                    clusters: 2,
                    top_clusters: 1,
                    mlp_hidden: 8,
                    ..ModelConfig::default()
                },
                ds: 1.0,
                quant: lan_core::QuantConfig::default(),
            },
        );
        let dir = std::env::temp_dir().join(format!("lan_store_cache_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_str().unwrap().to_string();
        lan_par::testenv::with_env(&[("LAN_STORE", Some(&dir_s))], || {
            let key = cache_path(&sized_spec(DatasetSpec::syn(), Scale::Small), Scale::Small)
                .expect("LAN_STORE is set");
            tiny.save(&key).expect("plant cache");
            let got = build_index(DatasetSpec::syn(), Scale::Small);
            assert_eq!(
                got.dataset.graphs.len(),
                25,
                "build_index must open the planted cache, not rebuild"
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_is_increasing() {
        let sweep = beam_sweep(Scale::Small);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert!(*sweep.first().unwrap() >= k_for(Scale::Small));
    }
}
