//! Fig. 12: speedup of cross-graph learning itself — CG vs plain forward,
//! with HAG [45] as the acceleration baseline.
//!
//! HAG shares redundant partial sums in the neighbor aggregation, but
//! cannot reduce the matrix multiplications or the cross-graph attention
//! that dominate cross-graph learning — so its end-to-end speedup is ≈1×,
//! while the CG compresses *every* component (paper's Fig. 12: CG is
//! ~3.1–5.3× per dataset).
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig12_speedup
//! ```

use lan_bench::{sized_spec, Scale};
use lan_datasets::Dataset;
use lan_gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput, GnnConfig, HagPlan};
use lan_tensor::{ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let pairs = 60usize;
    println!("Fig 12: cross-graph learning speedup (plain = 1.0x)");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>14}",
        "Dataset", "CG", "HAG", "CG flops%", "agg adds saved"
    );

    for spec in lan_bench::all_specs() {
        let spec = sized_spec(spec, scale).with_graphs(2 * pairs);
        let num_labels = spec.num_labels as usize;
        let ds = Dataset::generate(spec);
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let cfg = GnnConfig::uniform(num_labels, 128, 2); // paper's embedding dim
        let net = CrossGraphNet::new(&mut rng, &mut store, cfg.clone());

        // Precompute inputs (CGs are precomputed for data graphs, §VI-C).
        let plain_inputs: Vec<CrossInput> = ds
            .graphs
            .iter()
            .map(|g| CrossInput::plain(g, &cfg))
            .collect();
        let cg_inputs: Vec<CrossInput> = ds
            .graphs
            .iter()
            .map(|g| CrossInput::compressed(&CompressedGnnGraph::build(g, 2), &cfg))
            .collect();

        // --- Plain forward timing + flops. ---
        let mut plain_flops = 0u64;
        let t0 = Instant::now();
        for i in 0..pairs {
            let mut tape = Tape::new();
            let _ = net.forward(
                &mut tape,
                &store,
                &plain_inputs[2 * i],
                &plain_inputs[2 * i + 1],
            );
            plain_flops += tape.flops();
        }
        let t_plain = t0.elapsed();

        // --- CG forward timing + flops. ---
        let mut cg_flops = 0u64;
        let t0 = Instant::now();
        for i in 0..pairs {
            let mut tape = Tape::new();
            let _ = net.forward(&mut tape, &store, &cg_inputs[2 * i], &cg_inputs[2 * i + 1]);
            cg_flops += tape.flops();
        }
        let t_cg = t0.elapsed();

        // --- HAG: accelerates only the aggregation additions; matmuls and
        //     attention are untouched, so time ≈ plain. Measure the plain
        //     forward again with HAG's aggregation savings accounted.
        let mut naive_adds = 0usize;
        let mut hag_adds = 0usize;
        let t0 = Instant::now();
        for i in 0..pairs {
            for g in [&ds.graphs[2 * i], &ds.graphs[2 * i + 1]] {
                let plan = HagPlan::build(g);
                naive_adds += HagPlan::naive_adds(g);
                hag_adds += plan.planned_adds();
            }
            let mut tape = Tape::new();
            let _ = net.forward(
                &mut tape,
                &store,
                &plain_inputs[2 * i],
                &plain_inputs[2 * i + 1],
            );
        }
        let t_hag = t0.elapsed();
        // HAG's best case: subtract the saved additions from the plain time
        // proportionally to their share of total flops (generous to HAG).
        let add_share = (naive_adds - hag_adds) as f64 * 128.0 / plain_flops as f64;
        let t_hag_ideal = t_plain.mul_f64((1.0 - add_share).max(0.0));
        let _ = t_hag;

        println!(
            "{:<10} {:>9.2}x {:>9.2}x {:>11.1}% {:>13.1}%",
            ds.spec.name,
            t_plain.as_secs_f64() / t_cg.as_secs_f64(),
            t_plain.as_secs_f64() / t_hag_ideal.as_secs_f64().max(1e-12),
            100.0 * cg_flops as f64 / plain_flops as f64,
            100.0 * (naive_adds - hag_adds) as f64 / naive_adds.max(1) as f64,
        );
    }
    println!("\n(paper: CG speedup ~4/4.2/5.3/3.1x on AIDS/LINUX/PUBCHEM/SYN; HAG ~1x)");
    lan_bench::finish_obs("fig12_speedup", &[]);
}
