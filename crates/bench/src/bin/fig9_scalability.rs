//! Fig. 9: scalability on SYN — average query time vs database scale
//! (20%..100%) at three recall levels.
//!
//! Following the paper (§VII-D), large databases are split into equal-size
//! sub-databases and the k-ANN search runs on each shard sequentially, so
//! query time scales linearly with the database size.
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig9_scalability
//! ```

use lan_bench::{beam_sweep, bench_lan_config, k_for, sized_spec, Scale};
use lan_core::{harness, InitStrategy, LanIndex, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};

fn main() {
    let scale = Scale::from_env();
    let k = k_for(scale);
    let full = sized_spec(DatasetSpec::syn(), scale).num_graphs;
    let shard_size = full / 5;
    let recalls = [0.9, 0.95, 0.98];

    // Build one index per shard of 20% once; a p% database uses the first
    // p/20 shards (the paper's sequential sub-database evaluation).
    eprintln!(
        "building {} shard indexes of {} graphs each...",
        5, shard_size
    );
    let shards: Vec<LanIndex> = (0..5)
        .map(|i| {
            let spec = DatasetSpec::syn()
                .with_graphs(shard_size)
                .with_seed(DatasetSpec::syn().seed + i as u64);
            let ds = Dataset::generate(sized_spec(spec, scale).with_graphs(shard_size));
            LanIndex::build(ds, bench_lan_config(scale))
        })
        .collect();

    // Pick beam sizes reaching each recall target on a single shard.
    let test_q = shards[0].dataset.split.test.clone();
    let truths = harness::ground_truths(&shards[0], &test_q, k);
    let beams = beam_sweep(scale);
    let curve = harness::recall_qps_curve(
        &shards[0],
        &test_q,
        &truths,
        k,
        &beams,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
    );
    let beam_for = |target: f64| -> usize {
        curve
            .iter()
            .find(|p| p.recall >= target)
            .map(|p| p.param)
            .unwrap_or(*beams.last().unwrap())
    };

    println!("\nFig 9: SYN scalability (avg query time in ms, k = {k})");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "scale", "recall 0.90", "recall 0.95", "recall 0.98"
    );
    for used in 1..=5usize {
        let mut row = format!("{:<8}", format!("{}%", used * 20));
        for &target in &recalls {
            let b = beam_for(target);
            let mut total = std::time::Duration::ZERO;
            let mut queries = 0usize;
            for &qi in test_q.iter() {
                // The query graph comes from shard 0's workload; it is
                // searched against every active shard sequentially.
                let q = shards[0].dataset.queries[qi].clone();
                for shard in &shards[..used] {
                    let out = shard.search_with(
                        &q,
                        k,
                        b,
                        InitStrategy::LanIs,
                        RouteStrategy::LanRoute { use_cg: true },
                        qi as u64,
                    );
                    total += out.total_time;
                }
                queries += 1;
            }
            let ms = total.as_secs_f64() * 1000.0 / queries as f64;
            row.push_str(&format!(" {ms:>12.1}"));
        }
        println!("{row}");
    }
    println!("\n(expected shape: each column grows ~linearly with the scale —");
    println!(" the sequential sub-database protocol of the paper)");
    lan_bench::finish_obs("fig9_scalability", &[]);
}
