//! Benchmark regression sentinel — the CI gate behind the `sentinel` job.
//!
//! ```text
//! sentinel <baseline.json> <fresh.json> [--strict-time] [--inject-ndc <pct>]
//! ```
//!
//! Diffs a fresh bench artifact (`results/BENCH_*.json`) against a
//! committed baseline (`crates/bench/baselines/`), metric by metric, with
//! per-class tolerance bands:
//!
//! * **work metrics** (paths containing `ndc` or `full_evals`) are
//!   lower-better with a 10% band — the searches are deterministic, so a
//!   breach means the code started doing more distance computations;
//! * **quality metrics** (`recall`, `reduction`) are higher-better with a
//!   5% band;
//! * **time metrics** (`wall_s`, `qps`, `speedup`, `_us`, `_s`) are
//!   machine-dependent and skipped unless `--strict-time` widens its 30%
//!   band over them — committed baselines come from a different host;
//! * everything else (sizes, counts of the run configuration) must match
//!   exactly — a drift means the bench no longer runs the same workload.
//!
//! A metric present in only one document is a schema break and fails.
//! `--inject-ndc <pct>` inflates every fresh work metric by `pct`% before
//! diffing — CI's negative test asserts the sentinel exits nonzero at 15%.

use lan_bench::json::{parse, Value};
use std::process::ExitCode;

/// How a metric is judged against its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Class {
    /// Regression when fresh exceeds baseline by more than the band.
    LowerBetter(f64),
    /// Regression when fresh undercuts baseline by more than the band.
    HigherBetter(f64),
    /// Machine-dependent; skipped unless `--strict-time`.
    Time,
    /// Workload configuration — must match exactly.
    Exact,
}

/// Classifies a flattened metric path by its trailing segment.
fn classify(path: &str) -> Class {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    // Thread counts ride with the time class: they describe the host, not
    // the workload, and only matter when timings are being compared too.
    let timey = [
        "wall_s",
        "qps",
        "speedup",
        "build_s",
        "host_threads",
        "lan_threads",
        // Bare time leaves (e.g. a curve point's "us": 431503).
        "us",
        "ms",
        "ns",
    ]
    .contains(&leaf)
        || leaf.ends_with("_us")
        || leaf.ends_with("_ms")
        || leaf.ends_with("_ns")
        || leaf.ends_with("_s")
        // Memory high-water marks describe the host's allocator/page
        // behavior as much as the workload — host-dependent like timings.
        || leaf.contains("peak_rss")
        || leaf.ends_with("_kb")
        // Micro-batch occupancy is a race between arrivals and the batch
        // wait — scheduling-dependent, like a timing.
        || leaf.contains("occupancy");
    if timey {
        Class::Time
    } else if leaf.contains("ndc") || leaf.contains("full_evals") || leaf.contains("dropped") {
        Class::LowerBetter(0.10)
    } else if leaf.contains("recall") || leaf.contains("reduction") {
        Class::HigherBetter(0.05)
    } else {
        Class::Exact
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("sentinel: FAIL: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Value, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&doc).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut strict_time = false;
    let mut inject_ndc: f64 = 0.0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict-time" => strict_time = true,
            "--inject-ndc" => {
                let Some(pct) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--inject-ndc needs a numeric percentage");
                };
                inject_ndc = pct;
            }
            p => paths.push(p),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return fail(
            "usage: sentinel <baseline.json> <fresh.json> [--strict-time] [--inject-ndc <pct>]",
        );
    };

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };

    let base_metrics = baseline.flatten_numbers();
    let mut fresh_metrics = fresh.flatten_numbers();
    if inject_ndc != 0.0 {
        eprintln!("sentinel: injecting +{inject_ndc}% into work metrics (negative test)");
        for (path, v) in fresh_metrics.iter_mut() {
            if matches!(classify(path), Class::LowerBetter(_)) {
                *v *= 1.0 + inject_ndc / 100.0;
            }
        }
    }

    let mut regressions = 0usize;
    let mut checked = 0usize;
    let mut skipped = 0usize;

    for (path, base) in &base_metrics {
        let Some(&(_, fresh_v)) = fresh_metrics.iter().find(|(p, _)| p == path) else {
            eprintln!("sentinel: REGRESSION {path}: present in baseline, missing in fresh");
            regressions += 1;
            continue;
        };
        let class = classify(path);
        let (verdict, band) = match class {
            Class::Time if !strict_time => {
                skipped += 1;
                continue;
            }
            Class::Time => (fresh_v < base * (1.0 - 0.30), 0.30),
            Class::LowerBetter(band) => (fresh_v > base * (1.0 + band), band),
            Class::HigherBetter(band) => (fresh_v < base * (1.0 - band), band),
            Class::Exact => ((fresh_v - base).abs() > 1e-9, 0.0),
        };
        checked += 1;
        if verdict {
            eprintln!(
                "sentinel: REGRESSION {path}: baseline {base}, fresh {fresh_v} \
                 ({class:?}, band {:.0}%)",
                band * 100.0
            );
            regressions += 1;
        }
    }
    for (path, _) in &fresh_metrics {
        if !base_metrics.iter().any(|(p, _)| p == path) {
            eprintln!("sentinel: REGRESSION {path}: present in fresh, missing in baseline");
            regressions += 1;
        }
    }

    eprintln!(
        "sentinel: {checked} metrics checked, {skipped} time metrics skipped, \
         {regressions} regressions ({baseline_path} vs {fresh_path})"
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        eprintln!("sentinel: OK");
        ExitCode::SUCCESS
    }
}
