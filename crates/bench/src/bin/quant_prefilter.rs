//! Quantized-embedding prefilter tier above the GED cascade, written to
//! `results/BENCH_quant.json`.
//!
//! Two workloads, each over an index whose code books (binary sign codes
//! and scalar u8 codes over the GIN embeddings) are built once at index
//! time:
//!
//! 1. `ground_truth` — the admissible filter-verify scan
//!    (`Dataset::ground_truth_knn`) with candidates visited in calibrated
//!    quantized order, on a small exact-GED workload, against a frozen
//!    replica of the scan exactly as PR-5 shipped it. Results must be
//!    bit-identical (the skip decisions come only from the admissible
//!    cascade, never the visit order); the acceptance gate asserts the
//!    quantized-ordered scan cuts `ged.full_evals` a further ≥ 1.3x over
//!    the PR-5 scan. The bench also reports the current *plain* scan so
//!    the saving is attributable: investigating this tier established
//!    that visit order alone moves essentially nothing here — under a
//!    non-aborting metric (Hungarian, BestOfThree) the ascending-lb order
//!    is provably optimal over visit orders (every candidate whose
//!    signature bound clears the final threshold must be solved in any
//!    order, and the lb order solves nothing else), and under the
//!    tau-aborting exact solver even the oracle ascending-true-distance
//!    order measures at cost parity, because the threshold converges
//!    during the mandatory ungated warm-up chunks. The savings instead
//!    come from the threshold-boundary refinement that same investigation
//!    produced: `lb == t` candidates are re-resolved with a nudged
//!    threshold (`ged_within` at `t + 1`) instead of an unbounded solve,
//!    so boundary aborts stay aborts instead of paying a full A\* run.
//!
//! 2. `routing` — the full LAN query path with the non-admissible
//!    quantized prefilter consulted ahead of `distance_within`, swept over
//!    `margin` for both modes. Each sweep point records tie-aware recall,
//!    total NDC, and the `quant.prefilter.*` counters; the acceptance gate
//!    asserts some sweep point holds recall ≥ 0.98 at strictly lower NDC
//!    than the tier-off baseline, and that the shipped default
//!    (`scalar:1.5`) stays at recall ≥ 0.98.
//!
//! The SIMD kernel path actually taken (`popcnt`/AVX2 vs scalar fallback)
//! is recorded alongside the `quant.kernel.*` call counters.
//!
//! ```text
//! cargo run --release -p lan-bench --bin quant_prefilter [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the run to CI size; every equivalence assertion and
//! acceptance gate runs in both modes. This binary intentionally does not
//! write `BENCH_obs.json` (that artifact belongs to the `throughput` run
//! checked by `obs_check`).

use lan_core::{InitStrategy, LanConfig, LanIndex, QuantConfig, QuantMode, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_obs::names;
use lan_pg::PgConfig;
use std::time::Instant;

/// Full GED solver runs since `before`, per the engine's own counter.
fn full_evals(before: &lan_obs::Snapshot) -> usize {
    lan_obs::snapshot()
        .diff(before)
        .counter(names::GED_FULL_EVALS) as usize
}

/// The ground-truth scan exactly as PR-5 shipped it — the baseline the
/// acceptance gate measures against. Ascending-lb visit order, chunks of
/// 8 with a frozen threshold, and a full *unbounded* re-solve of every
/// boundary (`lb == t`) candidate — the behavior the current scan's
/// nudged-threshold boundary refinement replaces. Kept as a frozen
/// replica so the comparison survives future changes to the library scan;
/// the bench asserts its results are identical to both current paths.
fn pr5_scan(ds: &Dataset, q: &lan_graph::Graph, k: usize) -> Vec<(f64, u32)> {
    const CHUNK: usize = 8;
    let n = ds.graphs.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let keys: Vec<f64> = ds
        .graphs
        .iter()
        .map(|g| {
            lan_ged::lower_bounds::label_size_lb(q, g)
                .max(lan_ged::lower_bounds::label_degree_lb(q, g))
        })
        .collect();
    order.sort_by(|&a, &b| {
        keys[a as usize]
            .total_cmp(&keys[b as usize])
            .then(a.cmp(&b))
    });
    let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + CHUNK);
    for chunk_ids in order.chunks(CHUNK) {
        let t = if best.len() >= k {
            best[k - 1].0
        } else {
            f64::INFINITY
        };
        for &i in chunk_ids {
            if t.is_finite() {
                match ds.distance_within(q, i, t) {
                    lan_ged::GedBound::Exact(d) => best.push((d, i)),
                    lan_ged::GedBound::AtLeast(lb) if lb > t => {}
                    lan_ged::GedBound::AtLeast(_) => best.push((ds.distance(q, i), i)),
                }
            } else {
                best.push((ds.distance(q, i), i));
            }
        }
        best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        best.truncate(k);
    }
    best
}

fn mode_name(mode: QuantMode) -> &'static str {
    match mode {
        QuantMode::Off => "off",
        QuantMode::Binary => "binary",
        QuantMode::Scalar => "scalar",
    }
}

/// One margin-sweep point of the routing workload.
struct SweepPoint {
    mode: QuantMode,
    margin: f64,
    recall: f64,
    total_ndc: usize,
    prefilter_evals: u64,
    prefilter_pruned: u64,
    wall_us: f64,
}

/// Runs the routing workload at the index's current quant config.
fn run_routing(
    index: &LanIndex,
    query_idx: &[usize],
    truth_kth: &[f64],
    k: usize,
    b: usize,
) -> SweepPoint {
    let before = lan_obs::snapshot();
    let t0 = Instant::now();
    let mut total_ndc = 0usize;
    let mut recall_sum = 0.0f64;
    for (&qi, &kth) in query_idx.iter().zip(truth_kth) {
        let out = index.search_with(
            &index.dataset.queries[qi],
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            qi as u64,
        );
        total_ndc += out.ndc;
        recall_sum += lan_datasets::recall_at_k_ties(&out.results, kth, k);
    }
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;
    let delta = lan_obs::snapshot().diff(&before);
    SweepPoint {
        mode: index.cfg.quant.mode,
        margin: index.cfg.quant.margin,
        recall: recall_sum / query_idx.len() as f64,
        total_ndc,
        prefilter_evals: delta.counter(names::QUANT_PREFILTER_EVALS),
        prefilter_pruned: delta.counter(names::QUANT_PREFILTER_PRUNED),
        wall_us,
    }
}

/// Builds a bench index: PG + models + quantized code books, tier off
/// (each workload sets its own programmatic QuantConfig — no `LAN_QUANT`
/// races).
fn build_index(spec: DatasetSpec) -> LanIndex {
    let cfg = LanConfig {
        pg: PgConfig::new(6),
        model: ModelConfig {
            embed_dim: 32,
            epochs: 3,
            max_samples_per_epoch: 400,
            nh_cover_k: 16,
            clusters: 4,
            top_clusters: 2,
            mlp_hidden: 16,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: QuantConfig {
            mode: QuantMode::Off,
            margin: 1.5,
        },
    };
    eprintln!(
        "generating {} graphs / {} queries ({:?})...",
        spec.num_graphs, spec.num_queries, spec.metric
    );
    let ds = Dataset::generate(spec);
    eprintln!("building index (PG + models + quantized code books)...");
    let t0 = Instant::now();
    let index = LanIndex::build(ds, cfg);
    eprintln!("index ready in {:.1}s", t0.elapsed().as_secs_f64());
    assert!(
        index.models.quant.is_some(),
        "quantized code books must build at index time"
    );
    index
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    lan_obs::set_enabled(true);

    // --- 1. Ground truth: PR-5 scan vs current scans. ---
    // A small workload scanned under *exact* GED (the tau-aborting
    // solver, where the boundary refinement converts unbounded re-solves
    // into cheap aborts; see the module docs for the attribution).
    // `avg_nodes = 7` keeps every ungated exact solve far below the
    // timeout, so the scans stay deterministic.
    //
    // The index itself (embeddings, code books, calibration) is built
    // under the cheap Hungarian metric — the code books only order the
    // visit sequence, and Hungarian GED is a tight upper bound on exact
    // GED — and the scans run on a metric-flipped clone of the dataset.
    let (gt_graphs, gt_queries, gt_used) = if smoke { (120, 12, 10) } else { (240, 24, 16) };
    let mut gt_spec = DatasetSpec::syn()
        .with_graphs(gt_graphs)
        .with_queries(gt_queries)
        .with_metric(lan_ged::GedMethod::Hungarian);
    gt_spec.avg_nodes = 7;
    let mut gt_index = build_index(gt_spec);
    let mut ds_exact = gt_index.dataset.clone();
    ds_exact.spec.metric = lan_ged::GedMethod::Exact { timeout_ms: 5_000 };
    let gt_idx: Vec<usize> = (0..gt_used).collect();
    let gt_k = 10usize;

    let before = lan_obs::snapshot();
    let t0 = Instant::now();
    let pr5: Vec<Vec<(f64, u32)>> = gt_idx
        .iter()
        .map(|&qi| pr5_scan(&ds_exact, &ds_exact.queries[qi], gt_k))
        .collect();
    let gt_pr5_us = t0.elapsed().as_secs_f64() * 1e6;
    let gt_pr5_full = full_evals(&before);

    let before = lan_obs::snapshot();
    let t0 = Instant::now();
    let plain: Vec<Vec<(f64, u32)>> = gt_idx
        .iter()
        .map(|&qi| ds_exact.ground_truth_knn(&ds_exact.queries[qi], gt_k))
        .collect();
    let gt_plain_us = t0.elapsed().as_secs_f64() * 1e6;
    let gt_plain_full = full_evals(&before);
    assert_eq!(pr5, plain, "current plain scan diverged from the PR-5 scan");
    let plain_ratio = gt_pr5_full as f64 / gt_plain_full.max(1) as f64;
    eprintln!(
        "ground_truth   pr5 {gt_pr5_full:>6} full evals ({gt_pr5_us:>9.0}us)  \
         plain  {gt_plain_full:>6} ({gt_plain_us:>9.0}us)  reduction {plain_ratio:.2}x"
    );

    let mut gt_mode_json = Vec::new();
    let mut gt_best_ratio = 0.0f64;
    for mode in [QuantMode::Binary, QuantMode::Scalar] {
        gt_index.cfg.quant = QuantConfig { mode, margin: 1.5 };
        let before = lan_obs::snapshot();
        let t0 = Instant::now();
        let ordered: Vec<Vec<(f64, u32)>> = gt_idx
            .iter()
            .map(|&qi| {
                let q = &ds_exact.queries[qi];
                let keys = gt_index.quant_keys(q).expect("quantized keys must exist");
                ds_exact.ground_truth_knn_ordered(q, gt_k, Some(&keys))
            })
            .collect();
        let us = t0.elapsed().as_secs_f64() * 1e6;
        let full = full_evals(&before);
        assert_eq!(
            pr5, ordered,
            "{:?}-ordered ground truth diverged from the PR-5 scan",
            mode
        );
        let ratio = gt_pr5_full as f64 / full.max(1) as f64;
        gt_best_ratio = gt_best_ratio.max(ratio);
        eprintln!(
            "ground_truth   pr5 {gt_pr5_full:>6} full evals ({gt_pr5_us:>9.0}us)  \
             {:<6} {full:>6} ({us:>9.0}us)  further reduction {ratio:.2}x",
            mode_name(mode)
        );
        gt_mode_json.push(format!(
            "\"{}\": {{\"full_evals\": {full}, \"further_reduction\": {ratio:.3}, \"us\": {us:.0}}}",
            mode_name(mode)
        ));
    }

    // --- 2. Routing: tier-off baseline vs margin sweep per mode, on the
    //        production-shaped Hungarian workload. ---
    let (graphs, queries, used) = if smoke { (160, 16, 12) } else { (400, 40, 30) };
    let mut index = build_index(
        DatasetSpec::syn()
            .with_graphs(graphs)
            .with_queries(queries)
            .with_metric(lan_ged::GedMethod::Hungarian),
    );
    let query_idx: Vec<usize> = (0..used).collect();
    let (k, b) = (5usize, 20usize);
    let truth_kth: Vec<f64> = query_idx
        .iter()
        .map(|&qi| {
            index
                .dataset
                .ground_truth_knn(&index.dataset.queries[qi], k)
                .last()
                .map(|&(d, _)| d)
                .unwrap_or(f64::INFINITY)
        })
        .collect();
    index.cfg.quant = QuantConfig {
        mode: QuantMode::Off,
        margin: 1.5,
    };
    let baseline = run_routing(&index, &query_idx, &truth_kth, k, b);
    eprintln!(
        "routing        off             recall {:.3}  total NDC {:>6}",
        baseline.recall, baseline.total_ndc
    );

    let mut points = Vec::new();
    for mode in [QuantMode::Binary, QuantMode::Scalar] {
        for margin in [1.0f64, 1.05, 1.1, 1.15, 1.25, 1.5, 2.0] {
            index.cfg.quant = QuantConfig { mode, margin };
            let p = run_routing(&index, &query_idx, &truth_kth, k, b);
            eprintln!(
                "routing        {:<6} m={margin:<4} recall {:.3}  total NDC {:>6}  \
                 prefilter {:>5} evals / {:>5} pruned",
                mode_name(mode),
                p.recall,
                p.total_ndc,
                p.prefilter_evals,
                p.prefilter_pruned
            );
            points.push(p);
        }
    }

    // --- Acceptance gates. ---
    assert!(
        gt_best_ratio >= 1.3,
        "quantized-ordered scan cut full evals only {gt_best_ratio:.2}x \
         (acceptance floor: a further 1.3x over the PR-5 scan)"
    );
    let op = points
        .iter()
        .filter(|p| p.recall >= 0.98 && p.total_ndc < baseline.total_ndc)
        .min_by_key(|p| p.total_ndc)
        .expect("no sweep point held recall >= 0.98 at lower NDC than the tier-off baseline");
    eprintln!(
        "operating point: {} m={} recall {:.3} NDC {} (baseline {})",
        mode_name(op.mode),
        op.margin,
        op.recall,
        op.total_ndc,
        baseline.total_ndc
    );
    let default_pt = points
        .iter()
        .find(|p| p.mode == QuantMode::Scalar && p.margin == 1.5)
        .expect("default operating point missing from the sweep");
    assert!(
        default_pt.recall >= 0.98,
        "shipped default (scalar:1.5) recall {:.3} below 0.98",
        default_pt.recall
    );

    let kernel_simd = lan_obs::counter(names::QUANT_KERNEL_SIMD).get();
    let kernel_scalar = lan_obs::counter(names::QUANT_KERNEL_SCALAR).get();
    let kernel_path = match lan_tensor::kernel_path() {
        lan_tensor::KernelPath::Simd => "simd",
        lan_tensor::KernelPath::Scalar => "scalar",
    };
    eprintln!(
        "kernel path {kernel_path} (quant.kernel.simd {kernel_simd}, quant.kernel.scalar {kernel_scalar})"
    );

    std::fs::create_dir_all("results").expect("create results/");
    let curves: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"mode\": \"{}\", \"margin\": {}, \"recall\": {:.4}, \"total_ndc\": {}, \
                 \"prefilter_evals\": {}, \"prefilter_pruned\": {}, \"us\": {:.0}}}",
                mode_name(p.mode),
                p.margin,
                p.recall,
                p.total_ndc,
                p.prefilter_evals,
                p.prefilter_pruned,
                p.wall_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"quant_prefilter\",\n{}  \"smoke\": {smoke},\n  \"equivalence\": \"ok\",\n  \"kernel_path\": \"{kernel_path}\",\n  \"kernel_calls\": {{\"simd\": {kernel_simd}, \"scalar\": {kernel_scalar}}},\n  \"ground_truth\": {{\"graphs\": {}, \"queries\": {}, \"k\": {gt_k}, \"pr5_full_evals\": {gt_pr5_full}, \"plain_full_evals\": {gt_plain_full}, \"plain_reduction\": {plain_ratio:.3}, {}, \"best_further_reduction\": {gt_best_ratio:.3}}},\n  \"routing\": {{\n    \"graphs\": {}, \"queries\": {}, \"k\": {k}, \"b\": {b},\n    \"baseline\": {{\"recall\": {:.4}, \"total_ndc\": {}}},\n    \"operating_point\": {{\"mode\": \"{}\", \"margin\": {}, \"recall\": {:.4}, \"total_ndc\": {}}},\n    \"curves\": [\n{}\n    ]\n  }}\n}}\n",
        lan_bench::host_header_json(),
        gt_index.dataset.graphs.len(),
        gt_idx.len(),
        gt_mode_json.join(", "),
        index.dataset.graphs.len(),
        query_idx.len(),
        baseline.recall,
        baseline.total_ndc,
        mode_name(op.mode),
        op.margin,
        op.recall,
        op.total_ndc,
        curves.join(",\n"),
    );
    std::fs::write("results/BENCH_quant.json", &json).expect("write results/BENCH_quant.json");
    eprintln!("wrote results/BENCH_quant.json");
}
