//! Table I: statistics of the (synthetic stand-in) datasets.
//!
//! ```text
//! cargo run --release -p lan-bench --bin table1_stats
//! ```

use lan_bench::{sized_spec, Scale};
use lan_datasets::{Dataset, DatasetSpec};

fn main() {
    let scale = Scale::from_env();
    println!("Table I: statistics of datasets (paper targets in parentheses)");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>9}",
        "Dataset", "#graphs", "avg |V|", "avg |E|", "#nlabel"
    );
    let paper = [
        ("AIDS", 42_687, 25.6, 27.5, 51),
        ("LINUX", 47_239, 35.5, 37.7, 36),
        ("PUBCHEM", 22_794, 48.2, 50.8, 10),
        ("SYN", 1_000_000, 10.1, 15.9, 5),
    ];
    for (spec, (pname, pg, pv, pe, pl)) in DatasetSpec::all().into_iter().zip(paper) {
        assert_eq!(spec.name, pname);
        let ds = Dataset::generate(sized_spec(spec, scale));
        println!(
            "{:<10} {:>8} {:>6.1} ({:>5.1}) {:>6.1} ({:>5.1}) {:>3} ({:>2})",
            ds.spec.name,
            ds.graphs.len(),
            ds.avg_nodes(),
            pv,
            ds.avg_edges(),
            pe,
            ds.distinct_labels(),
            pl
        );
        let _ = pg;
    }
    println!("\n(paper sizes: AIDS 42,687 / LINUX 47,239 / PUBCHEM 22,794 / SYN 1,000,000;");
    println!(" this reproduction scales #graphs down, preserving the per-graph statistics)");
    lan_bench::finish_obs("table1_stats", &[]);
}
