//! Persistent-store cold-start benchmark, written to
//! `results/BENCH_persist.json`.
//!
//! Measures the point of the on-disk index store: a process that `open`s
//! a saved index answers queries after milliseconds of IO instead of the
//! minutes of GED computations and model training a rebuild costs. The
//! run builds an index, saves it, reopens it, and
//!
//! * asserts **bit-identity** — the loaded index answers a probe workload
//!   (both routers, several seeds) with exactly the same `(distance, id)`
//!   results and NDC as the index that built it;
//! * records the **cold-start ratio** `build_wall_s / load_wall_s` and
//!   gates it: ≥ 50x at the 10k-graph tier (the acceptance criterion),
//!   ≥ 10x at smoke size.
//!
//! ```text
//! cargo run --release -p lan-bench --bin persist [-- --smoke]
//! cargo run --release -p lan-bench --bin persist -- --smoke --save  /tmp/idx.lan
//! cargo run --release -p lan-bench --bin persist -- --smoke --check /tmp/idx.lan
//! ```
//!
//! The `--save`/`--check` pair splits the run across two *processes* for
//! the CI `persist-smoke` job: `--save` builds, probes, saves the store
//! file plus a `<path>.digest` of the probe answers; `--check` starts
//! cold, opens the file, re-runs the probe workload, and exits nonzero
//! unless every digest matches — a cross-process replay of the
//! bit-identity contract (no build-state can leak into the loaded run).

use lan_bench::{build_index_exact, sized_spec, Scale};
use lan_core::{InitStrategy, LanIndex, RouteStrategy};
use lan_datasets::DatasetSpec;
use std::process::ExitCode;
use std::time::Instant;

/// Probe workload: every strategy pair the store must replay identically.
const STRATEGIES: [(InitStrategy, RouteStrategy, &str); 3] = [
    (
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
        "lan",
    ),
    (
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: false },
        "lan_nocg",
    ),
    (InitStrategy::HnswIs, RouteStrategy::HnswRoute, "hnsw"),
];

/// FNV-1a64 over a query outcome: distance bit patterns, ids, and NDC.
/// Bit-exact equality of outcomes <=> equal digests.
fn digest(results: &[(f64, u32)], ndc: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |b: u64| {
        for i in 0..8 {
            h ^= (b >> (8 * i)) & 0xff;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for &(d, id) in results {
        mix(d.to_bits());
        mix(id as u64);
    }
    mix(ndc as u64);
    h
}

/// Runs the probe workload, one digest per (strategy, query, seed).
fn probe(index: &LanIndex, queries: usize) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let nq = index.dataset.queries.len().min(queries);
    for (init, route, tag) in STRATEGIES {
        for qi in 0..nq {
            let q = index.dataset.queries[qi].clone();
            for seed in [0u64, 7] {
                let o = index.search_with(&q, 5, 8, init, route, seed);
                out.push((format!("{tag}.q{qi}.s{seed}"), digest(&o.results, o.ndc)));
            }
        }
    }
    out
}

fn spec_for(smoke: bool) -> (DatasetSpec, usize) {
    if smoke {
        let spec = sized_spec(DatasetSpec::syn(), Scale::Small);
        (spec, 4)
    } else {
        // The acceptance tier: 10k SYN graphs — the scale the ROADMAP's
        // every-run-rebuilds-the-world bottleneck caps today.
        (DatasetSpec::syn().with_graphs(10_000).with_queries(40), 6)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).cloned().expect("flag needs a path"))
    };
    let (spec, probe_queries) = spec_for(smoke);

    // --check: the cold process. Nothing is built; open + probe + compare.
    if let Some(path) = path_after("--check") {
        let t0 = Instant::now();
        let index = match LanIndex::open(path.as_ref()) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("persist: FAIL: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let load_s = t0.elapsed().as_secs_f64();
        let fresh = probe(&index, probe_queries);
        let expected = std::fs::read_to_string(format!("{path}.digest"))
            .expect("read digest file written by --save");
        let mut bad = 0usize;
        let mut lines = expected.lines();
        for (key, d) in &fresh {
            match lines.next() {
                Some(l) if l == format!("{key} {d:016x}") => {}
                Some(l) => {
                    eprintln!("persist: MISMATCH {key}: saved run '{l}', cold run {d:016x}");
                    bad += 1;
                }
                None => {
                    eprintln!("persist: MISMATCH {key}: missing from saved digest");
                    bad += 1;
                }
            }
        }
        eprintln!(
            "persist: cold process loaded {} graphs in {load_s:.4}s, \
             {} probes checked, {bad} mismatches",
            index.dataset.graphs.len(),
            fresh.len()
        );
        if bad > 0 {
            return ExitCode::FAILURE;
        }
        eprintln!("persist: OK (cold process bit-identical)");
        return ExitCode::SUCCESS;
    }

    // Build (the cost the store amortizes away) — build_index_exact
    // bypasses the LAN_STORE cache and the scale's database re-sizing:
    // the whole point is measuring a real rebuild at this exact tier.
    let scale = Scale::from_env();
    let t0 = Instant::now();
    let index = build_index_exact(spec, scale);
    let build_s = t0.elapsed().as_secs_f64();
    let digests = probe(&index, probe_queries);

    // --save: persist store + digests for a later --check process.
    if let Some(path) = path_after("--save") {
        let bytes = index.save(path.as_ref()).expect("save index");
        let body: String = digests
            .iter()
            .map(|(k, d)| format!("{k} {d:016x}\n"))
            .collect();
        std::fs::write(format!("{path}.digest"), body).expect("write digest");
        eprintln!(
            "persist: saved {bytes} bytes to {path} (+ {} probe digests)",
            digests.len()
        );
        return ExitCode::SUCCESS;
    }

    // In-process benchmark: save, reopen, compare, gate, report.
    let store_path =
        std::env::temp_dir().join(format!("lan_persist_bench_{}.lan", std::process::id()));
    let t1 = Instant::now();
    let bytes = index.save(&store_path).expect("save index");
    let save_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let loaded = LanIndex::open(&store_path).expect("open index");
    let load_s = t2.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&store_path);

    let fresh = probe(&loaded, probe_queries);
    let mismatches = digests.iter().zip(&fresh).filter(|(a, b)| a != b).count();
    assert_eq!(
        mismatches, 0,
        "loaded index diverged from the build on {mismatches} probes"
    );

    let speedup = build_s / load_s.max(1e-9);
    let tier = if smoke { "smoke" } else { "10k" };
    let gate = if smoke { 10.0 } else { 50.0 };
    eprintln!(
        "persist: tier={tier} graphs={} build={build_s:.2}s save={save_s:.3}s \
         load={load_s:.4}s bytes={bytes} cold-start speedup={speedup:.0}x (gate {gate:.0}x)",
        loaded.dataset.graphs.len()
    );
    assert!(
        speedup >= gate,
        "cold-start load is only {speedup:.1}x faster than rebuild (gate {gate:.0}x)"
    );

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\n  \"bench\": \"persist\",\n{}  \"tier\": \"{tier}\",\n  \"graphs\": {},\n  \
         \"probes\": {},\n  \"store_bytes\": {bytes},\n  \"build_wall_s\": {build_s:.3},\n  \
         \"save_wall_s\": {save_s:.4},\n  \"load_wall_s\": {load_s:.5},\n  \
         \"cold_start_speedup\": {speedup:.1},\n  \"identity_mismatches\": {mismatches}\n}}\n",
        lan_bench::host_header_json(),
        loaded.dataset.graphs.len(),
        fresh.len(),
    );
    std::fs::write("results/BENCH_persist.json", &json).expect("write results/BENCH_persist.json");
    eprintln!("wrote results/BENCH_persist.json");
    ExitCode::SUCCESS
}
