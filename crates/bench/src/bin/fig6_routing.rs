//! Fig. 6: routing with neighbor pruning — LAN_Route vs HNSW_Route, both
//! using HNSW_IS for initial selection (isolating the routing effect).
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig6_routing
//! ```
//!
//! Paper shape: LAN_Route ~2.5–5.5× the QPS of HNSW_Route at recall 0.95.

use lan_bench::{all_specs, beam_sweep, build_index, k_for, print_curve, Scale};
use lan_core::{harness, qps_at_recall, InitStrategy, RouteStrategy};

fn main() {
    let scale = Scale::from_env();
    let k = k_for(scale);
    let beams = beam_sweep(scale);

    for spec in all_specs() {
        let name = spec.name;
        let index = build_index(spec, scale);
        let test_q = index.dataset.split.test.clone();
        let truths = harness::ground_truths(&index, &test_q, k);

        println!("\n=== Fig 6 ({name}): routing comparison (HNSW_IS fixed) ===");
        let lan_route = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::HnswIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        print_curve("LAN_Route", &lan_route);
        let hnsw_route = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::HnswIs,
            RouteStrategy::HnswRoute,
        );
        print_curve("HNSW_Route", &hnsw_route);

        for target in [0.9, 0.95] {
            if let (Some(a), Some(h)) = (
                qps_at_recall(&lan_route, target),
                qps_at_recall(&hnsw_route, target),
            ) {
                println!(
                    "[{name}] @recall={target}: LAN_Route/HNSW_Route = {:.1}x",
                    a / h
                );
            }
        }
        // NDC view (the paper's mechanism): average NDC at the largest beam.
        let (l, h) = (lan_route.last().unwrap(), hnsw_route.last().unwrap());
        println!(
            "[{name}] NDC at b={}: LAN_Route {:.1} vs HNSW_Route {:.1}",
            l.param, l.avg_ndc, h.avg_ndc
        );
    }
    lan_bench::finish_obs("fig6_routing", &[]);
}
