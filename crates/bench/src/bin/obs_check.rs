//! Schema check for the exported observability artifacts — the CI gate
//! behind the `obs-smoke` job.
//!
//! ```text
//! obs_check <BENCH_obs.json> [trace.jsonl] [explain.jsonl]
//! ```
//!
//! Verifies that the metrics snapshot contains every counter the query
//! path is instrumented with, that the exported `ged.calls` equals the
//! bench's independently summed `total_ndc` (the NDC-equals-cache-misses
//! invariant end to end), and — when a trace file is given — that it is
//! non-empty, line-delimited JSON with the expected hop fields. When an
//! EXPLAIN file is given, every line must be a complete plan whose tier
//! attribution reconciles exactly: `lb_prunes + tau_aborts + full_solves
//! == ndc`. Exits non-zero on the first violation.

use std::process::ExitCode;

/// Counters every instrumented bench run must have exported.
const REQUIRED_COUNTERS: &[&str] = &[
    "ged.calls",
    "ged.cache.hit",
    "ged.cache.miss",
    "route.hops",
    "route.batches_opened",
    "gnn.forward_calls",
    "gnn.infer.forwards",
    "gnn.infer.cache.hit",
    "gnn.infer.cache.miss",
    "query.count",
    // The quantized prefilter tier's family registers at QuantStore
    // build time, so every bench that builds an index must export it
    // (zeros when the tier is off — presence is the schema contract).
    "quant.prefilter.evals",
    "quant.prefilter.pruned",
    "quant.reorder.used",
    "quant.kernel.simd",
    "quant.kernel.scalar",
    // The EXPLAIN / profiler / trace families register at LanIndex build
    // time; zeros when the switches are off — presence is the contract.
    "explain.queries",
    "explain.dropped",
    "profile.spans",
    "trace.dropped",
    // Peak-RSS gauge, sampled at phase boundaries (`lan_obs::mem`). Zero
    // on non-Linux hosts — presence is the schema contract there too.
    "mem.peak_rss_kb",
];

/// Finds `"key": <number>` in a JSON document and parses the number.
/// A tiny scanner, not a JSON parser — the documents are machine-written
/// by `lan-obs`'s exporter with exactly this shape.
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(obs_path) = args.first() else {
        return fail("usage: obs_check <BENCH_obs.json> [trace.jsonl]");
    };
    let doc = match std::fs::read_to_string(obs_path) {
        Ok(d) => d,
        Err(e) => return fail(&format!("cannot read {obs_path}: {e}")),
    };

    for key in REQUIRED_COUNTERS {
        if json_u64(&doc, key).is_none() {
            return fail(&format!("{obs_path} is missing required counter {key:?}"));
        }
    }

    let ged_calls = json_u64(&doc, "ged.calls").unwrap();
    match json_u64(&doc, "total_ndc") {
        Some(total_ndc) if total_ndc != ged_calls => {
            return fail(&format!(
                "ged.calls ({ged_calls}) != bench-reported total_ndc ({total_ndc})"
            ));
        }
        Some(total_ndc) => {
            eprintln!("obs_check: ged.calls == total_ndc == {total_ndc}");
        }
        None => eprintln!("obs_check: no total_ndc in {obs_path}; skipping NDC cross-check"),
    }
    if json_u64(&doc, "query.count") == Some(0) {
        return fail("query.count is 0 — the bench ran no queries");
    }
    if cfg!(target_os = "linux") && json_u64(&doc, "mem.peak_rss_kb") == Some(0) {
        return fail("mem.peak_rss_kb is 0 on Linux — the peak-RSS probe never sampled");
    }

    if let Some(trace_path) = args.get(1) {
        let trace = match std::fs::read_to_string(trace_path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {trace_path}: {e}")),
        };
        let mut hops = 0usize;
        for (i, line) in trace.lines().enumerate() {
            if !(line.starts_with('{') && line.ends_with('}')) {
                return fail(&format!("{trace_path}:{}: not a JSON object", i + 1));
            }
            if line.contains("\"ev\":\"hop\"") {
                for field in ["\"q\":", "\"hop\":", "\"node\":", "\"d\":", "\"gamma\":"] {
                    if !line.contains(field) {
                        return fail(&format!(
                            "{trace_path}:{}: hop event missing {field}",
                            i + 1
                        ));
                    }
                }
                hops += 1;
            }
        }
        if hops == 0 {
            return fail(&format!("{trace_path} contains no hop events"));
        }
        eprintln!("obs_check: {hops} hop events OK in {trace_path}");
    }

    if let Some(explain_path) = args.get(2) {
        let plans = match std::fs::read_to_string(explain_path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {explain_path}: {e}")),
        };
        let mut n = 0usize;
        for (i, line) in plans.lines().enumerate() {
            if !(line.starts_with('{') && line.ends_with('}')) {
                return fail(&format!("{explain_path}:{}: not a JSON object", i + 1));
            }
            for field in [
                "\"q\":",
                "\"k\":",
                "\"b\":",
                "\"init\":",
                "\"route\":",
                "\"term\":",
                "\"ns\":",
                "\"ndc\":",
                "\"cache_hits\":",
                "\"hops\":",
                "\"tiers\":",
                "\"budget\":",
                "\"timeline\":",
                "\"shards\":",
            ] {
                if !line.contains(field) {
                    return fail(&format!(
                        "{explain_path}:{}: EXPLAIN plan missing {field}",
                        i + 1
                    ));
                }
            }
            // Tier reconciliation per plan. The scanner reads the *first*
            // occurrence of each key, which is the top-level (merged) plan
            // — "tiers" precedes the nested "shards" sub-plans by schema.
            let ndc = json_u64(line, "ndc");
            let lb = json_u64(line, "lb_prunes");
            let tau = json_u64(line, "tau_aborts");
            let full = json_u64(line, "full_solves");
            match (ndc, lb, tau, full) {
                (Some(ndc), Some(lb), Some(tau), Some(full)) => {
                    if lb + tau + full != ndc {
                        return fail(&format!(
                            "{explain_path}:{}: tier attribution {lb}+{tau}+{full} != ndc {ndc}",
                            i + 1
                        ));
                    }
                }
                _ => {
                    return fail(&format!(
                        "{explain_path}:{}: plan missing ndc/tier counts",
                        i + 1
                    ))
                }
            }
            n += 1;
        }
        if n == 0 {
            return fail(&format!("{explain_path} contains no EXPLAIN plans"));
        }
        let emitted = json_u64(&doc, "explain.queries").unwrap_or(0);
        if emitted == 0 {
            return fail("explain.queries is 0 but an EXPLAIN file was produced");
        }
        eprintln!("obs_check: {n} EXPLAIN plans reconcile in {explain_path}");
    }

    eprintln!("obs_check: OK");
    ExitCode::SUCCESS
}
