//! Threshold-gated GED kernel cascade vs the ungated metric, written to
//! `results/BENCH_ged.json`.
//!
//! Two production workloads, each run twice over the same dataset — once
//! with the plain oracle (every routing probe is a full GED solve) and
//! once with the cascade oracle (`Dataset::distance_within`, which may
//! answer a probe from the precomputed graph signatures):
//!
//! 1. `routing` — HNSW entry descent + Algorithm 1 beam search per test
//!    query, the paper's query path;
//! 2. `ground_truth` — brute-force k-NN scans (recall ground truth),
//!    where the chunked cascade freezes the running k-th distance as the
//!    pruning threshold.
//!
//! Both sides must return bit-identical results with identical NDC (the
//! cascade is NDC-invisible by construction — a gated answer still counts
//! as a distance computation); the win is measured purely in
//! `ged.full_evals`, the number of full solver runs. The acceptance gate
//! asserts the cascade cuts full evaluations by at least 2x at equal
//! results (hence equal recall).
//!
//! The JSON also carries a `cascade_counters` block — the end-of-run
//! registry totals for the full stacked cascade, cheapest tier first
//! (quantized prefilter → admissible lower bounds → tau-aborted solves →
//! full solves), in the same shape as `BENCH_quant.json` reports them.
//!
//! ```text
//! cargo run --release -p lan-bench --bin ged_kernels [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the run to CI size; the equivalence assertions and
//! the 2x gate run in both modes.

use lan_datasets::{Dataset, DatasetSpec};
use lan_ged::{GedBound, GedMethod};
use lan_graph::Graph;
use lan_obs::names;
use lan_pg::{
    beam_search, DistBound, DistCache, PairCache, PgConfig, ProximityGraph, QueryDistance,
};
use std::time::Instant;

/// The cascade oracle: same exact distance as the closure oracle, plus
/// the threshold-gated path (mirrors lan-core's per-query oracle).
struct CascadeOracle<'a> {
    ds: &'a Dataset,
    q: &'a Graph,
}

impl QueryDistance for CascadeOracle<'_> {
    fn distance(&self, id: u32) -> f64 {
        self.ds.distance(self.q, id)
    }

    fn distance_within(&self, id: u32, tau: f64) -> DistBound {
        match self.ds.distance_within(self.q, id, tau) {
            GedBound::Exact(d) => DistBound::Exact(d),
            GedBound::AtLeast(lb) => DistBound::AtLeast(lb),
        }
    }
}

struct Setup {
    ds: Dataset,
    pg: ProximityGraph,
    query_idx: Vec<usize>,
    b: usize,
    k: usize,
}

fn build(smoke: bool) -> Setup {
    let (graphs, queries, used) = if smoke { (160, 16, 12) } else { (400, 40, 30) };
    let spec = DatasetSpec::syn()
        .with_graphs(graphs)
        .with_queries(queries)
        .with_metric(GedMethod::Hungarian);
    eprintln!("generating {graphs} graphs / {queries} queries...");
    let ds = Dataset::generate(spec);
    let pair_fn = |a: u32, b: u32| ds.pair_distance(a, b);
    let pairs = PairCache::new(&pair_fn);
    let pg = ProximityGraph::build(ds.graphs.len(), &pairs, &PgConfig::new(6));
    Setup {
        ds,
        pg,
        query_idx: (0..used).collect(),
        b: 4,
        k: 3,
    }
}

/// Full GED solver runs since `before`, per the engine's own counter.
fn full_evals(before: &lan_obs::Snapshot) -> usize {
    lan_obs::snapshot()
        .diff(before)
        .counter(names::GED_FULL_EVALS) as usize
}

/// Per-query routing outcome: `(entry node, results, NDC)`.
type RouteOutcome = (u32, Vec<(f64, u32)>, usize);

/// One query of the routing workload: entry descent + Algorithm 1.
fn route_one(s: &Setup, oracle: &dyn QueryDistance) -> RouteOutcome {
    let cache = DistCache::new(oracle);
    let entry = s.pg.hnsw_entry(&cache);
    let rr = beam_search(s.pg.base(), &cache, &[entry], s.b, s.k);
    (entry, rr.results, rr.ndc)
}

/// Runs the routing workload over every query; `gated` selects the
/// cascade oracle vs the plain closure oracle (the seed path). Returns
/// `(per-query outcomes, full evals, wall time us)`.
fn run_routing(s: &Setup, gated: bool) -> (Vec<RouteOutcome>, usize, f64) {
    let before = lan_obs::snapshot();
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(s.query_idx.len());
    for &qi in &s.query_idx {
        let q = &s.ds.queries[qi];
        out.push(if gated {
            route_one(s, &CascadeOracle { ds: &s.ds, q })
        } else {
            // The closure oracle cannot produce bounds: the seed path.
            route_one(s, &|id: u32| s.ds.distance(q, id))
        });
    }
    let us = t0.elapsed().as_secs_f64() * 1e6;
    (out, full_evals(&before), us)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    lan_obs::set_enabled(true);
    let s = build(smoke);

    // --- 1. Routing: plain oracle vs cascade oracle. ---
    let (seed_out, routing_seed_full, routing_seed_us) = run_routing(&s, false);
    let (casc_out, routing_casc_full, routing_casc_us) = run_routing(&s, true);
    assert_eq!(
        seed_out, casc_out,
        "cascade routing diverged from the plain oracle (results / entry / NDC)"
    );
    let routing_ratio = routing_seed_full as f64 / routing_casc_full.max(1) as f64;
    eprintln!(
        "routing        seed {routing_seed_full:>6} full evals ({routing_seed_us:>9.0}us)  \
         cascade {routing_casc_full:>6} ({routing_casc_us:>9.0}us)  reduction {routing_ratio:.2}x"
    );

    // --- 2. Ground-truth k-NN: the lb-ordered cascade scan vs full scan
    //        (same k as the routing workload: recall@k's denominator). ---
    let gt_k = s.k;
    let before = lan_obs::snapshot();
    let t0 = Instant::now();
    let full_scan: Vec<Vec<(f64, u32)>> = s
        .query_idx
        .iter()
        .map(|&qi| {
            let q = &s.ds.queries[qi];
            let mut all: Vec<(f64, u32)> = (0..s.ds.graphs.len() as u32)
                .map(|i| (s.ds.distance(q, i), i))
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            all.truncate(gt_k);
            all
        })
        .collect();
    let gt_seed_us = t0.elapsed().as_secs_f64() * 1e6;
    let gt_seed_full = full_evals(&before);

    let before = lan_obs::snapshot();
    let t0 = Instant::now();
    let cascade_scan: Vec<Vec<(f64, u32)>> = s
        .query_idx
        .iter()
        .map(|&qi| s.ds.ground_truth_knn(&s.ds.queries[qi], gt_k))
        .collect();
    let gt_casc_us = t0.elapsed().as_secs_f64() * 1e6;
    let gt_casc_full = full_evals(&before);
    assert_eq!(
        full_scan, cascade_scan,
        "cascade ground truth diverged from the full scan"
    );
    let gt_ratio = gt_seed_full as f64 / gt_casc_full.max(1) as f64;
    eprintln!(
        "ground_truth   seed {gt_seed_full:>6} full evals ({gt_seed_us:>9.0}us)  \
         cascade {gt_casc_full:>6} ({gt_casc_us:>9.0}us)  reduction {gt_ratio:.2}x"
    );

    let overall_ratio = (routing_seed_full + gt_seed_full) as f64
        / (routing_casc_full + gt_casc_full).max(1) as f64;
    // The full stacked cascade, cheapest tier first, as end-of-run
    // registry totals. The quantized prefilter tier sits above the
    // admissible tiers but only engages on LanIndex query paths (this
    // bench routes over a bare proximity graph), so its counters read
    // zero here — they are reported all the same so the stack in this
    // artifact and in BENCH_quant.json line up tier for tier.
    let quant_evals = lan_obs::counter(names::QUANT_PREFILTER_EVALS).get();
    let quant_pruned = lan_obs::counter(names::QUANT_PREFILTER_PRUNED).get();
    let lb_prunes = lan_obs::counter(names::GED_LB_PRUNE).get();
    let early_aborts = lan_obs::counter(names::GED_EARLY_ABORT).get();
    let full_total = lan_obs::counter(names::GED_FULL_EVALS).get();
    eprintln!(
        "overall reduction {overall_ratio:.2}x  (quant.prefilter.pruned {quant_pruned}, \
         ged.lb_prune {lb_prunes}, ged.early_abort {early_aborts}, ged.full_evals {full_total})"
    );

    // The acceptance gate: at bit-identical results (asserted above, so
    // recall is equal by construction), the cascade must at least halve
    // the number of full GED solver runs, overall and on the
    // filter-verify scan where the signatures carry the load. Routing
    // only ever probes proximity-graph neighbors — graphs that are close
    // by construction, where a lower bound rarely clears the pool gate —
    // so its reduction is structurally modest; it is still asserted to
    // never cost an extra solve.
    assert!(
        gt_ratio >= 2.0,
        "ground-truth full-eval reduction {gt_ratio:.2}x below the 2x acceptance floor"
    );
    assert!(
        overall_ratio >= 2.0,
        "overall full-eval reduction {overall_ratio:.2}x below the 2x acceptance floor"
    );
    assert!(
        routing_casc_full <= routing_seed_full,
        "cascade routing paid extra full evals: {routing_casc_full} > {routing_seed_full}"
    );

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\n  \"bench\": \"ged_kernels\",\n{}  \"smoke\": {smoke},\n  \"graphs\": {},\n  \"queries\": {},\n  \"b\": {},\n  \"k\": {},\n  \"equivalence\": \"ok\",\n  \"routing\": {{\"seed_full_evals\": {routing_seed_full}, \"cascade_full_evals\": {routing_casc_full}, \"reduction\": {routing_ratio:.3}, \"seed_us\": {routing_seed_us:.0}, \"cascade_us\": {routing_casc_us:.0}}},\n  \"ground_truth\": {{\"k\": {gt_k}, \"seed_full_evals\": {gt_seed_full}, \"cascade_full_evals\": {gt_casc_full}, \"reduction\": {gt_ratio:.3}, \"seed_us\": {gt_seed_us:.0}, \"cascade_us\": {gt_casc_us:.0}}},\n  \"reduction\": {overall_ratio:.3},\n  \"ged_lb_prune\": {lb_prunes},\n  \"ged_early_abort\": {early_aborts},\n  \"cascade_counters\": {{\"quant.prefilter.evals\": {quant_evals}, \"quant.prefilter.pruned\": {quant_pruned}, \"ged.lb_prune\": {lb_prunes}, \"ged.early_abort\": {early_aborts}, \"ged.full_evals\": {full_total}}}\n}}\n",
        lan_bench::host_header_json(),
        s.ds.graphs.len(),
        s.query_idx.len(),
        s.b,
        s.k,
    );
    std::fs::write("results/BENCH_ged.json", &json).expect("write results/BENCH_ged.json");
    eprintln!("wrote results/BENCH_ged.json");
}
