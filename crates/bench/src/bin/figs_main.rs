//! Combined driver for the index-heavy figures — Fig. 5 (method
//! comparison), Fig. 6 (routing), Fig. 7 (initial selection), and Fig. 10
//! (CG acceleration) — building each dataset's index **once** and reusing
//! it for all four, which matters on small machines (the individual
//! `fig5_compare` … `fig10_accel` binaries rebuild per figure).
//!
//! ```text
//! cargo run --release -p lan-bench --bin figs_main
//! ```

use lan_bench::{all_specs, beam_sweep, build_index, k_for, print_curve, Scale};
use lan_core::{harness, qps_at_recall, InitStrategy, L2RouteIndex, RouteStrategy};

fn main() {
    let scale = Scale::from_env();
    let k = k_for(scale);
    let beams = beam_sweep(scale);

    for spec in all_specs() {
        let name = spec.name;
        let index = build_index(spec, scale);
        let test_q = index.dataset.split.test.clone();
        eprintln!("[{name}] ground truth for {} queries...", test_q.len());
        let truths = harness::ground_truths(&index, &test_q, k);

        // --- Fig 5: LAN vs HNSW vs L2route. ---
        println!("\n=== Fig 5 ({name}): recall@{k} vs QPS ===");
        let lan = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        print_curve("LAN", &lan);
        let hnsw = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::HnswIs,
            RouteStrategy::HnswRoute,
        );
        print_curve("HNSW", &hnsw);
        let l2 = L2RouteIndex::build(&index, 6);
        let n = index.dataset.graphs.len();
        let cands: Vec<usize> = [2usize, 4, 8, 16, 32, 64]
            .iter()
            .map(|&c| (c * k / 4).min(n))
            .collect();
        let l2curve = harness::l2route_curve(&index, &l2, &test_q, &truths, k, &cands);
        print_curve("L2route", &l2curve);
        for target in [0.9, 0.95] {
            if let (Some(a), Some(h)) = (qps_at_recall(&lan, target), qps_at_recall(&hnsw, target))
            {
                let l2s = qps_at_recall(&l2curve, target)
                    .map(|x| format!("{:.1}x", a / x))
                    .unwrap_or("n/a (never reached)".into());
                println!(
                    "[{name}] Fig5 @recall={target}: LAN/HNSW = {:.2}x, LAN/L2route = {l2s}",
                    a / h
                );
            }
        }

        // --- Fig 6: LAN_Route vs HNSW_Route under HNSW_IS. ---
        println!("\n=== Fig 6 ({name}): routing (HNSW_IS fixed) ===");
        let lan_route = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::HnswIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        print_curve("LAN_Route", &lan_route);
        print_curve("HNSW_Route", &hnsw);
        for target in [0.9, 0.95] {
            if let (Some(a), Some(h)) = (
                qps_at_recall(&lan_route, target),
                qps_at_recall(&hnsw, target),
            ) {
                println!(
                    "[{name}] Fig6 @recall={target}: LAN_Route/HNSW_Route = {:.2}x",
                    a / h
                );
            }
        }
        let (l, h) = (lan_route.last().unwrap(), hnsw.last().unwrap());
        println!(
            "[{name}] Fig6 NDC at b={}: LAN_Route {:.1} vs HNSW_Route {:.1}",
            l.param, l.avg_ndc, h.avg_ndc
        );

        // --- Fig 7: initial selection under LAN_Route. ---
        println!("\n=== Fig 7 ({name}): initial selection (LAN_Route fixed) ===");
        let hnsw_is = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::HnswIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        let rand_is = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::RandIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        print_curve("LAN_IS", &lan);
        print_curve("HNSW_IS", &hnsw_is);
        print_curve("Rand_IS", &rand_is);
        for target in [0.9, 0.95] {
            if let (Some(a), Some(h), Some(r)) = (
                qps_at_recall(&lan, target),
                qps_at_recall(&hnsw_is, target),
                qps_at_recall(&rand_is, target),
            ) {
                println!(
                    "[{name}] Fig7 @recall={target}: LAN_IS/HNSW_IS = {:.2}x, LAN_IS/Rand_IS = {:.2}x",
                    a / h,
                    a / r
                );
            }
        }

        // --- Fig 10: CG on vs off. ---
        println!("\n=== Fig 10 ({name}): CG acceleration ===");
        let plain = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
        );
        print_curve("LAN(CG)", &lan);
        print_curve("LAN(plain)", &plain);
        for target in [0.9, 0.95] {
            if let (Some(a), Some(p)) = (qps_at_recall(&lan, target), qps_at_recall(&plain, target))
            {
                println!(
                    "[{name}] Fig10 @recall={target}: CG QPS gain = {:+.1}%",
                    (a / p - 1.0) * 100.0
                );
            }
        }
    }
    lan_bench::finish_obs("figs_main", &[]);
}
