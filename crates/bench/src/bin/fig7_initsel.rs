//! Fig. 7: initial node selection — LAN_IS vs HNSW_IS vs Rand_IS, all with
//! LAN_Route fixed as the routing method.
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig7_initsel
//! ```
//!
//! Paper shape: LAN_IS > HNSW_IS > Rand_IS; ~1.3–1.7× over HNSW_IS and up
//! to ~2× (17× on LINUX) over Rand_IS at recall 0.95.

use lan_bench::{all_specs, beam_sweep, build_index, k_for, print_curve, Scale};
use lan_core::{harness, qps_at_recall, InitStrategy, RouteStrategy};

fn main() {
    let scale = Scale::from_env();
    let k = k_for(scale);
    let beams = beam_sweep(scale);
    let route = RouteStrategy::LanRoute { use_cg: true };

    for spec in all_specs() {
        let name = spec.name;
        let index = build_index(spec, scale);
        let test_q = index.dataset.split.test.clone();
        let truths = harness::ground_truths(&index, &test_q, k);

        println!("\n=== Fig 7 ({name}): initial selection (LAN_Route fixed) ===");
        let curves = [
            ("LAN_IS", InitStrategy::LanIs),
            ("HNSW_IS", InitStrategy::HnswIs),
            ("Rand_IS", InitStrategy::RandIs),
        ]
        .map(|(label, init)| {
            let c = harness::recall_qps_curve(&index, &test_q, &truths, k, &beams, init, route);
            print_curve(label, &c);
            (label, c)
        });

        for target in [0.9, 0.95] {
            let qs: Vec<Option<f64>> = curves
                .iter()
                .map(|(_, c)| qps_at_recall(c, target))
                .collect();
            if let (Some(lan), Some(hnsw), Some(rand)) = (qs[0], qs[1], qs[2]) {
                println!(
                    "[{name}] @recall={target}: LAN_IS/HNSW_IS = {:.2}x, LAN_IS/Rand_IS = {:.2}x",
                    lan / hnsw,
                    lan / rand
                );
            }
        }
    }
    lan_bench::finish_obs("fig7_initsel", &[]);
}
