//! Fig. 11: breakdown of the k-ANN query time *before* CG acceleration —
//! what fraction goes to cross-graph learning vs GED computation vs rest.
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig11_breakdown
//! ```
//!
//! Paper shape: cross-graph learning is ~20–29% of query time, which is
//! what makes the CG acceleration worth it (Figs. 10/12).

use lan_bench::{beam_sweep, build_index, k_for, Scale};
use lan_core::{harness, InitStrategy, RouteStrategy};

fn main() {
    let scale = Scale::from_env();
    let k = k_for(scale);
    let b = beam_sweep(scale)[2];

    println!("Fig 11: query time breakdown (LAN without CG, b = {b}, k = {k})");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "Dataset", "total(ms)", "GED(ms)", "GNN(ms)", "GNN frac", "GED frac"
    );
    for spec in lan_bench::all_specs() {
        let index = build_index(spec, scale);
        let test_q = index.dataset.split.test.clone();
        let truths = harness::ground_truths(&index, &test_q, k);
        let (_, breakdown) = harness::run_point(
            &index,
            &test_q,
            &truths,
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
        );
        let n = test_q.len() as f64;
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>10.1} {:>9.1}% {:>7.1}%",
            index.dataset.spec.name,
            breakdown.total.as_secs_f64() * 1000.0 / n,
            breakdown.distance.as_secs_f64() * 1000.0 / n,
            breakdown.gnn.as_secs_f64() * 1000.0 / n,
            breakdown.gnn_fraction() * 100.0,
            breakdown.distance_fraction() * 100.0
        );
    }
    println!("\n(paper: GNN share ~24/25/20/29% on AIDS/LINUX/PUBCHEM/SYN)");
    lan_bench::finish_obs("fig11_breakdown", &[]);
}
