//! Robustness curves for the budget + fault-tolerance layer, written to
//! `results/BENCH_budget.json`:
//!
//! 1. **recall vs NDC budget** — the test workload runs under NDC caps
//!    swept as fractions of the unlimited average NDC. Degradation is
//!    graceful by contract: every query completes (best-so-far results, a
//!    tagged termination, never a panic), and the measured NDC never
//!    exceeds the cap — the cap is strict even summed across shards.
//! 2. **recall vs fault rate** — distance computations fault
//!    deterministically at swept rates (`ged_timeout` spec); the
//!    retry-then-fallback recovery keeps every query answering, and the
//!    `fault.*` counters quantify the recovery work.
//!
//! An ambient `LAN_FAULTS` plan (as set by the CI `fault-smoke` job)
//! applies to the budget sweep, so the two robustness mechanisms are also
//! exercised *together*; the fault sweep then sets its own plans and
//! restores the ambient one afterwards.
//!
//! ```text
//! cargo run --release -p lan-bench --bin budget_curve [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the run to CI size and asserts the robustness
//! invariants (strict caps, degraded counts, fault counters) hard.

use lan_bench::{bench_lan_config, k_for, sized_spec, Scale};
use lan_core::{InitStrategy, LanConfig, QueryBudget, RouteStrategy, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_graph::Graph;
use lan_models::ModelConfig;
use lan_obs::names;
use lan_pg::faults::{self, FaultPlan};
use lan_pg::PgConfig;

struct BatchStats {
    avg_recall: f64,
    avg_ndc: f64,
    max_ndc: usize,
    degraded: usize,
}

fn run_batch(
    sharded: &ShardedLanIndex,
    queries: &[(usize, Graph)],
    truth_kth: &[f64],
    k: usize,
    b: usize,
    budget: &QueryBudget,
) -> BatchStats {
    let init = InitStrategy::LanIs;
    let route = RouteStrategy::LanRoute { use_cg: true };
    let mut recall_sum = 0.0;
    let mut ndc_sum = 0usize;
    let mut max_ndc = 0usize;
    let mut degraded = 0usize;
    for ((qi, q), &kth) in queries.iter().zip(truth_kth) {
        let out = sharded.search_budgeted(q, k, b, init, route, *qi as u64, budget);
        recall_sum += lan_datasets::recall_at_k_ties(&out.results, kth, k);
        ndc_sum += out.ndc;
        max_ndc = max_ndc.max(out.ndc);
        if out.termination.is_degraded() {
            degraded += 1;
        }
    }
    let n = queries.len().max(1) as f64;
    BatchStats {
        avg_recall: recall_sum / n,
        avg_ndc: ndc_sum as f64 / n,
        max_ndc,
        degraded,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_env();
    // Counters must record for the exported robustness metrics.
    lan_obs::set_enabled(true);
    let (k, num_shards, spec, cfg) = if smoke {
        let spec = DatasetSpec::syn()
            .with_graphs(40)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian);
        let cfg = LanConfig {
            pg: PgConfig::new(4),
            model: ModelConfig {
                embed_dim: 8,
                epochs: 1,
                max_samples_per_epoch: 80,
                nh_cover_k: 6,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            ds: 1.0,
            quant: lan_core::QuantConfig::from_env(),
        };
        (5usize, 2usize, spec, cfg)
    } else {
        (
            k_for(scale),
            4usize,
            sized_spec(DatasetSpec::syn(), scale),
            bench_lan_config(scale),
        )
    };
    let b = 2 * k;

    // The ambient plan (from LAN_FAULTS, e.g. the CI fault-smoke job)
    // stays active for the budget sweep; the fault sweep restores it.
    let ambient = faults::active_plan();
    eprintln!(
        "generating {} graphs / {} queries (ambient faults: {})...",
        spec.num_graphs,
        spec.num_queries,
        ambient.map_or("none".to_string(), |p| format!(
            "timeout {} fail {} seed {}",
            p.timeout_rate, p.fail_rate, p.seed
        )),
    );
    let dataset = Dataset::generate(spec);
    let sharded = ShardedLanIndex::build(&dataset, &cfg, num_shards);

    let queries: Vec<(usize, Graph)> = dataset
        .split
        .test
        .iter()
        .map(|&qi| (qi, dataset.queries[qi].clone()))
        .collect();
    let truth_kth: Vec<f64> = queries
        .iter()
        .map(|(_, q)| {
            dataset
                .ground_truth_knn(q, k)
                .last()
                .map(|&(d, _)| d)
                .unwrap_or(f64::INFINITY)
        })
        .collect();
    eprintln!("running {} queries, k = {k}, b = {b}", queries.len());

    // --- Curve 1: recall vs NDC budget. ---
    let unlimited = run_batch(
        &sharded,
        &queries,
        &truth_kth,
        k,
        b,
        &QueryBudget::unlimited(),
    );
    eprintln!(
        "  unlimited          recall {:.3}  avg NDC {:>7.1}  degraded {}",
        unlimited.avg_recall, unlimited.avg_ndc, unlimited.degraded
    );
    let fractions = [0.1f64, 0.25, 0.5, 0.75, 1.0];
    let mut budget_points = Vec::new();
    for &frac in &fractions {
        let cap = ((unlimited.avg_ndc * frac) as usize).max(1);
        let stats = run_batch(
            &sharded,
            &queries,
            &truth_kth,
            k,
            b,
            &QueryBudget::unlimited().with_max_ndc(cap),
        );
        eprintln!(
            "  cap {cap:>5} ({frac:>4.2}x)  recall {:.3}  avg NDC {:>7.1}  degraded {}",
            stats.avg_recall, stats.avg_ndc, stats.degraded
        );
        assert!(
            stats.max_ndc <= cap,
            "strict-cap violation: per-query NDC {} > cap {cap}",
            stats.max_ndc
        );
        budget_points.push(format!(
            "    {{\"ndc_cap\": {cap}, \"fraction\": {frac}, \"avg_recall\": {:.4}, \"avg_ndc\": {:.2}, \"max_ndc\": {}, \"degraded_queries\": {}}}",
            stats.avg_recall, stats.avg_ndc, stats.max_ndc, stats.degraded
        ));
        if smoke && frac <= 0.25 {
            assert!(
                stats.degraded > 0,
                "a {frac}x NDC cap must degrade some queries"
            );
        }
    }

    // --- Curve 2: recall vs fault rate. ---
    let rates = [0.0f64, 0.02, 0.05, 0.1, 0.2];
    let mut fault_points = Vec::new();
    let mut injected_at_5pct = 0u64;
    for &rate in &rates {
        let plan = FaultPlan {
            timeout_rate: rate,
            fail_rate: 0.0,
            seed: 7,
        };
        faults::set_plan((rate > 0.0).then_some(plan));
        let before = lan_obs::snapshot();
        let stats = run_batch(
            &sharded,
            &queries,
            &truth_kth,
            k,
            b,
            &QueryBudget::unlimited(),
        );
        let delta = lan_obs::snapshot().diff(&before);
        let injected = delta.counter(names::FAULT_INJECTED);
        let retried = delta.counter(names::FAULT_RETRIED);
        let fallback = delta.counter(names::FAULT_FALLBACK);
        if rate == 0.05 {
            injected_at_5pct = injected;
        }
        eprintln!(
            "  fault rate {rate:>4.2}    recall {:.3}  injected {injected:>5}  retried {retried:>5}  fallback {fallback:>4}",
            stats.avg_recall
        );
        fault_points.push(format!(
            "    {{\"fault_rate\": {rate}, \"avg_recall\": {:.4}, \"avg_ndc\": {:.2}, \"fault.injected\": {injected}, \"fault.retried\": {retried}, \"fault.fallback\": {fallback}}}",
            stats.avg_recall, stats.avg_ndc
        ));
    }
    faults::set_plan(ambient);

    if smoke {
        assert!(
            injected_at_5pct > 0,
            "a 5% fault rate must inject faults on this workload"
        );
    }

    // --- Export. ---
    let snap = lan_obs::snapshot();
    let robustness_counters = [
        names::QUERY_DEGRADED,
        names::BUDGET_NDC_EXHAUSTED,
        names::BUDGET_DEADLINE_EXCEEDED,
        names::BUDGET_CANCELLED,
        names::FAULT_INJECTED,
        names::FAULT_RETRIED,
        names::FAULT_FALLBACK,
        names::GED_TIMEOUT_FALLBACK,
    ];
    let counters_json: Vec<String> = robustness_counters
        .iter()
        .map(|&n| format!("    \"{n}\": {}", snap.counter(n)))
        .collect();
    if smoke {
        assert!(
            snap.counter(names::QUERY_DEGRADED) > 0,
            "degraded queries must be counted"
        );
    }

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\n  \"bench\": \"budget_curve\",\n{}  \"num_shards\": {num_shards},\n  \"queries\": {},\n  \"k\": {k},\n  \"beam\": {b},\n  \"ambient_faults\": \"{}\",\n  \"unlimited\": {{\"avg_recall\": {:.4}, \"avg_ndc\": {:.2}, \"degraded_queries\": {}}},\n  \"recall_vs_ndc_budget\": [\n{}\n  ],\n  \"recall_vs_fault_rate\": [\n{}\n  ],\n  \"counters\": {{\n{}\n  }}\n}}\n",
        lan_bench::host_header_json(),
        queries.len(),
        ambient.map_or("none".to_string(), |p| format!(
            "ged_timeout:{},ged_fail:{},seed={}",
            p.timeout_rate, p.fail_rate, p.seed
        )),
        unlimited.avg_recall,
        unlimited.avg_ndc,
        unlimited.degraded,
        budget_points.join(",\n"),
        fault_points.join(",\n"),
        counters_json.join(",\n"),
    );
    std::fs::write("results/BENCH_budget.json", &json).expect("write results/BENCH_budget.json");
    eprintln!("wrote results/BENCH_budget.json");
    if smoke {
        eprintln!("smoke assertions passed: strict caps, graceful degradation, fault recovery");
    }
}
