//! Fig. 5: recall@k vs QPS — LAN vs HNSW vs L2route on all four datasets.
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig5_compare
//! ```
//!
//! Paper shape: LAN > HNSW > L2route in QPS at every recall level; at
//! recall 0.95 LAN is ~3.6–9× over HNSW and ~16–73× over L2route.

use lan_bench::{all_specs, beam_sweep, build_index, k_for, print_curve, Scale};
use lan_core::{harness, qps_at_recall, InitStrategy, L2RouteIndex, RouteStrategy};

fn main() {
    let scale = Scale::from_env();
    let k = k_for(scale);
    let beams = beam_sweep(scale);

    for spec in all_specs() {
        let name = spec.name;
        let index = build_index(spec, scale);
        let test_q = index.dataset.split.test.clone();
        eprintln!(
            "[{name}] computing ground truth for {} test queries...",
            test_q.len()
        );
        let truths = harness::ground_truths(&index, &test_q, k);

        println!("\n=== Fig 5 ({name}): recall@{k} vs QPS ===");
        let lan = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        print_curve("LAN", &lan);
        let hnsw = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::HnswIs,
            RouteStrategy::HnswRoute,
        );
        print_curve("HNSW", &hnsw);
        let l2 = L2RouteIndex::build(&index, 6);
        let n = index.dataset.graphs.len();
        let cands: Vec<usize> = [8usize, 16, 32, 64, 128, 256]
            .iter()
            .map(|&c| (c * k / 20).min(n))
            .collect();
        let l2curve = harness::l2route_curve(&index, &l2, &test_q, &truths, k, &cands);
        print_curve("L2route", &l2curve);

        for target in [0.9, 0.95] {
            let q_lan = qps_at_recall(&lan, target);
            let q_hnsw = qps_at_recall(&hnsw, target);
            let q_l2 = qps_at_recall(&l2curve, target);
            match (q_lan, q_hnsw, q_l2) {
                (Some(a), Some(h), l2q) => {
                    let l2s = l2q
                        .map(|x| format!("{:.1}x", a / x))
                        .unwrap_or("n/a".into());
                    println!(
                        "[{name}] @recall={target}: LAN/HNSW = {:.1}x, LAN/L2route = {l2s}",
                        a / h
                    );
                }
                _ => println!("[{name}] @recall={target}: some method never reached the target"),
            }
        }
    }
    lan_bench::finish_obs("fig5_compare", &[]);
}
