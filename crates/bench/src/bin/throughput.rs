//! Sequential vs parallel throughput of the LAN query pipeline, written to
//! `results/BENCH_parallel.json`.
//!
//! Three configurations run the same test workload over the same sharded
//! index and must return identical recall and NDC (the determinism contract
//! of the parallel layer, property-tested in
//! `crates/core/tests/parallel_equivalence.rs`):
//!
//! 1. `sequential` — queries one after another, shards visited in order;
//! 2. `parallel_shards` — each query fans its shards out in parallel;
//! 3. `parallel_queries` — the query batch itself runs in parallel
//!    (shards sequential within each query).
//!
//! The worker count defaults to the host's parallelism; `LAN_THREADS`
//! overrides it. On a single-core host the speedup is honestly ~1×, and
//! the JSON records `host_threads` so readers can tell; a speedup floor
//! is only asserted on hosts with ≥ 4 threads (non-smoke). The non-smoke
//! evaluation batch is padded to ≥ 64 queries by synthesizing extra
//! queries generator-style (database graph + 1–4 edits, seeded), since
//! the 6:2:2 split alone leaves too few test queries to time.
//!
//! A metrics snapshot is written to `results/BENCH_obs.json` at the end
//! (with the run's independently summed `total_ndc` for cross-checking by
//! the `obs_check` binary), and `LAN_TRACE=route` additionally produces
//! `results/trace_throughput.jsonl`.
//!
//! ```text
//! cargo run --release -p lan-bench --bin throughput [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the run to CI size: a tiny Hungarian-metric dataset
//! over 2 shards, seconds end to end.

use lan_bench::{
    bench_lan_config, finish_obs, host_threads, k_for, sized_spec, underprovisioned, Scale,
};
use lan_core::{InitStrategy, LanConfig, RouteStrategy, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_graph::Graph;
use lan_models::ModelConfig;
use lan_obs::trace;
use lan_pg::PgConfig;
use std::time::Instant;

struct RunStats {
    wall_s: f64,
    qps: f64,
    total_ndc: usize,
    avg_ndc: f64,
    avg_recall: f64,
}

fn run_batch(
    label: &str,
    queries: &[(usize, Graph)],
    truth_kth: &[f64],
    k: usize,
    search: impl Fn(&Graph, u64) -> lan_core::QueryOutcome + Sync,
    parallel_queries: bool,
) -> RunStats {
    let t0 = Instant::now();
    let outs: Vec<lan_core::QueryOutcome> = if parallel_queries {
        lan_par::par_map_dyn(queries, lan_par::Grain::Fine, |(qi, q)| {
            let _t = trace::query(*qi as u64);
            search(q, *qi as u64)
        })
    } else {
        queries
            .iter()
            .map(|(qi, q)| {
                let _t = trace::query(*qi as u64);
                search(q, *qi as u64)
            })
            .collect()
    };
    let wall = t0.elapsed().as_secs_f64();
    let n = queries.len() as f64;
    let ndc: usize = outs.iter().map(|o| o.ndc).sum();
    let recall: f64 = outs
        .iter()
        .zip(truth_kth)
        .map(|(o, &kth)| lan_datasets::recall_at_k_ties(&o.results, kth, k))
        .sum::<f64>()
        / n;
    let stats = RunStats {
        wall_s: wall,
        qps: n / wall.max(1e-12),
        total_ndc: ndc,
        avg_ndc: ndc as f64 / n,
        avg_recall: recall,
    };
    eprintln!(
        "  {label:<18} wall {:>7.3}s  QPS {:>8.2}  avg NDC {:>8.1}  recall {:.3}",
        stats.wall_s, stats.qps, stats.avg_ndc, stats.avg_recall
    );
    stats
}

fn json_stats(s: &RunStats) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"qps\": {:.3}, \"avg_ndc\": {:.2}, \"avg_recall\": {:.4}}}",
        s.wall_s, s.qps, s.avg_ndc, s.avg_recall
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_env();
    let (k, num_shards, spec, cfg) = if smoke {
        // CI-sized: tiny Hungarian-metric database, seconds end to end.
        let spec = DatasetSpec::syn()
            .with_graphs(40)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian);
        let cfg = LanConfig {
            pg: PgConfig::new(4),
            model: ModelConfig {
                embed_dim: 8,
                epochs: 1,
                max_samples_per_epoch: 80,
                nh_cover_k: 6,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            ds: 1.0,
            quant: lan_core::QuantConfig::from_env(),
        };
        (5usize, 2usize, spec, cfg)
    } else {
        (
            k_for(scale),
            4usize,
            sized_spec(DatasetSpec::syn(), scale),
            bench_lan_config(scale),
        )
    };
    let b = 2 * k;
    eprintln!(
        "generating {} graphs / {} queries...",
        spec.num_graphs, spec.num_queries
    );
    let dataset = Dataset::generate(spec);
    eprintln!("building {num_shards}-shard index (parallel across shards)...");
    let t0 = Instant::now();
    let sharded = ShardedLanIndex::build(&dataset, &cfg, num_shards);
    let build_s = t0.elapsed().as_secs_f64();
    eprintln!("index ready in {build_s:.1}s");

    let mut queries: Vec<(usize, Graph)> = dataset
        .split
        .test
        .iter()
        .map(|&qi| (qi, dataset.queries[qi].clone()))
        .collect();
    if !smoke {
        // The 6:2:2 split leaves only a handful of test queries (8 at the
        // small scale) — far too few for a meaningful throughput number
        // (a 2-query batch once "measured" a 0.99x parallel speedup).
        // Synthesize additional evaluation queries the same way the
        // generator makes its own (a database graph plus 1–4 edits),
        // deterministically seeded, until the batch holds ≥ 64. Ground
        // truth is computed per query below, so recall stays exact.
        const MIN_EVAL_QUERIES: usize = 64;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7410_BE9C);
        let mut next_qi = dataset.queries.len();
        while queries.len() < MIN_EVAL_QUERIES {
            let base = &dataset.graphs[rng.gen_range(0..dataset.graphs.len())];
            let t = rng.gen_range(1..=4);
            let (q, _) = lan_graph::perturb::perturb(&mut rng, base, t, dataset.spec.num_labels);
            queries.push((next_qi, q));
            next_qi += 1;
        }
    }
    let truth_kth: Vec<f64> = queries
        .iter()
        .map(|(_, q)| {
            dataset
                .ground_truth_knn(q, k)
                .last()
                .map(|&(d, _)| d)
                .unwrap_or(f64::INFINITY)
        })
        .collect();

    let init = InitStrategy::LanIs;
    let route = RouteStrategy::LanRoute { use_cg: true };
    eprintln!(
        "running {} queries, k = {k}, b = {b}, {} worker threads:",
        queries.len(),
        lan_par::num_threads()
    );

    let seq = run_batch(
        "sequential",
        &queries,
        &truth_kth,
        k,
        |q, seed| sharded.search(q, k, b, init, route, seed),
        false,
    );
    let par_shards = run_batch(
        "parallel shards",
        &queries,
        &truth_kth,
        k,
        |q, seed| sharded.search_par(q, k, b, init, route, seed),
        false,
    );
    let par_queries = run_batch(
        "parallel queries",
        &queries,
        &truth_kth,
        k,
        |q, seed| sharded.search(q, k, b, init, route, seed),
        true,
    );

    assert_eq!(
        seq.avg_ndc, par_shards.avg_ndc,
        "shard-parallel NDC diverged"
    );
    assert_eq!(
        seq.avg_ndc, par_queries.avg_ndc,
        "query-parallel NDC diverged"
    );
    assert_eq!(
        seq.avg_recall, par_shards.avg_recall,
        "shard-parallel recall diverged"
    );
    assert_eq!(
        seq.avg_recall, par_queries.avg_recall,
        "query-parallel recall diverged"
    );

    let best = par_shards.qps.max(par_queries.qps);
    let speedup = best / seq.qps.max(1e-12);
    eprintln!("best parallel speedup over sequential: {speedup:.2}x");
    // Only a real parallel host can be held to a speedup floor; on 1–2
    // cores the honest result is ~1x and the JSON tags the run
    // `underprovisioned` so nobody reads the "speedup" as a measurement.
    // Smoke batches are too small to amortize thread startup.
    if !smoke && !underprovisioned() {
        assert!(
            speedup >= 1.5,
            "parallel speedup {speedup:.2}x on a {}-thread host \
             (floor: 1.5x with >= 4 threads)",
            host_threads()
        );
    } else if underprovisioned() {
        eprintln!(
            "host has {} thread(s): speedup gate skipped, run tagged underprovisioned",
            host_threads()
        );
    }

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n{}  \"underprovisioned\": {},\n  \"num_shards\": {},\n  \"queries\": {},\n  \"k\": {},\n  \"beam\": {},\n  \"build_s\": {:.3},\n  \"sequential\": {},\n  \"parallel_shards\": {},\n  \"parallel_queries\": {},\n  \"speedup\": {:.3}\n}}\n",
        lan_bench::host_header_json(),
        underprovisioned(),
        num_shards,
        queries.len(),
        k,
        b,
        build_s,
        json_stats(&seq),
        json_stats(&par_shards),
        json_stats(&par_queries),
        speedup,
    );
    std::fs::write("results/BENCH_parallel.json", &json)
        .expect("write results/BENCH_parallel.json");
    eprintln!("wrote results/BENCH_parallel.json");

    // The run's own NDC bookkeeping, summed independently of the metrics
    // registry; `obs_check` asserts the exported `ged.calls` equals it.
    let total_ndc = (seq.total_ndc + par_shards.total_ndc + par_queries.total_ndc) as u64;
    finish_obs("throughput", &[("total_ndc", total_ndc)]);
}
