//! Tape vs tape-free GNN inference, written to `results/BENCH_gnn.json`.
//!
//! Measures the three layers of the inference fast path against the
//! autograd-tape baseline the models used before:
//!
//! 1. `pair_forward` — one cross-graph pair embedding: tape forward
//!    (`pair_embedding_tape` on a cold cache) vs tape-free `infer_pair`;
//! 2. `hop_workload` — a full query's hop-ranking sequence on a fresh
//!    per-query context: per-neighbor tape scoring (`rank_batches_tape`)
//!    vs the batched fused path (`rank_batches`). Both sides use the
//!    per-query pair cache, so the overlap between consecutive hops'
//!    neighbor sets is amortized exactly as in production;
//! 3. `hop_cached` — the same hop sequence on a pre-warmed context
//!    (every pair embedding already cached): isolates head scoring,
//!    per-neighbor tapes vs one fused matmul per hop.
//!
//! Every mode first asserts the equivalence contract: batched and
//! per-neighbor fused scoring produce bit-identical batches, the cached
//! tape-free pair embeddings are bit-identical to the tape baseline, and
//! the tape and fused hop rankings agree on this (deterministic) workload.
//!
//! ```text
//! cargo run --release -p lan-bench --bin gnn_inference [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the run to CI size (seconds end to end); the
//! equivalence assertions and the ≥3× speedup gate run in both modes.

use lan_datasets::{Dataset, DatasetSpec};
use lan_ged::GedMethod;
use lan_models::{LanModels, ModelConfig, QueryContext};
use lan_obs::names;
use lan_pg::{PairCache, PgConfig, ProximityGraph};
use std::time::Instant;

struct Setup {
    ds: Dataset,
    pg: ProximityGraph,
    models: LanModels,
    /// `(node, neighbors)` hop sequence of the measured workload.
    hops: Vec<(u32, Vec<u32>)>,
    reps: usize,
}

fn build(smoke: bool) -> Setup {
    let (graphs, queries, cfg, reps, hop_count) = if smoke {
        (
            40,
            10,
            ModelConfig {
                embed_dim: 8,
                epochs: 1,
                max_samples_per_epoch: 80,
                nh_cover_k: 6,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            3usize,
            8usize,
        )
    } else {
        (
            120,
            20,
            ModelConfig {
                embed_dim: 16,
                epochs: 2,
                max_samples_per_epoch: 300,
                nh_cover_k: 20,
                clusters: 4,
                top_clusters: 2,
                mlp_hidden: 16,
                ..ModelConfig::default()
            },
            10usize,
            20usize,
        )
    };
    let spec = DatasetSpec::syn()
        .with_graphs(graphs)
        .with_queries(queries)
        .with_metric(GedMethod::Hungarian);
    eprintln!("generating {graphs} graphs / {queries} queries...");
    let ds = Dataset::generate(spec);
    let pair_fn = |a: u32, b: u32| ds.pair_distance(a, b);
    let pairs = PairCache::new(&pair_fn);
    let pg = ProximityGraph::build(ds.graphs.len(), &pairs, &PgConfig::new(4));
    let train_dists: Vec<Vec<f64>> = ds
        .split
        .train
        .iter()
        .map(|&qi| {
            (0..ds.graphs.len() as u32)
                .map(|g| ds.distance(&ds.queries[qi], g))
                .collect()
        })
        .collect();
    eprintln!("training models...");
    let (models, _report) = LanModels::train(&ds, pg.base(), &train_dists, cfg);
    let hops: Vec<(u32, Vec<u32>)> = (0..pg.base().len().min(hop_count))
        .map(|n| (n as u32, pg.base()[n].clone()))
        .filter(|(_, nbs)| !nbs.is_empty())
        .collect();
    Setup {
        ds,
        pg,
        models,
        hops,
        reps,
    }
}

/// Ranks every hop of the workload once on `ctx`; `batched` selects the
/// fused stacked path vs the 1-row-per-neighbor path.
fn run_hops(s: &Setup, ctx: &QueryContext, batched: bool) -> Vec<Vec<Vec<u32>>> {
    s.hops
        .iter()
        .map(|(node, nbs)| {
            if batched {
                s.models.rank_batches(ctx, *node, nbs, 0.0, true)
            } else {
                s.models
                    .rank_batches_per_neighbor(ctx, *node, nbs, 0.0, true)
            }
        })
        .collect()
}

fn run_hops_tape(s: &Setup, ctx: &QueryContext) -> Vec<Vec<Vec<u32>>> {
    s.hops
        .iter()
        .map(|(node, nbs)| s.models.rank_batches_tape(ctx, *node, nbs, 0.0, true))
        .collect()
}

fn assert_equivalence(s: &Setup) {
    let q = &s.ds.queries[s.ds.split.test[0]];

    // Batched fused scoring == per-neighbor fused scoring, bit for bit.
    let ctx_a = s.models.query_context(q, true);
    let ctx_b = s.models.query_context(q, true);
    let batched = run_hops(s, &ctx_a, true);
    let per_nb = run_hops(s, &ctx_b, false);
    assert_eq!(batched, per_nb, "batched and per-neighbor batches diverged");

    // Cached tape-free pair embeddings == tape baseline, bit for bit.
    let ctx_tape = s.models.query_context(q, true);
    for g in 0..s.ds.graphs.len().min(12) as u32 {
        let fast = s.models.pair_embedding(&ctx_a, g, true);
        let tape = s.models.pair_embedding_tape(&ctx_tape, g, true);
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            tape.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "pair {g}: tape-free embedding differs from tape"
        );
    }

    // Tape hop ranking agrees with the fused path on this workload (the
    // fused heads reassociate sums, so this is an ulp-robustness check on
    // a deterministic instance, not a bitwise identity).
    let tape_batches = run_hops_tape(s, &ctx_tape);
    assert_eq!(
        batched, tape_batches,
        "tape and fused hop rankings diverged"
    );
    eprintln!("equivalence: OK ({} hops)", s.hops.len());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = build(smoke);
    assert_equivalence(&s);

    let q = &s.ds.queries[s.ds.split.test[0]];
    let n_pairs = s.ds.graphs.len() as u32;
    let reps = s.reps;

    // --- 1. Per-pair forward: tape vs tape-free, cold cache each rep. ---
    let t0 = Instant::now();
    for _ in 0..reps {
        let ctx = s.models.query_context(q, true);
        for g in 0..n_pairs {
            std::hint::black_box(s.models.pair_embedding_tape(&ctx, g, true));
        }
    }
    let pair_tape_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * n_pairs as usize) as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        let ctx = s.models.query_context(q, true);
        for g in 0..n_pairs {
            std::hint::black_box(s.models.pair_embedding(&ctx, g, true));
        }
    }
    let pair_infer_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * n_pairs as usize) as f64;
    let pair_speedup = pair_tape_us / pair_infer_us.max(1e-9);
    eprintln!(
        "pair_forward   tape {pair_tape_us:>9.2}us  infer {pair_infer_us:>9.2}us  speedup {pair_speedup:.2}x"
    );

    // --- 2. Full hop workload on a fresh context per rep (one query's
    //        ranking work, cache amortization included). ---
    let t0 = Instant::now();
    for _ in 0..reps {
        let ctx = s.models.query_context(q, true);
        std::hint::black_box(run_hops_tape(&s, &ctx));
    }
    let hop_tape_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * s.hops.len()) as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        let ctx = s.models.query_context(q, true);
        std::hint::black_box(run_hops(&s, &ctx, true));
    }
    let hop_batched_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * s.hops.len()) as f64;
    let hop_speedup = hop_tape_us / hop_batched_us.max(1e-9);
    eprintln!(
        "hop_workload   tape {hop_tape_us:>9.2}us  batched {hop_batched_us:>7.2}us  speedup {hop_speedup:.2}x"
    );

    // --- 3. Warm-cache hop ranking: pure head scoring. ---
    let ctx_tape = s.models.query_context(q, true);
    run_hops_tape(&s, &ctx_tape); // warm the pair cache
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(run_hops_tape(&s, &ctx_tape));
    }
    let warm_tape_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * s.hops.len()) as f64;
    let ctx_fast = s.models.query_context(q, true);
    run_hops(&s, &ctx_fast, true);
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(run_hops(&s, &ctx_fast, true));
    }
    let warm_batched_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * s.hops.len()) as f64;
    let warm_speedup = warm_tape_us / warm_batched_us.max(1e-9);
    eprintln!(
        "hop_cached     tape {warm_tape_us:>9.2}us  batched {warm_batched_us:>7.2}us  speedup {warm_speedup:.2}x"
    );

    // The acceptance gate: batched+cached hop-ranking (every pair embedding
    // cached, one fused forward per hop) must beat the tape path on the
    // same workload by at least 3x.
    assert!(
        warm_speedup >= 3.0,
        "batched+cached hop-ranking speedup {warm_speedup:.2}x below the 3x acceptance floor"
    );

    let forwards = lan_obs::counter(names::GNN_INFER_FORWARDS).get();
    let hits = lan_obs::counter(names::GNN_INFER_CACHE_HIT).get();
    let misses = lan_obs::counter(names::GNN_INFER_CACHE_MISS).get();
    eprintln!("gnn.infer.forwards {forwards}  cache hit {hits} / miss {misses}");

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\n  \"bench\": \"gnn_inference\",\n{}  \"smoke\": {smoke},\n  \"graphs\": {},\n  \"hops\": {},\n  \"reps\": {reps},\n  \"equivalence\": \"ok\",\n  \"pair_forward\": {{\"tape_us\": {pair_tape_us:.3}, \"infer_us\": {pair_infer_us:.3}, \"speedup\": {pair_speedup:.3}}},\n  \"hop_workload\": {{\"tape_us\": {hop_tape_us:.3}, \"batched_us\": {hop_batched_us:.3}, \"speedup\": {hop_speedup:.3}}},\n  \"hop_cached\": {{\"tape_us\": {warm_tape_us:.3}, \"batched_us\": {warm_batched_us:.3}, \"speedup\": {warm_speedup:.3}}},\n  \"speedup\": {warm_speedup:.3},\n  \"gnn_infer_forwards\": {forwards},\n  \"gnn_infer_cache_hit\": {hits},\n  \"gnn_infer_cache_miss\": {misses}\n}}\n",
        lan_bench::host_header_json(),
        s.ds.graphs.len(),
        s.hops.len(),
    );
    std::fs::write("results/BENCH_gnn.json", &json).expect("write results/BENCH_gnn.json");
    eprintln!("wrote results/BENCH_gnn.json");
    let _ = s.pg; // keep the proximity graph alive for the whole run
}
