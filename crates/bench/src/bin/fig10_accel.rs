//! Fig. 10: effect of cross-graph learning acceleration (CG) on end-to-end
//! k-ANN QPS — LAN with vs without the compressed GNN-graph.
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig10_accel
//! ```
//!
//! Paper shape: ~15–18% QPS increase at recall 0.95 (the GNN is ~20–30% of
//! query time and CG speeds that component up ~3–5×).

use lan_bench::{all_specs, beam_sweep, build_index, k_for, print_curve, Scale};
use lan_core::{harness, qps_at_recall, InitStrategy, RouteStrategy};

fn main() {
    let scale = Scale::from_env();
    let k = k_for(scale);
    let beams = beam_sweep(scale);

    for spec in all_specs() {
        let name = spec.name;
        let index = build_index(spec, scale);
        let test_q = index.dataset.split.test.clone();
        let truths = harness::ground_truths(&index, &test_q, k);

        println!("\n=== Fig 10 ({name}): LAN with vs without CG acceleration ===");
        let with_cg = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        print_curve("LAN(CG)", &with_cg);
        let without = harness::recall_qps_curve(
            &index,
            &test_q,
            &truths,
            k,
            &beams,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
        );
        print_curve("LAN(plain)", &without);

        for target in [0.9, 0.95] {
            if let (Some(a), Some(p)) = (
                qps_at_recall(&with_cg, target),
                qps_at_recall(&without, target),
            ) {
                println!(
                    "[{name}] @recall={target}: CG acceleration QPS gain = {:+.1}%",
                    (a / p - 1.0) * 100.0
                );
            }
        }
    }
    lan_bench::finish_obs("fig10_accel", &[]);
}
