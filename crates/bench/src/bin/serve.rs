//! Closed-loop serving load generator, written to
//! `results/BENCH_serve.json`.
//!
//! Boots the `lan-serve` front-end in-process over a `LAN_STORE`-cached
//! SYN tier (1k graphs / 4 shards under `--smoke`, 10k / 8 shards
//! otherwise — the scale campaign's cache keys, so a primed store boots
//! in seconds) and drives it with N closed-loop TCP clients, sweeping
//! N ∈ {1, 8, 64, 256} under two serving configurations:
//!
//! * **batch1** — micro-batching disabled (`batch = 1`, no batch wait):
//!   every query is scored alone, the pre-serving baseline;
//! * **batched** — the default micro-batch (`batch = 8`) with a bounded
//!   batch wait: co-batched queries share one fused-heads matmul per
//!   shard scoring pass.
//!
//! The request schedule is fixed per sweep point (client `c`'s `j`-th
//! request is query `(c·R + j) mod |Q|` with the query index as seed),
//! so both configurations answer the *same* request multiset and the
//! FNV-1a digest over full result lists (distance bits, ids, order, NDC)
//! must match between them — batching that changed any result bit would
//! show here. Per sweep point the bench records QPS, exact p50/p95/p99
//! client-side latency, batch-occupancy summary (from the
//! `serve.batch.occupancy` histogram), shed count, and total NDC; an
//! overload probe with an already-expired deadline then checks that load
//! shedding degrades into typed `overloaded` responses at rate 1.0.
//!
//! At 64 clients on a host with ≥ 4 hardware threads, batched QPS must
//! be ≥ 1.5x batch1 QPS at equal recall (digest equality *is* the equal
//! recall proof); below 4 threads the run is tagged
//! `"gate_status": "underprovisioned"` and no floor applies.
//!
//! ```text
//! cargo run --release -p lan-bench --bin serve [-- --smoke]
//! ```

use lan_bench::{build_sharded_cached, finish_obs, host_threads, underprovisioned};
use lan_core::{LanConfig, QuantConfig, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_graph::Graph;
use lan_models::ModelConfig;
use lan_pg::PgConfig;
use lan_serve::{serve, Client, Response, SearchCall, ServeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: usize = 10;
const B: usize = 2 * K;
const QUERIES: usize = 120;
const CLIENT_SWEEP: &[usize] = &[1, 8, 64, 256];
const BATCHED_BATCH: usize = 8;
const BATCHED_WAIT_US: u64 = 1000;

/// The scale campaign's index configuration (shared `LAN_STORE` keys).
fn serve_bench_config() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(6),
        model: ModelConfig {
            embed_dim: 16,
            epochs: 2,
            max_samples_per_epoch: 300,
            nh_cover_k: 20,
            clusters: 6,
            top_clusters: 2,
            mlp_hidden: 16,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: QuantConfig::from_env(),
    }
}

/// One answered request: (request id, full result list, NDC).
type ReqResult = (usize, Vec<(f64, u32)>, u64);

/// FNV-1a over rid-ordered full result lists — distance bits, ids,
/// order, and NDC all feed the digest (the equal-recall proof between
/// serving configurations).
fn digest(outs: &[ReqResult]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for (rid, results, ndc) in outs {
        eat(*rid as u64);
        eat(results.len() as u64);
        for &(d, id) in results {
            eat(d.to_bits());
            eat(id as u64);
        }
        eat(*ndc);
    }
    h
}

/// Exact percentile over the recorded per-request latencies.
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct LoadRun {
    requests: usize,
    wall_s: f64,
    qps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    shed: u64,
    digest: u64,
    total_ndc: u64,
    occupancy_batches: u64,
    occupancy_mean_x1000: u64,
}

impl LoadRun {
    fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"wall_s\": {:.4}, \"qps\": {:.3}, \"p50_us\": {}, \
             \"p95_us\": {}, \"p99_us\": {}, \"shed\": {}, \"digest\": \"{:#018x}\", \
             \"total_ndc\": {}, \"occupancy_batches\": {}, \"occupancy_mean_x1000\": {}}}",
            self.requests,
            self.wall_s,
            self.qps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.shed,
            self.digest,
            self.total_ndc,
            self.occupancy_batches,
            self.occupancy_mean_x1000,
        )
    }
}

/// Drives `clients` closed-loop TCP clients against a freshly booted
/// server (ephemeral port, `batch`/`wait_us` serving configuration),
/// `per_client` requests each, and collects the sweep-point record.
fn run_load(
    index: &Arc<ShardedLanIndex>,
    queries: &Arc<Vec<Graph>>,
    clients: usize,
    per_client: usize,
    batch: usize,
    wait_us: u64,
    deadline_ms: Option<u64>,
) -> LoadRun {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        batch,
        batch_wait: Duration::from_micros(wait_us),
        max_inflight: 1024,
    };
    let handle = serve(Arc::clone(index), cfg).expect("bind ephemeral port");
    let addr = handle.addr();
    let before = lan_obs::snapshot();
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let queries = Arc::clone(queries);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect load client");
                let mut oks: Vec<ReqResult> = Vec::new();
                let mut lat_us: Vec<u64> = Vec::new();
                let mut shed = 0u64;
                for j in 0..per_client {
                    let rid = c * per_client + j;
                    let qi = rid % queries.len();
                    let mut call = SearchCall::new(&queries[qi], K, B, qi as u64);
                    call.deadline_ms = deadline_ms;
                    let t_req = Instant::now();
                    let resp = client.search(&call).expect("request round-trip");
                    lat_us.push(t_req.elapsed().as_micros() as u64);
                    match resp {
                        Response::Ok(ok) => oks.push((rid, ok.results, ok.ndc)),
                        Response::Overloaded { .. } => shed += 1,
                        Response::Error { reason } => panic!("request {rid} rejected: {reason}"),
                    }
                }
                (oks, lat_us, shed)
            })
        })
        .collect();
    let mut oks: Vec<ReqResult> = Vec::new();
    let mut lat_us: Vec<u64> = Vec::new();
    let mut shed = 0u64;
    for t in threads {
        let (o, l, s) = t.join().expect("load client thread");
        oks.extend(o);
        lat_us.extend(l);
        shed += s;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    handle.shutdown();
    let diff = lan_obs::snapshot().diff(&before);
    let occ = diff.histogram(lan_obs::names::SERVE_BATCH_OCCUPANCY);
    oks.sort_by_key(|&(rid, _, _)| rid);
    lat_us.sort_unstable();
    let requests = clients * per_client;
    LoadRun {
        requests,
        wall_s,
        qps: requests as f64 / wall_s.max(1e-12),
        p50_us: percentile_us(&lat_us, 0.50),
        p95_us: percentile_us(&lat_us, 0.95),
        p99_us: percentile_us(&lat_us, 0.99),
        shed,
        digest: digest(&oks),
        total_ndc: oks.iter().map(|&(_, _, ndc)| ndc).sum(),
        occupancy_batches: occ.count,
        occupancy_mean_x1000: (occ.mean() * 1000.0) as u64,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (num_graphs, num_shards, total_requests): (usize, usize, usize) = if smoke {
        (1_000, 4, 96)
    } else {
        (10_000, 8, 256)
    };
    eprintln!("=== serve bench: {num_graphs} graphs, {num_shards} shards ===");
    let spec = DatasetSpec::syn()
        .with_graphs(num_graphs)
        .with_queries(QUERIES)
        .with_metric(lan_ged::GedMethod::Hungarian);
    let dataset = Dataset::generate_par(spec);
    let t0 = Instant::now();
    let index = Arc::new(build_sharded_cached(
        &dataset,
        &serve_bench_config(),
        num_shards,
    ));
    eprintln!("  index ready in {:.1}s", t0.elapsed().as_secs_f64());
    let queries = Arc::new(dataset.queries.clone());

    let mut sweep_jsons: Vec<String> = Vec::new();
    let mut gate_status = if underprovisioned() {
        "underprovisioned".to_string()
    } else {
        "pending".to_string()
    };
    let mut grand_total_ndc = 0u64;
    for &clients in CLIENT_SWEEP {
        let per_client = total_requests.div_ceil(clients);
        let solo = run_load(&index, &queries, clients, per_client, 1, 0, None);
        let fused = run_load(
            &index,
            &queries,
            clients,
            per_client,
            BATCHED_BATCH,
            BATCHED_WAIT_US,
            None,
        );
        // Digest equality is the equal-recall proof: same request
        // multiset, bit-identical answers under both configurations.
        assert_eq!(
            solo.digest, fused.digest,
            "{clients} clients: batched results diverged from batch=1"
        );
        assert_eq!(
            solo.total_ndc, fused.total_ndc,
            "{clients} clients: batched NDC diverged from batch=1"
        );
        assert_eq!((solo.shed, fused.shed), (0, 0), "unexpected shed in sweep");
        let speedup = fused.qps / solo.qps.max(1e-12);
        eprintln!(
            "  clients={clients:<4} batch1 {:>8.2} QPS | batched {:>8.2} QPS \
             ({speedup:.2}x, occupancy {:.2}, p95 {}us -> {}us)",
            solo.qps,
            fused.qps,
            fused.occupancy_mean_x1000 as f64 / 1000.0,
            solo.p95_us,
            fused.p95_us,
        );
        if clients == 64 && !underprovisioned() {
            if speedup >= 1.5 {
                gate_status = "passed".to_string();
            } else {
                panic!(
                    "batched QPS gate: {speedup:.2}x at 64 clients on a {}-thread host \
                     (floor: 1.5x with >= 4 threads)",
                    host_threads()
                );
            }
        }
        grand_total_ndc += solo.total_ndc + fused.total_ndc;
        sweep_jsons.push(format!(
            "    {{\n      \"clients\": {clients},\n      \"speedup\": {speedup:.3},\n      \
             \"batch1\": {},\n      \"batched\": {}\n    }}",
            solo.to_json(),
            fused.to_json(),
        ));
    }

    // Overload probe: an already-expired deadline must shed every request
    // as a typed `overloaded` response — the degradation path, exercised
    // deterministically.
    let overload = run_load(
        &index,
        &queries,
        8,
        4,
        BATCHED_BATCH,
        BATCHED_WAIT_US,
        Some(0),
    );
    assert_eq!(
        overload.shed as usize, overload.requests,
        "expired-deadline probe must shed every request"
    );
    eprintln!(
        "  overload probe: {}/{} shed (typed overloaded)",
        overload.shed, overload.requests
    );

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n{}  \"underprovisioned\": {},\n  \"smoke\": {smoke},\n  \
         \"k\": {K},\n  \"b\": {B},\n  \"graphs\": {num_graphs},\n  \
         \"num_shards\": {num_shards},\n  \"gate_status\": \"{gate_status}\",\n  \
         \"sweep\": [\n{}\n  ],\n  \"overload\": {{\"requests\": {}, \"shed\": {}, \
         \"shed_rate\": {:.1}}}\n}}\n",
        lan_bench::host_header_json(),
        underprovisioned(),
        sweep_jsons.join(",\n"),
        overload.requests,
        overload.shed,
        overload.shed as f64 / overload.requests as f64,
    );
    std::fs::write("results/BENCH_serve.json", &json).expect("write results/BENCH_serve.json");
    eprintln!("wrote results/BENCH_serve.json");
    finish_obs("serve", &[("total_ndc", grand_total_ndc)]);
}
