//! Fig. 8: precision of the initial-node (neighborhood) prediction model
//! `M_nh` on each dataset, plus the Lemma 2 implication for the sample
//! count `s`.
//!
//! ```text
//! cargo run --release -p lan-bench --bin fig8_precision
//! ```
//!
//! Paper shape: precision exceeds 0.7 on all datasets, so s = 4 samples put
//! at least one true neighbor in the pick with probability > 0.99.

use lan_bench::{all_specs, build_index, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Fig 8: M_nh prediction quality on test queries");
    println!("{:<10} {:>10} {:>10}", "Dataset", "precision", "recall");
    for spec in all_specs() {
        let index = build_index(spec, scale);
        let (precision, recall) = index
            .models
            .nh_precision_on(&index.dataset, &index.dataset.split.test);
        println!(
            "{:<10} {:>10.3} {:>10.3}",
            index.dataset.spec.name, precision, recall
        );
        // Lemma 2: P(at least one of s samples in N_Q) = 1 - (1 - p)^s.
        let s = index.cfg.model.init_samples as i32;
        let hit = 1.0 - (1.0 - precision).powi(s);
        println!("           Lemma 2 with s = {s}: P(sample hits N_Q) = {hit:.4}");
    }
    lan_bench::finish_obs("fig8_precision", &[]);
}
