//! Paper-scale benchmark campaign: 1k → 10k → 100k graph tiers, written
//! to `results/BENCH_scale.json`.
//!
//! The paper evaluates LAN on SYN up to 1M graphs; this campaign walks
//! the same curve as far as a workstation reasonably goes. Each tier:
//!
//! 1. generates its database with the seed-deterministic **parallel**
//!    generator (`Dataset::generate_par` — bit-identical at any thread
//!    count, so the `LAN_STORE` cache key stays valid across hosts);
//! 2. builds (or `open`s from `LAN_STORE`) a sharded index, shard count
//!    re-tuned per tier (see the table in DESIGN.md);
//! 3. computes exact ground truth for 120 queries;
//! 4. runs the query batch under all three `LAN_SCHED` executors —
//!    `seq`, `static`, `ws` — asserting result/NDC/`ged.calls`/EXPLAIN
//!    tier-attribution identity, and timing each;
//! 5. sweeps the beam width for a recall–QPS–NDC curve;
//! 6. samples the peak-RSS gauge and checks it against the tier's
//!    recorded memory ceiling.
//!
//! A ≥ 3x work-stealing speedup over sequential is asserted at the 10k
//! tier — but only on hosts with ≥ 4 hardware threads; below that the
//! run is tagged `"underprovisioned": true` and no speedup gate applies
//! (a 1x "speedup" on 1 core is the host's property, not a regression).
//!
//! ```text
//! cargo run --release -p lan-bench --bin scale [-- --smoke]
//! ```
//!
//! `--smoke` runs the 1k tier only (CI-sized; minutes, and seconds when
//! `LAN_STORE` already holds the index).

use lan_bench::{build_sharded_cached, finish_obs, host_threads, underprovisioned};
use lan_core::{InitStrategy, LanConfig, QuantConfig, RouteStrategy, ShardedLanIndex};
use lan_datasets::{recall_at_k_ties, Dataset, DatasetSpec};
use lan_graph::Graph;
use lan_models::ModelConfig;
use lan_par::testenv;
use lan_pg::PgConfig;
use std::time::Instant;

const K: usize = 10;
const QUERIES: usize = 120;

/// Tier table: name, database size, shard count, memory ceiling.
///
/// Shard counts are re-tuned per tier (smaller shards bound the HNSW
/// insert frontier and give the shard fan-out enough grains to steal);
/// ceilings are generous envelopes over the measured peaks — the gate
/// exists to catch an accidental O(n²) materialization, not to squeeze.
const TIERS: &[(&str, usize, usize, i64)] = &[
    ("1k", 1_000, 4, 2_000_000),
    ("10k", 10_000, 8, 4_000_000),
    ("100k", 100_000, 16, 8_000_000),
];

/// Index configuration for the campaign. Deliberately lean: the campaign
/// measures search scaling, and the Hungarian metric keeps the 100k tier
/// tractable on a workstation (BestOfThree at the 10k tier alone took
/// ~10 minutes of build in `BENCH_persist.json`).
fn scale_config() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(6),
        model: ModelConfig {
            embed_dim: 16,
            epochs: 2,
            max_samples_per_epoch: 300,
            nh_cover_k: 20,
            clusters: 6,
            top_clusters: 2,
            mlp_hidden: 16,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: QuantConfig::from_env(),
    }
}

/// FNV-1a over the full result lists — distances bit-for-bit, ids, and
/// order all feed the digest, so any scheduling-induced divergence shows.
fn digest(outs: &[lan_core::QueryOutcome]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for o in outs {
        eat(o.results.len() as u64);
        for &(d, id) in &o.results {
            eat(d.to_bits());
            eat(id as u64);
        }
        eat(o.ndc as u64);
    }
    h
}

struct ModeRun {
    wall_s: f64,
    qps: f64,
    digest: u64,
    total_ndc: u64,
    ged_calls: u64,
}

/// Runs the full query batch under one `LAN_SCHED` executor and captures
/// everything the identity contract covers.
fn run_mode(
    sched: &str,
    sharded: &ShardedLanIndex,
    queries: &[(usize, Graph)],
    b: usize,
) -> ModeRun {
    testenv::with_env(&[("LAN_SCHED", Some(sched))], || {
        let before = lan_obs::snapshot();
        let t0 = Instant::now();
        let outs: Vec<lan_core::QueryOutcome> =
            lan_par::par_map_dyn(queries, lan_par::Grain::Fine, |(qi, q)| {
                sharded.search(
                    q,
                    K,
                    b,
                    InitStrategy::LanIs,
                    RouteStrategy::LanRoute { use_cg: true },
                    *qi as u64,
                )
            });
        let wall = t0.elapsed().as_secs_f64();
        let ged_calls = lan_obs::snapshot()
            .diff(&before)
            .counter(lan_obs::names::GED_CALLS);
        ModeRun {
            wall_s: wall,
            qps: queries.len() as f64 / wall.max(1e-12),
            digest: digest(&outs),
            total_ndc: outs.iter().map(|o| o.ndc as u64).sum(),
            ged_calls,
        }
    })
}

/// Summed EXPLAIN tier attribution over a query subset — the scheduler
/// must not move a single evaluation between cascade tiers.
fn tier_attribution(
    sched: &str,
    sharded: &ShardedLanIndex,
    queries: &[(usize, Graph)],
    b: usize,
) -> (u64, u64, u64, u64) {
    testenv::with_env(&[("LAN_SCHED", Some(sched))], || {
        let mut sums = (0u64, 0u64, 0u64, 0u64);
        for (qi, q) in queries {
            let (_, ex) = sharded.search_explain(
                q,
                K,
                b,
                InitStrategy::LanIs,
                RouteStrategy::LanRoute { use_cg: true },
                *qi as u64,
            );
            sums.0 += ex.tiers.quant_skips;
            sums.1 += ex.tiers.lb_prunes;
            sums.2 += ex.tiers.tau_aborts;
            sums.3 += ex.tiers.full_solves;
        }
        sums
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let tiers: &[(&str, usize, usize, i64)] = if smoke { &TIERS[..1] } else { TIERS };
    let cfg = scale_config();
    let b_main = 2 * K;
    let beams = [K, 2 * K, 4 * K];
    let mut tier_jsons: Vec<String> = Vec::new();
    let mut grand_total_ndc: u64 = 0;

    for &(name, num_graphs, num_shards, mem_ceiling_kb) in tiers {
        eprintln!("=== tier {name}: {num_graphs} graphs, {num_shards} shards ===");
        let spec = DatasetSpec::syn()
            .with_graphs(num_graphs)
            .with_queries(QUERIES)
            .with_metric(lan_ged::GedMethod::Hungarian);
        let t0 = Instant::now();
        let dataset = Dataset::generate_par(spec);
        let gen_s = t0.elapsed().as_secs_f64();
        eprintln!(
            "  generated in {gen_s:.1}s (avg |V| = {:.1})",
            dataset.avg_nodes()
        );

        let t0 = Instant::now();
        let sharded = build_sharded_cached(&dataset, &cfg, num_shards);
        let build_s = t0.elapsed().as_secs_f64();
        eprintln!("  index ready in {build_s:.1}s");

        let queries: Vec<(usize, Graph)> = dataset.queries.iter().cloned().enumerate().collect();
        let t0 = Instant::now();
        let truth_kth: Vec<f64> = lan_par::par_map_dyn(&queries, lan_par::Grain::Fine, |(_, q)| {
            dataset
                .ground_truth_knn(q, K)
                .last()
                .map(|&(d, _)| d)
                .unwrap_or(f64::INFINITY)
        });
        let gt_s = t0.elapsed().as_secs_f64();
        eprintln!("  ground truth in {gt_s:.1}s");

        // The scheduler-identity contract, checked end to end at bench
        // scale (the property tests pin it at unit scale).
        let seq = run_mode("seq", &sharded, &queries, b_main);
        let sta = run_mode("static", &sharded, &queries, b_main);
        let ws = run_mode("ws", &sharded, &queries, b_main);
        assert_eq!(
            seq.digest, sta.digest,
            "static results diverged from sequential"
        );
        assert_eq!(
            seq.digest, ws.digest,
            "work-stealing results diverged from sequential"
        );
        assert_eq!(seq.total_ndc, sta.total_ndc, "static NDC diverged");
        assert_eq!(seq.total_ndc, ws.total_ndc, "work-stealing NDC diverged");
        assert_eq!(seq.ged_calls, sta.ged_calls, "static ged.calls diverged");
        assert_eq!(
            seq.ged_calls, ws.ged_calls,
            "work-stealing ged.calls diverged"
        );
        let explain_subset = &queries[..queries.len().min(8)];
        let tiers_seq = tier_attribution("seq", &sharded, explain_subset, b_main);
        let tiers_ws = tier_attribution("ws", &sharded, explain_subset, b_main);
        assert_eq!(
            tiers_seq, tiers_ws,
            "EXPLAIN tier attribution diverged across schedulers"
        );
        let speedup = ws.qps / seq.qps.max(1e-12);
        eprintln!(
            "  seq {:.2} QPS | static {:.2} QPS | ws {:.2} QPS (speedup {speedup:.2}x)",
            seq.qps, sta.qps, ws.qps
        );
        if name == "10k" && !underprovisioned() {
            assert!(
                speedup >= 3.0,
                "work-stealing speedup {speedup:.2}x at the 10k tier on a {}-thread host \
                 (floor: 3x with >= 4 threads)",
                host_threads()
            );
        }
        grand_total_ndc += seq.total_ndc + sta.total_ndc + ws.total_ndc;
        // Per plan, `lb_prunes + tau_aborts + full_solves == ndc` (the
        // reconciliation obs_check enforces); quant_skips never became
        // distance computations, so they stay out of the NDC sum.
        grand_total_ndc += tiers_seq.1 + tiers_seq.2 + tiers_seq.3;
        grand_total_ndc += tiers_ws.1 + tiers_ws.2 + tiers_ws.3;

        // Recall–QPS–NDC curve over the beam sweep (work-stealing mode).
        let mut curve: Vec<(usize, f64, f64, f64)> = Vec::new();
        for &b in &beams {
            let outs: Vec<lan_core::QueryOutcome> =
                lan_par::par_map_dyn(&queries, lan_par::Grain::Fine, |(qi, q)| {
                    sharded.search(
                        q,
                        K,
                        b,
                        InitStrategy::LanIs,
                        RouteStrategy::LanRoute { use_cg: true },
                        *qi as u64,
                    )
                });
            let recall = outs
                .iter()
                .zip(&truth_kth)
                .map(|(o, &kth)| recall_at_k_ties(&o.results, kth, K))
                .sum::<f64>()
                / outs.len() as f64;
            let ndc: u64 = outs.iter().map(|o| o.ndc as u64).sum();
            grand_total_ndc += ndc;
            let wall: f64 = outs.iter().map(|o| o.total_time.as_secs_f64()).sum();
            let qps = outs.len() as f64 / wall.max(1e-12);
            eprintln!(
                "  b={b:<3} recall@{K}={recall:.3} QPS={qps:.2} avgNDC={:.1}",
                ndc as f64 / outs.len() as f64
            );
            curve.push((b, recall, qps, ndc as f64 / outs.len() as f64));
        }
        // Curve-shape sanity: recall must not collapse as the beam widens
        // (the parity contract the CI smoke run holds the 1k tier to).
        let first = curve.first().unwrap().1;
        let last = curve.last().unwrap().1;
        assert!(
            last + 1e-9 >= first - 0.05,
            "recall curve degenerates with beam width: {first:.3} -> {last:.3}"
        );

        let peak_rss_kb = lan_obs::mem::sample_peak_rss();
        if peak_rss_kb > 0 {
            assert!(
                peak_rss_kb < mem_ceiling_kb,
                "tier {name} peak RSS {peak_rss_kb} kB exceeds the recorded ceiling \
                 {mem_ceiling_kb} kB"
            );
        }
        eprintln!("  peak RSS {peak_rss_kb} kB (ceiling {mem_ceiling_kb} kB)");

        let curve_json: Vec<String> = curve
            .iter()
            .map(|&(b, recall, qps, avg_ndc)| {
                format!(
                    "        {{\"b\": {b}, \"recall\": {recall:.4}, \"qps\": {qps:.3}, \
                     \"avg_ndc\": {avg_ndc:.2}}}"
                )
            })
            .collect();
        tier_jsons.push(format!(
            "    {{\n      \"tier\": \"{name}\",\n      \"graphs\": {num_graphs},\n      \
             \"queries\": {},\n      \"num_shards\": {num_shards},\n      \
             \"gen_wall_s\": {gen_s:.3},\n      \"build_wall_s\": {build_s:.3},\n      \
             \"ground_truth_wall_s\": {gt_s:.3},\n      \"total_ndc\": {},\n      \
             \"sequential\": {{\"wall_s\": {:.4}, \"qps\": {:.3}}},\n      \
             \"static\": {{\"wall_s\": {:.4}, \"qps\": {:.3}}},\n      \
             \"work_stealing\": {{\"wall_s\": {:.4}, \"qps\": {:.3}}},\n      \
             \"speedup\": {speedup:.3},\n      \"peak_rss_kb\": {peak_rss_kb},\n      \
             \"mem_ceiling_kb\": {mem_ceiling_kb},\n      \"curve\": [\n{}\n      ]\n    }}",
            queries.len(),
            seq.total_ndc,
            seq.wall_s,
            seq.qps,
            sta.wall_s,
            sta.qps,
            ws.wall_s,
            ws.qps,
            curve_json.join(",\n"),
        ));
    }

    std::fs::create_dir_all("results").expect("create results/");
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n{}  \"underprovisioned\": {},\n  \"smoke\": {smoke},\n  \
         \"k\": {K},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        lan_bench::host_header_json(),
        underprovisioned(),
        tier_jsons.join(",\n"),
    );
    std::fs::write("results/BENCH_scale.json", &json).expect("write results/BENCH_scale.json");
    eprintln!("wrote results/BENCH_scale.json");
    finish_obs("scale", &[("total_ndc", grand_total_ndc)]);
}
