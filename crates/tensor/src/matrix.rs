//! Dense row-major `f32` matrices.
//!
//! Deliberately minimal: just the operations the LAN models need, with
//! shapes checked by assertions. Matmul is a cache-friendly i-k-j loop; at
//! the paper's scales (embedding dim 32–128, graphs of tens of nodes) this
//! is plenty without SIMD intrinsics.

use rand::Rng;

/// A dense `rows × cols` matrix of `f32`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// From a row-major vector. Panics on length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds entry-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The single scalar entry of a 1×1 matrix.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar() on non-1x1 matrix");
        self.data[0]
    }

    /// Reshapes in place to `rows × cols`, reusing the existing allocation,
    /// and zeroes the contents. The workhorse of the `*_into` kernels.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self @ rhs`. Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned output, reusing its
    /// allocation. Bit-identical to `matmul` (same i-k-j axpy loop, same
    /// accumulation order, same zero-skip).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        out.reset(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let o_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // adjacency-style operands are mostly zero
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self @ rhs_t.T` with the right-hand side already transposed:
    /// `out[i][j] = self.row(i) · rhs_t.row(j)`. Both operands stream
    /// row-major, so the inner loop is a pure dot product that the
    /// autovectorizer turns into SIMD lanes (see [`dot`]). Use this layout
    /// for dense weight matrices on the inference fast path; accumulation
    /// order differs from [`Matrix::matmul`] by reassociation only
    /// (ulp-scale differences).
    pub fn matmul_transb(&self, rhs_t: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transb_into(rhs_t, &mut out);
        out
    }

    /// [`Matrix::matmul_transb`] into a caller-owned output.
    pub fn matmul_transb_into(&self, rhs_t: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs_t.cols,
            "matmul_transb shape mismatch {:?} x {:?}^T",
            self.shape(),
            rhs_t.shape()
        );
        out.reset(self.rows, rhs_t.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let o_row = &mut out.data[i * rhs_t.rows..(i + 1) * rhs_t.rows];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &rhs_t.data[j * rhs_t.cols..(j + 1) * rhs_t.cols];
                *o = dot(a_row, b_row);
            }
        }
    }

    /// Row-vector product `out = x @ self` (`x: 1 × rows`, `out: 1 × cols`)
    /// as an axpy sweep over the rows of `self`, reusing `out`'s
    /// allocation. Bit-identical to `matmul` on a `1 × rows` left operand
    /// (same k-order accumulation, same zero-skip).
    pub fn matvec_axpy(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.rows, "matvec_axpy length mismatch");
        out.clear();
        out.resize(self.cols, 0.0);
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = &self.data[k * self.cols..(k + 1) * self.cols];
            for (o, &b) in out.iter_mut().zip(b_row) {
                *o += a * b;
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn mul_elem(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "mul_elem shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.data[i * cols..i * cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * cols + self.cols..(i + 1) * cols].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Maximum absolute entry difference; convergence/equality metric.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Dot product with four independent accumulators over unrolled blocks so
/// the compiler can keep partial sums in separate SIMD lanes (a single
/// serial accumulator is a loop-carried dependency that blocks
/// vectorization). Reassociates relative to a serial sum: differences are
/// ulp-scale.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.mul_elem(&b).data(), &[4., 10., 18.]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_vec(2, 1, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1., 3., 4.]);
        assert_eq!(c.row(1), &[2., 5., 6.]);
    }

    #[test]
    fn xavier_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::xavier(&mut rng, 16, 16);
        let a = (6.0f32 / 32.0).sqrt();
        assert!(m.data().iter().all(|&x| x > -a && x < a));
        // Not all zero.
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn scalar_accessor() {
        let m = Matrix::from_vec(1, 1, vec![3.5]);
        assert_eq!(m.scalar(), 3.5);
    }

    #[test]
    fn norm_and_sum() {
        let m = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert_eq!(m.norm(), 5.0);
        assert_eq!(m.sum(), 7.0);
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![1., 2.5, 2.]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn matmul_into_matches_matmul_and_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Matrix::zeros(1, 1);
        for _ in 0..10 {
            let a = Matrix::from_fn(5, 7, |_, _| rng.gen_range(-1.0..1.0f32));
            let b = Matrix::from_fn(7, 3, |_, _| rng.gen_range(-1.0..1.0f32));
            a.matmul_into(&b, &mut out);
            assert_eq!(out, a.matmul(&b), "matmul_into diverged");
        }
    }

    #[test]
    fn matmul_transb_matches_plain_matmul() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let a = Matrix::from_fn(6, 9, |_, _| rng.gen_range(-1.0..1.0f32));
            let b = Matrix::from_fn(9, 4, |_, _| rng.gen_range(-1.0..1.0f32));
            let want = a.matmul(&b);
            let got = a.matmul_transb(&b.transpose());
            assert_eq!(got.shape(), want.shape());
            assert!(
                got.max_abs_diff(&want) < 1e-5,
                "transb diverged by {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn matvec_axpy_matches_matmul_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut out = Vec::new();
        for _ in 0..10 {
            // Include exact zeros so the skip-zero path is exercised.
            let x: Vec<f32> = (0..8)
                .map(|i| {
                    if i % 3 == 0 {
                        0.0
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect();
            let m = Matrix::from_fn(8, 5, |_, _| rng.gen_range(-1.0..1.0f32));
            m.matvec_axpy(&x, &mut out);
            let want = Matrix::from_vec(1, 8, x.clone()).matmul(&m);
            assert_eq!(out.as_slice(), want.data(), "axpy not bit-identical");
        }
    }

    #[test]
    fn dot_matches_serial_sum() {
        let mut rng = StdRng::seed_from_u64(14);
        for len in [0usize, 1, 3, 4, 7, 16, 33] {
            let a: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let serial: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - serial).abs() < 1e-5);
        }
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        m.reset(3, 1);
        assert_eq!(m.shape(), (3, 1));
        assert!(m.data().iter().all(|&x| x == 0.0));
        m.row_mut(1)[0] = 5.0;
        assert_eq!(m.get(1, 0), 5.0);
    }
}
