//! Dense row-major `f32` matrices.
//!
//! Deliberately minimal: just the operations the LAN models need, with
//! shapes checked by assertions. Matmul is a cache-friendly i-k-j loop; at
//! the paper's scales (embedding dim 32–128, graphs of tens of nodes) this
//! is plenty without SIMD intrinsics.

use rand::Rng;

/// A dense `rows × cols` matrix of `f32`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// From a row-major vector. Panics on length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds entry-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The single scalar entry of a 1×1 matrix.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar() on non-1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self @ rhs`. Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let o_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // adjacency-style operands are mostly zero
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn mul_elem(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "mul_elem shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.data[i * cols..i * cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * cols + self.cols..(i + 1) * cols].copy_from_slice(rhs.row(i));
        }
        out
    }

    /// Maximum absolute entry difference; convergence/equality metric.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.mul_elem(&b).data(), &[4., 10., 18.]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_vec(2, 1, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1., 3., 4.]);
        assert_eq!(c.row(1), &[2., 5., 6.]);
    }

    #[test]
    fn xavier_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::xavier(&mut rng, 16, 16);
        let a = (6.0f32 / 32.0).sqrt();
        assert!(m.data().iter().all(|&x| x > -a && x < a));
        // Not all zero.
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn scalar_accessor() {
        let m = Matrix::from_vec(1, 1, vec![3.5]);
        assert_eq!(m.scalar(), 3.5);
    }

    #[test]
    fn norm_and_sum() {
        let m = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert_eq!(m.norm(), 5.0);
        assert_eq!(m.sum(), 7.0);
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![1., 2.5, 2.]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
