//! On-disk codec for [`Matrix`] and trained [`ParamStore`] values.
//!
//! Only parameter *values* are serialized — gradients and Adam moments
//! are training state that a loaded (inference-only) index never touches.
//! Loading overwrites the values of an already-structured store: the
//! consumer first replays the network construction that allocated the
//! parameters (shapes are a pure function of the model config), then
//! calls [`ParamStore::store_load_values`], which cross-checks the count
//! and every shape so a file from a different config is rejected as
//! [`StoreError::Corrupt`] instead of silently mis-assigning weights.

use crate::matrix::Matrix;
use crate::param::ParamStore;
use lan_store::{Dec, Enc, StoreError};

impl Matrix {
    /// Serializes shape + the `f32` slab.
    pub fn store_encode(&self, enc: &mut Enc) {
        enc.put_u32(self.rows() as u32);
        enc.put_u32(self.cols() as u32);
        enc.put_f32_slice(self.data());
    }

    /// Decodes one matrix, validating the slab length against the shape.
    pub fn store_decode(dec: &mut Dec<'_>) -> Result<Matrix, StoreError> {
        let rows = dec.get_u32()? as usize;
        let cols = dec.get_u32()? as usize;
        let data = dec.get_f32_slice()?;
        let expect = rows
            .checked_mul(cols)
            .ok_or_else(|| StoreError::corrupt(format!("matrix shape {rows}x{cols} overflows")))?;
        if data.len() != expect {
            return Err(StoreError::corrupt(format!(
                "matrix {rows}x{cols} carries {} values",
                data.len()
            )));
        }
        Ok(Matrix::from_vec(rows, cols, data.to_vec()))
    }
}

impl ParamStore {
    /// Serializes every parameter's current value, in id order.
    pub fn store_encode_values(&self, enc: &mut Enc) {
        enc.put_u32(self.len() as u32);
        for id in 0..self.len() {
            self.value(id).store_encode(enc);
        }
    }

    /// Overwrites this store's parameter values from a stream written by
    /// [`ParamStore::store_encode_values`]. The store must already hold
    /// identically-shaped parameters in the same order.
    pub fn store_load_values(&mut self, dec: &mut Dec<'_>) -> Result<(), StoreError> {
        let count = dec.get_u32()? as usize;
        if count != self.len() {
            return Err(StoreError::corrupt(format!(
                "param store holds {} parameters, file has {count}",
                self.len()
            )));
        }
        for id in 0..count {
            let m = Matrix::store_decode(dec)?;
            let dst = self.value_mut(id);
            if (m.rows(), m.cols()) != (dst.rows(), dst.cols()) {
                return Err(StoreError::corrupt(format!(
                    "param {id}: expected {}x{}, file has {}x{}",
                    dst.rows(),
                    dst.cols(),
                    m.rows(),
                    m.cols()
                )));
            }
            *dst = m;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_store::{Archive, Writer};

    fn archive_of(enc: Enc) -> Archive {
        let mut w = Writer::new();
        w.add_section("s", enc);
        Archive::from_bytes(&w.to_bytes()).unwrap()
    }

    #[test]
    fn matrix_round_trip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.5, 0.0, f32::MIN, f32::MAX, 3.25]);
        let mut enc = Enc::new();
        m.store_encode(&mut enc);
        let a = archive_of(enc);
        let mut d = a.section("s").unwrap();
        let back = Matrix::store_decode(&mut d).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back.cols(), 3);
        assert_eq!(back.data(), m.data());
    }

    #[test]
    fn param_store_values_round_trip() {
        let mut src = ParamStore::new();
        src.add(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        src.add(Matrix::from_vec(1, 3, vec![-1.0, 0.5, 9.0]));
        let mut enc = Enc::new();
        src.store_encode_values(&mut enc);

        // A freshly-constructed store with the same shapes but zeroed
        // values (what the network-construction replay produces).
        let mut dst = ParamStore::new();
        dst.add(Matrix::zeros(2, 2));
        dst.add(Matrix::zeros(1, 3));
        let a = archive_of(enc);
        let mut d = a.section("s").unwrap();
        dst.store_load_values(&mut d).unwrap();
        d.expect_end().unwrap();
        assert_eq!(dst.value(0).data(), src.value(0).data());
        assert_eq!(dst.value(1).data(), src.value(1).data());
    }

    #[test]
    fn shape_and_count_mismatches_are_typed() {
        let mut src = ParamStore::new();
        src.add(Matrix::zeros(2, 2));
        let mut enc = Enc::new();
        src.store_encode_values(&mut enc);
        let a = archive_of(enc);

        // Count mismatch.
        let mut dst = ParamStore::new();
        let mut d = a.section("s").unwrap();
        assert!(matches!(
            dst.store_load_values(&mut d),
            Err(StoreError::Corrupt { .. })
        ));

        // Shape mismatch.
        let mut dst = ParamStore::new();
        dst.add(Matrix::zeros(3, 2));
        let mut d = a.section("s").unwrap();
        assert!(matches!(
            dst.store_load_values(&mut d),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
