//! Minimal dense-matrix autodiff and neural-network stack for LAN.
//!
//! The paper trains its models (`M_rk`, `M_nh`, `M_c`) with PyTorch on a
//! GPU; offline GNN tooling for Rust is thin, so this crate implements the
//! required substrate from scratch:
//!
//! * [`matrix`] — dense `f32` matrices with the handful of ops the models
//!   need;
//! * [`param`] — a registry of trainable parameters with gradients and Adam
//!   moments;
//! * [`tape`] — tape-based reverse-mode autodiff, validated against finite
//!   differences for every op;
//! * [`nn`] — linear layers and MLPs;
//! * [`optim`] — Adam plus the paper's step-decay learning-rate schedule
//!   (0.005, ×0.96 every 5 epochs);
//! * [`simd`] — runtime-dispatched integer kernels (Hamming over packed
//!   sign codes, `u8` dot product) for the quantized prefilter tier, with
//!   bit-identical scalar fallbacks.
//!
//! # Example: one gradient step
//!
//! ```
//! use lan_tensor::{Matrix, ParamStore, Tape, Adam};
//!
//! let mut store = ParamStore::new();
//! let p = store.add(Matrix::from_vec(1, 1, vec![4.0]));
//! let mut adam = Adam::new(0.1);
//!
//! let mut tape = Tape::new();
//! let v = tape.param(&store, p);
//! let loss = tape.mse(v, Matrix::zeros(1, 1));
//! store.zero_grads();
//! tape.backward(loss, &mut store);
//! adam.step(&mut store);
//! assert!(store.value(p).scalar() < 4.0);
//! ```

pub mod matrix;
pub mod nn;
pub mod optim;
pub mod param;
pub mod simd;
pub mod store;
pub mod tape;

pub use matrix::{dot, Matrix};
pub use nn::{FusedHeads, Linear, Mlp, MlpScratch};
pub use optim::{Adam, StepDecay};
pub use param::ParamStore;
pub use simd::{dot_u8, hamming, kernel_path, KernelPath};
pub use tape::{sigmoid, Tape, Var};
