//! Neural-network building blocks: linear layers and MLPs.

use crate::matrix::Matrix;
use crate::param::ParamStore;
use crate::tape::{Tape, Var};
use rand::Rng;

/// A fully connected layer `y = x W + b` with `W: in × out`, `b: 1 × out`
/// broadcast over rows via an explicit ones-column product (keeps the op set
/// minimal).
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: usize,
    pub b: usize,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized layer in `store`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(Matrix::xavier(rng, in_dim, out_dim));
        let b = store.add(Matrix::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Records the forward pass for an `n × in_dim` input.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let n = tape.value(x).rows();
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        if n == 1 {
            tape.add(xw, b)
        } else {
            // Broadcast the bias: ones (n×1) @ b (1×out).
            let ones = tape.leaf(Matrix::ones(n, 1));
            let bb = tape.matmul(ones, b);
            tape.add(xw, bb)
        }
    }
}

/// Multi-layer perceptron with ReLU between layers and a linear head.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[in, hidden, out]`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, store: &mut ParamStore, dims: &[usize]) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(rng, store, w[0], w[1]))
            .collect();
        Mlp { layers }
    }

    /// Records the forward pass (ReLU after every layer except the last).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut rng, &mut store, 4, 3);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(5, 4));
        let y = lin.forward(&mut t, &store, x);
        assert_eq!(t.value(y).shape(), (5, 3));
    }

    #[test]
    fn bias_broadcast_rows_equal_on_equal_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut rng, &mut store, 3, 2);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(4, 3));
        let y = lin.forward(&mut t, &store, x);
        let v = t.value(y);
        for i in 1..4 {
            assert_eq!(v.row(i), v.row(0));
        }
    }

    #[test]
    fn mlp_learns_xor_like_separation() {
        // Tiny sanity check that the full train loop (tape + params + Adam)
        // reduces loss on a nonlinear problem.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut rng, &mut store, &[2, 8, 1]);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut adam = Adam::new(0.05);
        let loss_at = |store: &ParamStore, mlp: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| {
                    let mut t = Tape::new();
                    let xv = t.leaf(Matrix::from_vec(1, 2, x.to_vec()));
                    let logit = mlp.forward(&mut t, store, xv);
                    let l = t.bce_with_logits(logit, *y);
                    t.value(l).scalar()
                })
                .sum::<f32>()
                / 4.0
        };
        let initial = loss_at(&store, &mlp);
        for _ in 0..300 {
            store.zero_grads();
            for (x, y) in &data {
                let mut t = Tape::new();
                let xv = t.leaf(Matrix::from_vec(1, 2, x.to_vec()));
                let logit = mlp.forward(&mut t, &store, xv);
                let l = t.bce_with_logits(logit, *y);
                t.backward(l, &mut store);
            }
            adam.step(&mut store);
        }
        let trained = loss_at(&store, &mlp);
        assert!(
            trained < initial * 0.3,
            "XOR training failed: {initial} -> {trained}"
        );
    }

    #[test]
    fn mlp_dims() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut rng, &mut store, &[6, 4, 2]);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(store.len(), 4); // 2 layers x (W, b)
    }
}
