//! Neural-network building blocks: linear layers and MLPs, plus the
//! tape-free inference kernels ([`Mlp::infer_scalar`], [`FusedHeads`]) used
//! by the query-time fast path.

use crate::matrix::Matrix;
use crate::param::ParamStore;
use crate::tape::{Tape, Var};
use rand::Rng;

/// A fully connected layer `y = x W + b` with `W: in × out`, `b: 1 × out`
/// broadcast over rows via an explicit ones-column product (keeps the op set
/// minimal).
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: usize,
    pub b: usize,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized layer in `store`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(Matrix::xavier(rng, in_dim, out_dim));
        let b = store.add(Matrix::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Records the forward pass for an `n × in_dim` input.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let n = tape.value(x).rows();
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        if n == 1 {
            tape.add(xw, b)
        } else {
            // Broadcast the bias: ones (n×1) @ b (1×out).
            let ones = tape.leaf(Matrix::ones(n, 1));
            let bb = tape.matmul(ones, b);
            tape.add(xw, bb)
        }
    }
}

/// Multi-layer perceptron with ReLU between layers and a linear head.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[in, hidden, out]`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, store: &mut ParamStore, dims: &[usize]) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(rng, store, w[0], w[1]))
            .collect();
        Mlp { layers }
    }

    /// Records the forward pass (ReLU after every layer except the last).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(|l| l.in_dim).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_dim).unwrap_or(0)
    }

    /// Tape-free forward for a single input row with a scalar output.
    /// Bit-identical to the tape path ([`Mlp::forward`] on a `1 × in_dim`
    /// leaf): same axpy matmul, same bias-after-matmul order, same ReLU.
    /// `scratch` carries the ping-pong activation buffers across calls.
    pub fn infer_scalar(&self, store: &ParamStore, x: &[f32], scratch: &mut MlpScratch) -> f32 {
        assert_eq!(x.len(), self.in_dim(), "infer_scalar input dim mismatch");
        assert_eq!(self.out_dim(), 1, "infer_scalar needs a scalar head");
        let MlpScratch { a, b } = scratch;
        a.clear();
        a.extend_from_slice(x);
        for (i, layer) in self.layers.iter().enumerate() {
            let w = store.value(layer.w);
            w.matvec_axpy(a, b);
            let bias = store.value(layer.b);
            for (o, &bb) in b.iter_mut().zip(bias.data()) {
                *o += bb;
            }
            if i + 1 < self.layers.len() {
                for o in b.iter_mut() {
                    *o = o.max(0.0);
                }
            }
            std::mem::swap(a, b);
        }
        a[0]
    }
}

/// Reusable activation buffers for [`Mlp::infer_scalar`].
#[derive(Debug, Default)]
pub struct MlpScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

/// A bank of identically-shaped `[d, h, 1]` MLP heads fused into two dense
/// matrices so all heads score a whole batch of inputs with one matmul
/// instead of `heads × rows` separate 1×d tapes.
///
/// Layer-1 weights are stored side by side (`w1: d × (heads·h)`, column
/// `head·h + j` = column `j` of that head's `W1`), so the batched layer-1
/// is one axpy [`Matrix::matmul_into`] — the inner loop runs over the
/// `heads·h` contiguous outputs, which vectorizes, instead of a
/// latency-bound dot per output. Because that is the *same* kernel (and
/// the same k-order accumulation, zero-skip included) the tape's `matmul`
/// op uses, a fused logit is bit-identical to the per-head tape forward.
/// Each output row depends only on its own input row, so scoring a batch
/// is also bit-identical to scoring its rows one at a time.
#[derive(Debug, Clone)]
pub struct FusedHeads {
    pub num_heads: usize,
    pub in_dim: usize,
    pub hidden: usize,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
}

impl FusedHeads {
    /// Snapshots the given heads' parameters. All heads must be two-layer
    /// `[d, h, 1]` MLPs of identical shape.
    pub fn new(heads: &[Mlp], store: &ParamStore) -> Self {
        assert!(!heads.is_empty(), "FusedHeads needs at least one head");
        let in_dim = heads[0].in_dim();
        let hidden = heads[0].layers[0].out_dim;
        let num_heads = heads.len();
        let mut w1 = Matrix::zeros(in_dim, num_heads * hidden);
        let mut b1 = vec![0.0f32; num_heads * hidden];
        let mut w2 = Matrix::zeros(num_heads, hidden);
        let mut b2 = vec![0.0f32; num_heads];
        for (hd, head) in heads.iter().enumerate() {
            assert_eq!(head.layers.len(), 2, "FusedHeads: heads must be [d,h,1]");
            assert_eq!(head.in_dim(), in_dim, "FusedHeads: in_dim mismatch");
            assert_eq!(
                head.layers[0].out_dim, hidden,
                "FusedHeads: hidden mismatch"
            );
            assert_eq!(head.out_dim(), 1, "FusedHeads: heads must be scalar");
            let l1w = store.value(head.layers[0].w); // d × h
            let l1b = store.value(head.layers[0].b); // 1 × h
            let l2w = store.value(head.layers[1].w); // h × 1
            let l2b = store.value(head.layers[1].b); // 1 × 1
            for j in 0..hidden {
                for k in 0..in_dim {
                    w1.set(k, hd * hidden + j, l1w.get(k, j));
                }
                b1[hd * hidden + j] = l1b.get(0, j);
                w2.set(hd, j, l2w.get(j, 0));
            }
            b2[hd] = l2b.get(0, 0);
        }
        FusedHeads {
            num_heads,
            in_dim,
            hidden,
            w1,
            b1,
            w2,
            b2,
        }
    }

    /// Scores every row of `x` (`n × in_dim`) with every head:
    /// `out[i][head]` is that head's pre-sigmoid logit for row `i`,
    /// bit-identical to that head's own tape forward on that row.
    /// `hidden` is a reusable `n × (heads·h)` scratch buffer.
    pub fn score_into(&self, x: &Matrix, hidden: &mut Matrix, out: &mut Matrix) {
        let n = x.rows();
        x.matmul_into(&self.w1, hidden);
        for i in 0..n {
            let row = hidden.row_mut(i);
            for (v, &b) in row.iter_mut().zip(&self.b1) {
                *v = (*v + b).max(0.0);
            }
        }
        out.reset(n, self.num_heads);
        for i in 0..n {
            let h_row = hidden.row(i);
            for hd in 0..self.num_heads {
                // Serial k-order accumulation with the zero-skip, exactly
                // like the tape's 1×h @ h×1 matmul — ReLU zeros are skipped
                // there, so they must be skipped here for bitwise parity.
                let h_slice = &h_row[hd * self.hidden..(hd + 1) * self.hidden];
                let w_row = self.w2.row(hd);
                let mut s = 0.0f32;
                for (k, &hk) in h_slice.iter().enumerate() {
                    if hk == 0.0 {
                        continue;
                    }
                    s += hk * w_row[k];
                }
                out.set(i, hd, s + self.b2[hd]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut rng, &mut store, 4, 3);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(5, 4));
        let y = lin.forward(&mut t, &store, x);
        assert_eq!(t.value(y).shape(), (5, 3));
    }

    #[test]
    fn bias_broadcast_rows_equal_on_equal_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut rng, &mut store, 3, 2);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(4, 3));
        let y = lin.forward(&mut t, &store, x);
        let v = t.value(y);
        for i in 1..4 {
            assert_eq!(v.row(i), v.row(0));
        }
    }

    #[test]
    fn mlp_learns_xor_like_separation() {
        // Tiny sanity check that the full train loop (tape + params + Adam)
        // reduces loss on a nonlinear problem.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut rng, &mut store, &[2, 8, 1]);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut adam = Adam::new(0.05);
        let loss_at = |store: &ParamStore, mlp: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| {
                    let mut t = Tape::new();
                    let xv = t.leaf(Matrix::from_vec(1, 2, x.to_vec()));
                    let logit = mlp.forward(&mut t, store, xv);
                    let l = t.bce_with_logits(logit, *y);
                    t.value(l).scalar()
                })
                .sum::<f32>()
                / 4.0
        };
        let initial = loss_at(&store, &mlp);
        for _ in 0..300 {
            store.zero_grads();
            for (x, y) in &data {
                let mut t = Tape::new();
                let xv = t.leaf(Matrix::from_vec(1, 2, x.to_vec()));
                let logit = mlp.forward(&mut t, &store, xv);
                let l = t.bce_with_logits(logit, *y);
                t.backward(l, &mut store);
            }
            adam.step(&mut store);
        }
        let trained = loss_at(&store, &mlp);
        assert!(
            trained < initial * 0.3,
            "XOR training failed: {initial} -> {trained}"
        );
    }

    #[test]
    fn infer_scalar_matches_tape_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut rng, &mut store, &[6, 5, 1]);
        let mut scratch = MlpScratch::default();
        for _ in 0..20 {
            // Exact zeros exercise the axpy zero-skip against the tape path.
            let x: Vec<f32> = (0..6)
                .map(|i| {
                    if i % 2 == 0 {
                        0.0
                    } else {
                        rng.gen_range(-2.0..2.0)
                    }
                })
                .collect();
            let mut t = Tape::new();
            let xv = t.leaf(Matrix::from_vec(1, 6, x.clone()));
            let y = mlp.forward(&mut t, &store, xv);
            let want = t.value(y).scalar();
            let got = mlp.infer_scalar(&store, &x, &mut scratch);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "infer != tape: {got} vs {want}"
            );
        }
    }

    #[test]
    fn fused_heads_match_per_head_tapes() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let heads: Vec<Mlp> = (0..4)
            .map(|_| Mlp::new(&mut rng, &mut store, &[7, 5, 1]))
            .collect();
        let fused = FusedHeads::new(&heads, &store);
        assert_eq!(fused.num_heads, 4);
        let n = 6;
        let x = Matrix::from_fn(n, 7, |_, _| rng.gen_range(-2.0..2.0f32));
        let mut hidden = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        fused.score_into(&x, &mut hidden, &mut out);
        assert_eq!(out.shape(), (n, 4));
        for i in 0..n {
            for (hd, head) in heads.iter().enumerate() {
                let mut t = Tape::new();
                let xv = t.leaf(Matrix::from_vec(1, 7, x.row(i).to_vec()));
                let y = head.forward(&mut t, &store, xv);
                let want = t.value(y).scalar();
                let got = out.get(i, hd);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "row {i} head {hd}: fused {got} vs tape {want}"
                );
            }
        }
    }

    #[test]
    fn fused_heads_batch_rows_independent() {
        // A row's score must not depend on which other rows share the batch.
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let heads: Vec<Mlp> = (0..3)
            .map(|_| Mlp::new(&mut rng, &mut store, &[5, 4, 1]))
            .collect();
        let fused = FusedHeads::new(&heads, &store);
        let x = Matrix::from_fn(8, 5, |_, _| rng.gen_range(-1.0..1.0f32));
        let mut hidden = Matrix::zeros(0, 0);
        let (mut batch, mut single) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        fused.score_into(&x, &mut hidden, &mut batch);
        for i in 0..8 {
            let xi = Matrix::from_vec(1, 5, x.row(i).to_vec());
            fused.score_into(&xi, &mut hidden, &mut single);
            for hd in 0..3 {
                assert_eq!(
                    batch.get(i, hd).to_bits(),
                    single.get(0, hd).to_bits(),
                    "batching changed row {i} head {hd}"
                );
            }
        }
    }

    #[test]
    fn mlp_dims() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut rng, &mut store, &[6, 4, 2]);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(store.len(), 4); // 2 layers x (W, b)
    }
}
