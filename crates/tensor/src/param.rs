//! Trainable parameter storage shared across tapes.

use crate::matrix::Matrix;

/// One trainable parameter with its accumulated gradient and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Matrix,
    pub grad: Matrix,
    pub m: Matrix,
    pub v: Matrix,
}

/// A flat registry of parameters. Models hold parameter ids into one store;
/// tapes clone values out at record time and accumulate gradients back in
/// [`crate::tape::Tape::backward`].
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, value: Matrix) -> usize {
        let (r, c) = value.shape();
        self.params.push(Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        self.params.len() - 1
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.value.rows() * p.value.cols())
            .sum()
    }

    pub fn value(&self, id: usize) -> &Matrix {
        &self.params[id].value
    }

    pub fn value_mut(&mut self, id: usize) -> &mut Matrix {
        &mut self.params[id].value
    }

    pub fn grad(&self, id: usize) -> &Matrix {
        &self.params[id].grad
    }

    pub fn grad_mut(&mut self, id: usize) -> &mut Matrix {
        &mut self.params[id].grad
    }

    pub(crate) fn param_mut(&mut self, id: usize) -> &mut Param {
        &mut self.params[id]
    }

    /// Zeroes every gradient (call before each backward accumulation round).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            let (r, c) = p.value.shape();
            p.grad = Matrix::zeros(r, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let id = s.add(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.scalar_count(), 4);
        assert_eq!(s.value(id).get(1, 0), 3.0);
        s.grad_mut(id).set(0, 0, 5.0);
        assert_eq!(s.grad(id).get(0, 0), 5.0);
        s.zero_grads();
        assert_eq!(s.grad(id).get(0, 0), 0.0);
    }
}
