//! Optimizers: Adam with the paper's step-decay learning-rate schedule.

use crate::param::ParamStore;

/// Adam (Kingma & Ba) with bias correction.
///
/// The paper's training setup: initial learning rate 0.005, decayed by 0.96
/// every 5 epochs — see [`StepDecay`].
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Applies one update from the accumulated gradients, then leaves the
    /// gradients untouched (callers zero them per round).
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for id in 0..store.len() {
            let p = store.param_mut(id);
            let n = p.value.data().len();
            for i in 0..n {
                let g = p.grad.data()[i];
                let m = self.beta1 * p.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.data()[i] + (1.0 - self.beta2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let mhat = m / b1t;
                let vhat = v / b2t;
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Step-decay schedule: multiply the learning rate by `factor` every
/// `every_epochs` epochs (paper: 0.96 every 5 epochs from 0.005).
#[derive(Debug, Clone)]
pub struct StepDecay {
    pub initial_lr: f32,
    pub factor: f32,
    pub every_epochs: u32,
}

impl StepDecay {
    /// The paper's schedule.
    pub fn paper() -> Self {
        StepDecay {
            initial_lr: 0.005,
            factor: 0.96,
            every_epochs: 5,
        }
    }

    /// Learning rate at the given 0-based epoch.
    pub fn lr_at(&self, epoch: u32) -> f32 {
        self.initial_lr * self.factor.powi((epoch / self.every_epochs) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::Tape;

    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let pid = store.add(Matrix::from_vec(1, 2, vec![5.0, -3.0]));
        let target = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            store.zero_grads();
            let mut t = Tape::new();
            let p = t.param(&store, pid);
            let l = t.mse(p, target.clone());
            t.backward(l, &mut store);
            adam.step(&mut store);
        }
        assert!(store.value(pid).max_abs_diff(&target) < 1e-2);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::paper();
        assert_eq!(s.lr_at(0), 0.005);
        assert_eq!(s.lr_at(4), 0.005);
        assert!((s.lr_at(5) - 0.005 * 0.96).abs() < 1e-9);
        assert!((s.lr_at(10) - 0.005 * 0.96 * 0.96).abs() < 1e-9);
        // Monotone non-increasing.
        let mut prev = f32::INFINITY;
        for e in 0..50 {
            let lr = s.lr_at(e);
            assert!(lr <= prev);
            prev = lr;
        }
    }
}
