//! Runtime-dispatched SIMD kernels for quantized embedding codes.
//!
//! Two integer kernels back the quantized prefilter tier: Hamming distance
//! over packed `u64` sign codes (binary quantization) and the `u8` dot
//! product (scalar quantization, from which the squared-L2 surrogate is
//! assembled via precomputed norms). Both come in a portable scalar form
//! and an x86-64 accelerated form (`popcnt` for Hamming, AVX2 for the dot
//! product), selected once at first use with `is_x86_feature_detected!`.
//!
//! All arithmetic is integer, so the accelerated paths are **bit-identical**
//! to the scalar fallbacks by construction — no reassociation slack, no
//! tolerance windows. The property tests in `tests/simd_kernels.rs` pin
//! exact agreement on random codes, including tail lengths that are not a
//! multiple of the vector lane width.

use std::sync::OnceLock;

/// Which kernel implementation the runtime dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Accelerated x86-64 path (`popcnt` + AVX2).
    Simd,
    /// Portable scalar path (also the non-x86 and old-CPU fallback).
    Scalar,
}

/// The dispatch decision, made once per process. `Simd` requires both
/// `popcnt` and `avx2` so a single flag covers both kernels.
pub fn kernel_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("popcnt")
                && std::arch::is_x86_feature_detected!("avx2")
            {
                return KernelPath::Simd;
            }
        }
        KernelPath::Scalar
    })
}

/// Hamming distance between two packed bit codes (number of differing
/// bits). Panics if the slices differ in length.
#[inline]
pub fn hamming(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming: code length mismatch");
    match kernel_path() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch verified `popcnt` is available on this CPU.
        KernelPath::Simd => unsafe { hamming_popcnt(a, b) },
        _ => hamming_scalar(a, b),
    }
}

/// Portable Hamming kernel (public so the property tests can compare the
/// dispatched kernel against it directly).
pub fn hamming_scalar(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(&x, &y)| (x ^ y).count_ones()).sum()
}

/// `popcnt` Hamming kernel: same loop, but compiled with the feature
/// enabled so `count_ones` lowers to one `popcnt` instruction per word
/// (the portable build must assume the instruction may be missing). Four
/// independent accumulators let the popcnts pipeline.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn hamming_popcnt(a: &[u64], b: &[u64]) -> u32 {
    let mut acc = [0u32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += (a[i] ^ b[i]).count_ones();
        acc[1] += (a[i + 1] ^ b[i + 1]).count_ones();
        acc[2] += (a[i + 2] ^ b[i + 2]).count_ones();
        acc[3] += (a[i + 3] ^ b[i + 3]).count_ones();
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        total += (a[i] ^ b[i]).count_ones();
    }
    total
}

/// Dot product of two `u8` code vectors, exact in `u64`. Panics if the
/// slices differ in length.
#[inline]
pub fn dot_u8(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "dot_u8: code length mismatch");
    match kernel_path() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch verified `avx2` is available on this CPU.
        KernelPath::Simd => unsafe { dot_u8_avx2(a, b) },
        _ => dot_u8_scalar(a, b),
    }
}

/// Portable `u8` dot kernel (public for the property tests).
pub fn dot_u8_scalar(a: &[u8], b: &[u8]) -> u64 {
    a.iter().zip(b).map(|(&x, &y)| x as u64 * y as u64).sum()
}

/// AVX2 `u8` dot kernel: 16 bytes per iteration, zero-extended to `i16`
/// lanes and multiply-accumulated pairwise into `i32` lanes
/// (`vpmaddwd`). Each `i32` lane absorbs at most `2·255² = 130050` per
/// step, so lane overflow needs over 16k iterations — far beyond any
/// embedding dimension this crate handles.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_u8_avx2(a: &[u8], b: &[u8]) -> u64 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let chunks = n / 16;
    for c in 0..chunks {
        let i = c * 16;
        // SAFETY: i + 16 <= n, so the 128-bit loads stay in bounds.
        let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
        let wa = _mm256_cvtepu8_epi16(va);
        let wb = _mm256_cvtepu8_epi16(vb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut total: u64 = lanes.iter().map(|&v| v as u64).sum();
    for i in chunks * 16..n {
        total += a[i] as u64 * b[i] as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(&[], &[]), 0);
        assert_eq!(hamming(&[0], &[0]), 0);
        assert_eq!(hamming(&[u64::MAX], &[0]), 64);
        assert_eq!(hamming(&[0b1010, 0], &[0b0110, 1]), 3);
    }

    #[test]
    fn dot_basics() {
        assert_eq!(dot_u8(&[], &[]), 0);
        assert_eq!(dot_u8(&[255; 3], &[255; 3]), 3 * 255 * 255);
        assert_eq!(dot_u8(&[1, 2, 3], &[4, 5, 6]), 32);
    }

    #[test]
    fn dispatch_is_stable() {
        assert_eq!(kernel_path(), kernel_path());
    }
}
