//! Tape-based reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records a forward computation as a DAG of [`Op`] nodes; calling
//! [`Tape::backward`] walks the nodes in reverse, accumulating gradients into
//! a [`ParamStore`]. One tape is built per training sample (the models are
//! small, so tape-rebuild overhead is negligible) and discarded afterwards.
//! Inference simply runs the forward pass and never calls `backward`, so
//! training and inference share one numerically identical code path — which
//! is what lets the CG-equivalence tests (paper Theorem 2) compare plain and
//! compressed forwards bit-for-bit-close.
//!
//! The op set is exactly what the LAN models need; the attention scores
//! `a · (t_u ‖ t_v)` are factorized as `a₁·t_u + a₂·t_v` and materialized
//! with [`Tape::rank1_add`], so no `n·m × 2d` blow-up ever happens.

use crate::matrix::Matrix;
use crate::param::ParamStore;

/// Index of a node on a [`Tape`].
pub type Var = usize;

#[derive(Debug, Clone)]
enum Op {
    /// Constant input; no gradient.
    Leaf,
    /// Trainable parameter; gradient accumulates into the store.
    Param(usize),
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Transpose(Var),
    ConcatCols(Var, Var),
    /// `out[i][j] = col[i] + row[j]` with `col: n×1`, `row: 1×m`.
    Rank1Add(Var, Var),
    /// Row-wise softmax with fixed positive column weights `w`:
    /// `out[i][j] = w[j]·exp(x[i][j]) / Σ_k w[k]·exp(x[i][k])`.
    WeightedRowSoftmax(Var, Vec<f32>),
    /// Weighted mean of the rows: `out = Σ_i w[i]·x[i,:] / Σ_i w[i]`,
    /// producing `1×cols`.
    WeightedMeanRows(Var, Vec<f32>),
    /// Binary cross-entropy with logits against a fixed target, on a 1×1
    /// logit. Numerically stable form.
    BceWithLogits(Var, f32),
    /// Mean squared error against a fixed target matrix.
    Mse(Var, Matrix),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// The autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Rough floating-point-operation count of the forward pass; used by the
    /// Theorem 3 op-count tests and the Fig. 12 accounting.
    flops: u64,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value });
        self.nodes.len() - 1
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v].value
    }

    /// Approximate flops recorded by the forward pass so far.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a constant (no gradient).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Records a parameter, cloning its current value from the store.
    pub fn param(&mut self, store: &ParamStore, id: usize) -> Var {
        self.push(Op::Param(id), store.value(id).clone())
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let va = &self.nodes[a].value;
        let vb = &self.nodes[b].value;
        self.flops += 2 * (va.rows() * va.cols() * vb.cols()) as u64;
        let v = va.matmul(vb);
        self.push(Op::MatMul(a, b), v)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a].value.add(&self.nodes[b].value);
        self.flops += (v.rows() * v.cols()) as u64;
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a].value.sub(&self.nodes[b].value);
        self.flops += (v.rows() * v.cols()) as u64;
        self.push(Op::Sub(a, b), v)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a].value.scale(s);
        self.flops += (v.rows() * v.cols()) as u64;
        self.push(Op::Scale(a, s), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        self.flops += (v.rows() * v.cols()) as u64;
        self.push(Op::Relu(a), v)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a].value.transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a].value.concat_cols(&self.nodes[b].value);
        self.push(Op::ConcatCols(a, b), v)
    }

    /// `out[i][j] = col[i] + row[j]` (`col: n×1`, `row: 1×m`).
    pub fn rank1_add(&mut self, col: Var, row: Var) -> Var {
        let c = &self.nodes[col].value;
        let r = &self.nodes[row].value;
        assert_eq!(c.cols(), 1, "rank1_add: col operand must be n×1");
        assert_eq!(r.rows(), 1, "rank1_add: row operand must be 1×m");
        let v = Matrix::from_fn(c.rows(), r.cols(), |i, j| c.get(i, 0) + r.get(0, j));
        self.flops += (c.rows() * r.cols()) as u64;
        self.push(Op::Rank1Add(col, row), v)
    }

    /// Row-softmax with fixed positive column weights (paper Eq. 10: the
    /// `|q|`-weighted attention; all-ones weights give Eq. 6).
    pub fn weighted_row_softmax(&mut self, a: Var, w: Vec<f32>) -> Var {
        let x = &self.nodes[a].value;
        assert_eq!(w.len(), x.cols(), "weight length must match columns");
        assert!(
            w.iter().all(|&wi| wi > 0.0),
            "softmax weights must be positive"
        );
        let mut v = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            // Stabilize by the row max of x + ln w.
            let logs: Vec<f32> = (0..x.cols()).map(|j| x.get(i, j) + w[j].ln()).collect();
            let m = logs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logs.iter().map(|&l| (l - m).exp()).collect();
            let z: f32 = exps.iter().sum();
            for (j, &e) in exps.iter().enumerate() {
                v.set(i, j, e / z);
            }
        }
        self.flops += 4 * (x.rows() * x.cols()) as u64;
        self.push(Op::WeightedRowSoftmax(a, w), v)
    }

    /// Weighted mean of rows → `1×cols` (paper: final readout; group-size
    /// weighted for CGs, all-ones for plain graphs).
    pub fn weighted_mean_rows(&mut self, a: Var, w: Vec<f32>) -> Var {
        let x = &self.nodes[a].value;
        assert_eq!(w.len(), x.rows(), "weight length must match rows");
        let total: f32 = w.iter().sum();
        assert!(total > 0.0, "weights must not sum to zero");
        let mut v = Matrix::zeros(1, x.cols());
        for (i, &wi) in w.iter().enumerate() {
            for j in 0..x.cols() {
                v.set(0, j, v.get(0, j) + wi * x.get(i, j) / total);
            }
        }
        self.flops += 2 * (x.rows() * x.cols()) as u64;
        self.push(Op::WeightedMeanRows(a, w), v)
    }

    /// Stable binary cross-entropy with logits on a 1×1 logit node.
    pub fn bce_with_logits(&mut self, logit: Var, target: f32) -> Var {
        let z = self.nodes[logit].value.scalar();
        // max(z,0) - z*y + ln(1 + exp(-|z|))
        let loss = z.max(0.0) - z * target + (-z.abs()).exp().ln_1p();
        self.push(
            Op::BceWithLogits(logit, target),
            Matrix::from_vec(1, 1, vec![loss]),
        )
    }

    /// Mean squared error against a fixed target (same shape as `pred`).
    pub fn mse(&mut self, pred: Var, target: Matrix) -> Var {
        let p = &self.nodes[pred].value;
        assert_eq!(p.shape(), target.shape(), "mse shape mismatch");
        let n = (p.rows() * p.cols()) as f32;
        let loss = p.sub(&target).data().iter().map(|d| d * d).sum::<f32>() / n;
        self.push(Op::Mse(pred, target), Matrix::from_vec(1, 1, vec![loss]))
    }

    /// Reverse pass from the scalar node `root` (must be 1×1); gradients of
    /// parameters accumulate into `store`.
    pub fn backward(&self, root: Var, store: &mut ParamStore) {
        assert_eq!(
            self.nodes[root].value.shape(),
            (1, 1),
            "backward root must be scalar"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root] = Some(Matrix::ones(1, 1));

        for idx in (0..=root).rev() {
            let Some(g) = grads[idx].take() else { continue };
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::Param(pid) => store.grad_mut(*pid).add_assign(&g),
                Op::MatMul(a, b) => {
                    let va = &self.nodes[*a].value;
                    let vb = &self.nodes[*b].value;
                    accumulate(&mut grads, *a, g.matmul(&vb.transpose()));
                    accumulate(&mut grads, *b, va.transpose().matmul(&g));
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *b, g.scale(-1.0));
                    accumulate(&mut grads, *a, g);
                }
                Op::Scale(a, s) => accumulate(&mut grads, *a, g.scale(*s)),
                Op::Relu(a) => {
                    let va = &self.nodes[*a].value;
                    let ga = Matrix::from_fn(va.rows(), va.cols(), |i, j| {
                        if va.get(i, j) > 0.0 {
                            g.get(i, j)
                        } else {
                            0.0
                        }
                    });
                    accumulate(&mut grads, *a, ga);
                }
                Op::Transpose(a) => accumulate(&mut grads, *a, g.transpose()),
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[*a].value.cols();
                    let rows = g.rows();
                    let cb = g.cols() - ca;
                    let ga = Matrix::from_fn(rows, ca, |i, j| g.get(i, j));
                    let gb = Matrix::from_fn(rows, cb, |i, j| g.get(i, ca + j));
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Rank1Add(col, row) => {
                    let n = g.rows();
                    let m = g.cols();
                    let gcol = Matrix::from_fn(n, 1, |i, _| (0..m).map(|j| g.get(i, j)).sum());
                    let grow = Matrix::from_fn(1, m, |_, j| (0..n).map(|i| g.get(i, j)).sum());
                    accumulate(&mut grads, *col, gcol);
                    accumulate(&mut grads, *row, grow);
                }
                Op::WeightedRowSoftmax(a, _w) => {
                    // y = softmax(x + ln w) row-wise; dL/dx = y ⊙ (g - (g·y) 1ᵀ).
                    let y = &self.nodes[idx].value;
                    let mut ga = Matrix::zeros(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|j| g.get(i, j) * y.get(i, j)).sum();
                        for j in 0..y.cols() {
                            ga.set(i, j, y.get(i, j) * (g.get(i, j) - dot));
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::WeightedMeanRows(a, w) => {
                    let total: f32 = w.iter().sum();
                    let x = &self.nodes[*a].value;
                    let ga = Matrix::from_fn(x.rows(), x.cols(), |i, j| w[i] / total * g.get(0, j));
                    accumulate(&mut grads, *a, ga);
                }
                Op::BceWithLogits(logit, target) => {
                    let z = self.nodes[*logit].value.scalar();
                    let sig = 1.0 / (1.0 + (-z).exp());
                    let gz = (sig - target) * g.scalar();
                    accumulate(&mut grads, *logit, Matrix::from_vec(1, 1, vec![gz]));
                }
                Op::Mse(pred, target) => {
                    let p = &self.nodes[*pred].value;
                    let n = (p.rows() * p.cols()) as f32;
                    let gs = g.scalar();
                    let gp = Matrix::from_fn(p.rows(), p.cols(), |i, j| {
                        2.0 * (p.get(i, j) - target.get(i, j)) / n * gs
                    });
                    accumulate(&mut grads, *pred, gp);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: Var, g: Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

/// Sigmoid helper (used when interpreting logits at inference time).
pub fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Finite-difference gradient check for a scalar function of one
    /// parameter matrix.
    fn grad_check(build: impl Fn(&mut Tape, &ParamStore) -> Var, init: Matrix, tol: f32) {
        let mut store = ParamStore::new();
        let pid = store.add(init);
        // Analytic gradient.
        let mut tape = Tape::new();
        let root = build(&mut tape, &store);
        store.zero_grads();
        tape.backward(root, &mut store);
        let analytic = store.grad(pid).clone();

        // Numeric gradient.
        let eps = 1e-3f32;
        let (r, c) = store.value(pid).shape();
        for i in 0..r {
            for j in 0..c {
                let orig = store.value(pid).get(i, j);
                store.value_mut(pid).set(i, j, orig + eps);
                let mut t1 = Tape::new();
                let v1 = build(&mut t1, &store);
                let f1 = t1.value(v1).scalar();
                store.value_mut(pid).set(i, j, orig - eps);
                let mut t2 = Tape::new();
                let v2 = build(&mut t2, &store);
                let f2 = t2.value(v2).scalar();
                store.value_mut(pid).set(i, j, orig);
                let numeric = (f1 - f2) / (2.0 * eps);
                let a = analytic.get(i, j);
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({i},{j}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_values() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c).scalar(), 11.0);
        assert!(t.flops() > 0);
    }

    #[test]
    fn grad_matmul_sum() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = rand_matrix(&mut rng, 3, 4);
        grad_check(
            move |t, s| {
                let p = t.param(s, 0);
                let xl = t.leaf(x.clone());
                let y = t.matmul(xl, p); // 3x2
                let w = t.weighted_mean_rows(y, vec![1.0, 2.0, 3.0]); // 1x2
                let ones = t.leaf(Matrix::ones(2, 1));
                t.matmul(w, ones) // scalar
            },
            rand_matrix(&mut StdRng::seed_from_u64(2), 4, 2),
            2e-2,
        );
    }

    #[test]
    fn grad_relu_chain() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = rand_matrix(&mut rng, 2, 3);
        grad_check(
            move |t, s| {
                let p = t.param(s, 0);
                let xl = t.leaf(x.clone());
                let y = t.matmul(xl, p);
                let r = t.relu(y);
                let ones = t.leaf(Matrix::ones(3, 1));
                let v = t.matmul(r, ones);
                let onesr = t.leaf(Matrix::ones(1, 2));
                t.matmul(onesr, v)
            },
            rand_matrix(&mut StdRng::seed_from_u64(4), 3, 3),
            2e-2,
        );
    }

    #[test]
    fn grad_softmax_attention_block() {
        // A miniature of the cross-graph attention: scores via rank1_add,
        // weighted softmax, then a bilinear readout.
        let mut rng = StdRng::seed_from_u64(5);
        let tq = rand_matrix(&mut rng, 3, 2); // "query-side t"
        grad_check(
            move |t, s| {
                let p = t.param(s, 0); // 4x2: plays the role of T_g
                let a1 = t.leaf(Matrix::from_vec(2, 1, vec![0.3, -0.7]));
                let a2 = t.leaf(Matrix::from_vec(2, 1, vec![0.5, 0.2]));
                let col = t.matmul(p, a1); // 4x1
                let tql = t.leaf(tq.clone());
                let qrow0 = t.matmul(tql, a2); // 3x1
                                               // transpose via rank1: need 1x3 row — build with leaf matmul
                let tql2 = t.leaf(tq.transpose()); // 2x3
                let a2l = t.leaf(Matrix::from_vec(1, 2, vec![0.5, 0.2]));
                let row = t.matmul(a2l, tql2); // 1x3
                let _ = qrow0;
                let scores = t.rank1_add(col, row); // 4x3
                let att = t.weighted_row_softmax(scores, vec![1.0, 2.0, 1.0]);
                let tqleaf = t.leaf(tq.clone());
                let mu = t.matmul(att, tqleaf); // 4x2
                let pooled = t.weighted_mean_rows(mu, vec![1.0; 4]); // 1x2
                let ones = t.leaf(Matrix::ones(2, 1));
                t.matmul(pooled, ones)
            },
            rand_matrix(&mut StdRng::seed_from_u64(6), 4, 2),
            3e-2,
        );
    }

    #[test]
    fn grad_bce() {
        for target in [0.0f32, 1.0] {
            grad_check(
                move |t, s| {
                    let p = t.param(s, 0); // 1x1 logit
                    t.bce_with_logits(p, target)
                },
                Matrix::from_vec(1, 1, vec![0.37]),
                1e-2,
            );
        }
    }

    #[test]
    fn grad_mse() {
        let target = Matrix::from_vec(1, 3, vec![0.5, -0.5, 1.0]);
        grad_check(
            move |t, s| {
                let p = t.param(s, 0);
                t.mse(p, target.clone())
            },
            Matrix::from_vec(1, 3, vec![0.1, 0.2, 0.3]),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_and_rank1() {
        let mut rng = StdRng::seed_from_u64(8);
        let other = rand_matrix(&mut rng, 2, 2);
        grad_check(
            move |t, s| {
                let p = t.param(s, 0); // 2x2
                let o = t.leaf(other.clone());
                let c = t.concat_cols(p, o); // 2x4
                let pooled = t.weighted_mean_rows(c, vec![1.0, 3.0]); // 1x4
                let ones = t.leaf(Matrix::ones(4, 1));
                t.matmul(pooled, ones)
            },
            rand_matrix(&mut StdRng::seed_from_u64(9), 2, 2),
            2e-2,
        );
    }

    #[test]
    fn grad_sub_scale() {
        let mut rng = StdRng::seed_from_u64(10);
        let other = rand_matrix(&mut rng, 1, 3);
        grad_check(
            move |t, s| {
                let p = t.param(s, 0);
                let o = t.leaf(other.clone());
                let d = t.sub(p, o);
                let sc = t.scale(d, 2.5);

                t.mse(sc, Matrix::zeros(1, 3))
            },
            Matrix::from_vec(1, 3, vec![0.4, -0.2, 0.9]),
            1e-2,
        );
    }

    #[test]
    fn grad_transpose() {
        let mut rng = StdRng::seed_from_u64(11);
        let other = rand_matrix(&mut rng, 3, 2);
        grad_check(
            move |t, s| {
                let p = t.param(s, 0); // 2x3
                let pt = t.transpose(p); // 3x2
                let o = t.leaf(other.clone());
                let d = t.sub(pt, o);
                t.mse(d, Matrix::zeros(3, 2))
            },
            rand_matrix(&mut StdRng::seed_from_u64(12), 2, 3),
            1e-2,
        );
    }

    #[test]
    fn bce_matches_closed_form() {
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_vec(1, 1, vec![0.8]));
        let l1 = t.bce_with_logits(z, 1.0);
        let expected = -(sigmoid(0.8)).ln();
        assert!((t.value(l1).scalar() - expected).abs() < 1e-6);
        let l0 = t.bce_with_logits(z, 0.0);
        let expected0 = -(1.0 - sigmoid(0.8)).ln();
        assert!((t.value(l0).scalar() - expected0).abs() < 1e-6);
    }

    #[test]
    fn weighted_softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 3, vec![0.1, 5.0, -2.0, 0.0, 0.0, 0.0]));
        let y = t.weighted_row_softmax(x, vec![1.0, 2.0, 3.0]);
        for i in 0..2 {
            let s: f32 = t.value(y).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Uniform input with weights (1,2,3) gives probabilities 1/6, 2/6, 3/6.
        let r1 = t.value(y).row(1);
        assert!((r1[0] - 1.0 / 6.0).abs() < 1e-6);
        assert!((r1[1] - 2.0 / 6.0).abs() < 1e-6);
        assert!((r1[2] - 3.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_accumulates_across_backward_calls() {
        let mut store = ParamStore::new();
        let pid = store.add(Matrix::from_vec(1, 1, vec![2.0]));
        for _ in 0..2 {
            let mut t = Tape::new();
            let p = t.param(&store, pid);
            let sq = t.mse(p, Matrix::zeros(1, 1));
            t.backward(sq, &mut store);
        }
        // d/dp (p^2) = 2p = 4, accumulated twice = 8.
        assert!((store.grad(pid).scalar() - 8.0).abs() < 1e-6);
    }
}
