//! Property tests: the dispatched SIMD kernels agree **exactly** with the
//! portable scalar kernels on random codes, including tail lengths that
//! are not a multiple of the vector lane width (4 words for the unrolled
//! Hamming loop, 16 bytes for the AVX2 dot product).
//!
//! On hosts without `popcnt`/AVX2 the dispatch resolves to the scalar
//! path and these tests degenerate to self-consistency — still worth
//! running, since the choice is invisible to callers by contract.

use lan_tensor::simd::{dot_u8, dot_u8_scalar, hamming, hamming_scalar, kernel_path};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hamming_matches_scalar(
        words in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..70),
    ) {
        let a: Vec<u64> = words.iter().map(|&(x, _)| x).collect();
        let b: Vec<u64> = words.iter().map(|&(_, y)| y).collect();
        prop_assert_eq!(hamming(&a, &b), hamming_scalar(&a, &b));
    }

    #[test]
    fn dot_u8_matches_scalar(
        bytes in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..530),
    ) {
        let a: Vec<u8> = bytes.iter().map(|&(x, _)| x).collect();
        let b: Vec<u8> = bytes.iter().map(|&(_, y)| y).collect();
        prop_assert_eq!(dot_u8(&a, &b), dot_u8_scalar(&a, &b));
    }

    #[test]
    fn hamming_is_a_metric_on_codes(
        a in proptest::collection::vec(any::<u64>(), 0..20),
    ) {
        prop_assert_eq!(hamming(&a, &a), 0);
        let zeros = vec![0u64; a.len()];
        let pop: u32 = a.iter().map(|w| w.count_ones()).sum();
        prop_assert_eq!(hamming(&a, &zeros), pop);
    }
}

/// Every lane-tail length around the unroll widths, deterministically —
/// proptest's random lengths cover these with high probability, but the
/// boundary cases are exactly where a tail loop bug would hide.
#[test]
fn exhaustive_tail_lengths() {
    for len in 0..70usize {
        let a: Vec<u64> = (0..len as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let b: Vec<u64> = (0..len as u64)
            .map(|i| !i ^ 0x0123_4567_89AB_CDEF)
            .collect();
        assert_eq!(hamming(&a, &b), hamming_scalar(&a, &b), "hamming len {len}");
    }
    for len in 0..130usize {
        let a: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
        let b: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(53) ^ 0xAB)
            .collect();
        assert_eq!(dot_u8(&a, &b), dot_u8_scalar(&a, &b), "dot len {len}");
    }
    // The dispatch decision is visible for debugging but never changes
    // results — record it so failures name the path under test.
    eprintln!("kernel path under test: {:?}", kernel_path());
}
