//! Property tests for the autodiff substrate: randomized finite-difference
//! checks over composite expressions and optimizer behavior.

use lan_tensor::{Adam, Matrix, Mlp, ParamStore, Tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// Numeric/analytic gradient comparison for a scalar-valued builder.
fn check(build: &dyn Fn(&mut Tape, &ParamStore) -> usize, init: Matrix, tol: f32) {
    let mut store = ParamStore::new();
    let pid = store.add(init);
    let mut tape = Tape::new();
    let root = build(&mut tape, &store);
    store.zero_grads();
    tape.backward(root, &mut store);
    let analytic = store.grad(pid).clone();

    let eps = 1e-2f32;
    let (r, c) = store.value(pid).shape();
    for i in 0..r {
        for j in 0..c {
            let orig = store.value(pid).get(i, j);
            store.value_mut(pid).set(i, j, orig + eps);
            let mut t1 = Tape::new();
            let v1 = build(&mut t1, &store);
            let f1 = t1.value(v1).scalar();
            store.value_mut(pid).set(i, j, orig - eps);
            let mut t2 = Tape::new();
            let v2 = build(&mut t2, &store);
            let f2 = t2.value(v2).scalar();
            store.value_mut(pid).set(i, j, orig);
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.get(i, j);
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at ({i},{j}): analytic {a}, numeric {numeric}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A randomized composite: matmul → rank1 attention → weighted softmax →
    /// matmul → relu → weighted mean → mse, checked against finite
    /// differences (this is the exact op chain of the cross-graph layer).
    #[test]
    fn composite_cross_layer_gradients(seed in any::<u64>(), n in 2usize..5, m in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 3usize;
        let other = rand_matrix(&mut rng, m, d);
        let a1 = rand_matrix(&mut rng, d, 1);
        let a2 = rand_matrix(&mut rng, d, 1);
        let w: Vec<f32> = (0..m).map(|_| rng.gen_range(0.5..3.0)).collect();
        let rows: Vec<f32> = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        let init = rand_matrix(&mut rng, n, d);
        let build = move |t: &mut Tape, s: &ParamStore| -> usize {
            let p = t.param(s, 0); // n x d: plays T_g
            let o = t.leaf(other.clone()); // m x d: plays T_q
            let a1l = t.leaf(a1.clone());
            let a2l = t.leaf(a2.clone());
            let col = t.matmul(p, a1l); // n x 1
            let r0 = t.matmul(o, a2l); // m x 1
            let row = t.transpose(r0); // 1 x m
            let scores = t.rank1_add(col, row); // n x m
            let att = t.weighted_row_softmax(scores, w.clone());
            let mu = t.matmul(att, o); // n x d
            let z = t.add(p, mu);
            let zr = t.relu(z);
            let pooled = t.weighted_mean_rows(zr, rows.clone()); // 1 x d
            t.mse(pooled, Matrix::zeros(1, d))
        };
        check(&build, init, 0.08);
    }

    /// MLP + BCE gradients for arbitrary widths, checked on every MLP
    /// parameter by finite differences.
    #[test]
    fn mlp_bce_gradients(seed in any::<u64>(), hidden in 2usize..6, target in 0u8..2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut rng, &mut store, &[3, hidden, 1]);
        let x = rand_matrix(&mut rng, 1, 3);
        let target = target as f32;
        let forward = |store: &ParamStore| -> (Tape, usize) {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let logit = mlp.forward(&mut t, store, xv);
            let l = t.bce_with_logits(logit, target);
            (t, l)
        };
        let (tape, root) = forward(&store);
        store.zero_grads();
        tape.backward(root, &mut store);
        let analytic: Vec<Matrix> =
            (0..store.len()).map(|i| store.grad(i).clone()).collect();
        let eps = 1e-2f32;
        for (pid, analytic_g) in analytic.iter().enumerate() {
            let (r, c) = store.value(pid).shape();
            for i in 0..r {
                for j in 0..c {
                    let orig = store.value(pid).get(i, j);
                    store.value_mut(pid).set(i, j, orig + eps);
                    let (t1, v1) = forward(&store);
                    let f1 = t1.value(v1).scalar();
                    store.value_mut(pid).set(i, j, orig - eps);
                    let (t2, v2) = forward(&store);
                    let f2 = t2.value(v2).scalar();
                    store.value_mut(pid).set(i, j, orig);
                    let numeric = (f1 - f2) / (2.0 * eps);
                    let a = analytic_g.get(i, j);
                    prop_assert!(
                        (a - numeric).abs() <= 0.08 * (1.0 + numeric.abs()),
                        "param {} ({},{}): analytic {} vs numeric {}",
                        pid, i, j, a, numeric
                    );
                }
            }
        }
    }

    /// Adam converges to arbitrary targets from arbitrary starts.
    #[test]
    fn adam_converges(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = rand_matrix(&mut rng, 1, 3).scale(3.0);
        let start = rand_matrix(&mut rng, 1, 3).scale(5.0);
        let mut store = ParamStore::new();
        let pid = store.add(start);
        let mut adam = Adam::new(0.1);
        for _ in 0..400 {
            store.zero_grads();
            let mut t = Tape::new();
            let p = t.param(&store, pid);
            let l = t.mse(p, target.clone());
            t.backward(l, &mut store);
            adam.step(&mut store);
        }
        prop_assert!(store.value(pid).max_abs_diff(&target) < 0.05);
    }

    /// Softmax invariances: rows sum to one; shifting a row by a constant
    /// leaves the distribution unchanged.
    #[test]
    fn softmax_invariances(seed in any::<u64>(), shift in -5.0f32..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = rand_matrix(&mut rng, 3, 4);
        let w: Vec<f32> = (0..4).map(|_| rng.gen_range(0.5..4.0)).collect();
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let y1 = t.weighted_row_softmax(xv, w.clone());
        let xs = t.leaf(x.map(|v| v + shift));
        let y2 = t.weighted_row_softmax(xs, w);
        for i in 0..3 {
            let s: f32 = t.value(y1).row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
        prop_assert!(t.value(y1).max_abs_diff(t.value(y2)) < 1e-5);
    }
}
