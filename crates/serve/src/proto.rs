//! Wire protocol: 4-byte big-endian length-prefixed UTF-8 JSON frames.
//!
//! One request frame yields exactly one response frame on the same
//! connection; a connection carries any number of requests sequentially.
//! The same listener also answers plain `GET /metrics` HTTP requests
//! (sniffed from the first bytes — no JSON frame starts with `GET `),
//! so one port serves both queries and Prometheus scrapes.
//!
//! Request (`op` selects the action):
//!
//! ```json
//! {"op": "search", "tenant": "t0", "k": 5, "b": 16, "seed": 3,
//!  "labels": [0, 1, 1], "edges": [[0, 1], [1, 2]],
//!  "explain": false, "deadline_ms": 50, "max_ndc": 5000}
//! ```
//!
//! `op: "ping"` health-checks; `op: "shutdown"` stops the server after
//! acknowledging. Responses carry a `status` discriminant: `ok` (with
//! `results` as `[distance, id]` pairs, `ndc`, `termination`, and the
//! optional `explain` plan), `overloaded` (typed shed — admission
//! rejected or deadline passed before execution), or `error` (malformed
//! request). Distances are rendered with Rust's shortest-roundtrip `f64`
//! formatting, so values cross the wire bit-exactly — the equivalence
//! tests rely on this.

use lan_graph::Graph;
use lan_obs::json::{parse, Value};
use lan_pg::budget::QueryBudget;
use std::io::{Read, Write};
use std::time::Duration;

/// Hard cap on one frame's payload; a length prefix beyond it is treated
/// as a protocol error rather than an allocation request.
pub const MAX_FRAME: usize = 64 << 20;

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF at a frame
/// boundary (peer closed the connection between requests).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// JSON string escaping (the protocol never emits raw control bytes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed request.
pub enum Request {
    Search(Box<SearchRequest>),
    Ping,
    Shutdown,
}

/// One k-ANN query as received off the wire.
pub struct SearchRequest {
    /// Tenant for admission fair-share accounting.
    pub tenant: String,
    pub k: usize,
    pub b: usize,
    /// Global query seed (per-shard seeds are derived server-side exactly
    /// like the serial fan-out: `seed ^ shard`).
    pub seed: u64,
    pub graph: Graph,
    /// Attach the per-request EXPLAIN plan to the response.
    pub explain: bool,
    /// Query budget; the deadline doubles as the load-shedding deadline
    /// (a query still queued past it is shed, not executed).
    pub budget: QueryBudget,
}

fn field_u64(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => {
            let f = v
                .as_f64()
                .ok_or_else(|| format!("{key} must be a number"))?;
            if f < 0.0 || f.fract() != 0.0 || f > u64::MAX as f64 {
                return Err(format!("{key} must be a non-negative integer, got {f}"));
            }
            Ok(Some(f as u64))
        }
    }
}

fn field_bool(obj: &Value, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("{key} must be a boolean")),
    }
}

fn parse_graph(obj: &Value) -> Result<Graph, String> {
    let labels = match obj.get("labels") {
        Some(Value::Arr(items)) => items
            .iter()
            .map(|v| {
                let f = v.as_f64().ok_or("labels must be numbers")?;
                if f < 0.0 || f.fract() != 0.0 || f > u16::MAX as f64 {
                    return Err(format!("label out of u16 range: {f}"));
                }
                Ok(f as u16)
            })
            .collect::<Result<Vec<u16>, String>>()?,
        _ => return Err("labels must be an array".into()),
    };
    let edges = match obj.get("edges") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|e| match e {
                Value::Arr(uv) if uv.len() == 2 => {
                    let u = uv[0].as_f64().ok_or("edge endpoints must be numbers")?;
                    let v = uv[1].as_f64().ok_or("edge endpoints must be numbers")?;
                    if u < 0.0 || u.fract() != 0.0 || v < 0.0 || v.fract() != 0.0 {
                        return Err("edge endpoints must be non-negative integers".into());
                    }
                    Ok((u as u32, v as u32))
                }
                _ => Err("edges must be [u, v] pairs".to_string()),
            })
            .collect::<Result<Vec<(u32, u32)>, String>>()?,
        Some(_) => return Err("edges must be an array".into()),
    };
    Graph::from_edges(labels, &edges).map_err(|e| format!("invalid query graph: {e}"))
}

/// Parses one request frame.
pub fn parse_request(payload: &str) -> Result<Request, String> {
    let v = parse(payload)?;
    let op = match v.get("op") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("missing op".into()),
    };
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "search" => {
            let tenant = match v.get("tenant") {
                Some(Value::Str(s)) => s.clone(),
                None | Some(Value::Null) => "default".to_string(),
                Some(_) => return Err("tenant must be a string".into()),
            };
            let k = field_u64(&v, "k")?.ok_or("missing k")? as usize;
            let b = field_u64(&v, "b")?.ok_or("missing b")? as usize;
            if k == 0 || b == 0 {
                return Err("k and b must be >= 1".into());
            }
            let seed = field_u64(&v, "seed")?.unwrap_or(0);
            let graph = parse_graph(&v)?;
            let explain = field_bool(&v, "explain")?;
            let mut budget = QueryBudget::unlimited();
            if let Some(ms) = field_u64(&v, "deadline_ms")? {
                budget = budget.with_deadline(Duration::from_millis(ms));
            }
            if let Some(n) = field_u64(&v, "max_ndc")? {
                budget = budget.with_max_ndc(n as usize);
            }
            if let Some(h) = field_u64(&v, "max_hops")? {
                budget = budget.with_max_hops(h as usize);
            }
            Ok(Request::Search(Box::new(SearchRequest {
                tenant,
                k,
                b,
                seed,
                graph,
                explain,
                budget,
            })))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Client-side request rendering (the exact shape [`parse_request`]
/// accepts).
#[allow(clippy::too_many_arguments)]
pub fn render_search_request(
    tenant: &str,
    k: usize,
    b: usize,
    seed: u64,
    graph: &Graph,
    explain: bool,
    deadline_ms: Option<u64>,
    max_ndc: Option<u64>,
) -> String {
    let labels: Vec<String> = graph.labels().iter().map(|l| l.to_string()).collect();
    let edges: Vec<String> = graph.edges().map(|(u, v)| format!("[{u},{v}]")).collect();
    let mut req = format!(
        "{{\"op\":\"search\",\"tenant\":\"{}\",\"k\":{k},\"b\":{b},\"seed\":{seed},\"labels\":[{}],\"edges\":[{}],\"explain\":{explain}",
        json_escape(tenant),
        labels.join(","),
        edges.join(","),
    );
    if let Some(ms) = deadline_ms {
        req.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    if let Some(n) = max_ndc {
        req.push_str(&format!(",\"max_ndc\":{n}"));
    }
    req.push('}');
    req
}

/// Renders a successful search response. `{}`-formatted `f64` is Rust's
/// shortest-roundtrip rendering, so distances survive the wire bit-exactly.
pub fn render_ok(
    results: &[(f64, u32)],
    ndc: u64,
    termination: &str,
    explain: Option<&str>,
) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|(d, id)| format!("[{d},{id}]"))
        .collect();
    let mut out = format!(
        "{{\"status\":\"ok\",\"results\":[{}],\"ndc\":{ndc},\"termination\":\"{termination}\"",
        rows.join(",")
    );
    if let Some(ex) = explain {
        out.push_str(",\"explain\":");
        out.push_str(ex);
    }
    out.push('}');
    out
}

/// Renders the typed shed response.
pub fn render_overloaded(reason: &str) -> String {
    format!(
        "{{\"status\":\"overloaded\",\"reason\":\"{}\"}}",
        json_escape(reason)
    )
}

/// Renders a request-level error response.
pub fn render_error(reason: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"reason\":\"{}\"}}",
        json_escape(reason)
    )
}

/// A parsed response (client side).
#[derive(Debug)]
pub enum Response {
    Ok(OkResponse),
    /// Typed shed: the server refused or abandoned the query under load.
    Overloaded {
        reason: String,
    },
    Error {
        reason: String,
    },
}

/// Successful search response payload.
#[derive(Debug)]
pub struct OkResponse {
    pub results: Vec<(f64, u32)>,
    pub ndc: u64,
    pub termination: String,
    /// The EXPLAIN plan when the request opted in (raw parsed JSON).
    pub explain: Option<Value>,
}

/// Parses one response frame.
pub fn parse_response(payload: &str) -> Result<Response, String> {
    let v = parse(payload)?;
    let status = match v.get("status") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("missing status".into()),
    };
    let reason = || match v.get("reason") {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    match status.as_str() {
        "overloaded" => Ok(Response::Overloaded { reason: reason() }),
        "error" => Ok(Response::Error { reason: reason() }),
        "ok" => {
            let results = match v.get("results") {
                None => Vec::new(),
                Some(Value::Arr(rows)) => rows
                    .iter()
                    .map(|row| match row {
                        Value::Arr(pair) if pair.len() == 2 => {
                            let d = pair[0].as_f64().ok_or("distance must be a number")?;
                            let id = pair[1].as_f64().ok_or("id must be a number")?;
                            Ok((d, id as u32))
                        }
                        _ => Err("results rows must be [distance, id]".to_string()),
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                Some(_) => return Err("results must be an array".into()),
            };
            let ndc = field_u64(&v, "ndc")?.unwrap_or(0);
            let termination = match v.get("termination") {
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            };
            let explain = v.get("explain").cloned();
            Ok(Response::Ok(OkResponse {
                results,
                ndc,
                termination,
                explain,
            }))
        }
        other => Err(format!("unknown status {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn search_request_round_trip() {
        let g = Graph::from_edges(vec![0, 1, 1], &[(0, 1), (1, 2)]).unwrap();
        let payload = render_search_request("acme", 5, 16, 42, &g, true, Some(50), Some(1000));
        let req = parse_request(&payload).unwrap();
        let Request::Search(sr) = req else {
            panic!("expected search")
        };
        assert_eq!(sr.tenant, "acme");
        assert_eq!((sr.k, sr.b, sr.seed), (5, 16, 42));
        assert!(sr.explain);
        assert_eq!(sr.graph.node_count(), 3);
        assert_eq!(sr.budget.deadline, Some(Duration::from_millis(50)));
        assert_eq!(sr.budget.max_ndc, Some(1000));
        assert_eq!(sr.budget.max_hops, None);
    }

    #[test]
    fn distances_cross_the_wire_bit_exactly() {
        let results = vec![(0.1 + 0.2, 7u32), (std::f64::consts::PI, 3), (1.0 / 3.0, 0)];
        let payload = render_ok(&results, 12, "converged", None);
        let Response::Ok(ok) = parse_response(&payload).unwrap() else {
            panic!("expected ok")
        };
        let got: Vec<(u64, u32)> = ok
            .results
            .iter()
            .map(|&(d, id)| (d.to_bits(), id))
            .collect();
        let want: Vec<(u64, u32)> = results.iter().map(|&(d, id)| (d.to_bits(), id)).collect();
        assert_eq!(got, want);
        assert_eq!(ok.ndc, 12);
        assert_eq!(ok.termination, "converged");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"op":"fly"}"#,
            r#"{"op":"search","k":5,"b":8}"#,
            r#"{"op":"search","k":0,"b":8,"labels":[0]}"#,
            r#"{"op":"search","k":5,"b":8,"labels":[0],"edges":[[0,9]]}"#,
            r#"{"op":"search","k":5,"b":8,"labels":[-1]}"#,
            r#"{"op":"search","k":5,"b":8,"labels":[0],"deadline_ms":-4}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn shed_response_is_typed() {
        let payload = render_overloaded("inflight cap (64) reached");
        match parse_response(&payload).unwrap() {
            Response::Overloaded { reason } => assert!(reason.contains("inflight cap")),
            other => panic!("expected overloaded, got {other:?}"),
        }
    }

    #[test]
    fn escaping_survives_round_trip() {
        let payload = render_error("quote \" backslash \\ newline \n tab \t");
        match parse_response(&payload).unwrap() {
            Response::Error { reason } => {
                assert_eq!(reason, "quote \" backslash \\ newline \n tab \t")
            }
            other => panic!("expected error, got {other:?}"),
        }
    }
}
