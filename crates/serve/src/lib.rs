//! `lan-serve`: the online k-ANN query service.
//!
//! The offline pipeline (`lan-core`) answers one query per call; this
//! crate turns a built [`ShardedLanIndex`] into a network service that
//! answers many concurrent queries *faster in aggregate than serially*,
//! without changing a single result bit:
//!
//! * [`proto`] — length-prefixed JSON frames over TCP, plus a
//!   `GET /metrics` Prometheus endpoint on the same port;
//! * [`admission`] — global in-flight cap with per-tenant fair share;
//! * [`server`] — per-shard micro-batching workers: co-batched queries
//!   share each shard's cross-query [`FusedScoreService`] funnel (one
//!   `FusedHeads` matmul for all of them) and draw per-query pair slabs
//!   from a reusable [`SlabArena`];
//! * [`client`] — a minimal blocking client;
//! * [`config`] — `LAN_SERVE_*` knobs through the strict `lan_par::env`
//!   parser.
//!
//! The equivalence contract — served results, NDC, and EXPLAIN tier
//! attribution bit-identical to the serial
//! `ShardedLanIndex::search_budgeted` — is property-tested end to end
//! (TCP round-trip included) in `tests/equivalence.rs`.
//!
//! [`ShardedLanIndex`]: lan_core::ShardedLanIndex
//! [`FusedScoreService`]: lan_models::FusedScoreService
//! [`SlabArena`]: lan_models::SlabArena

pub mod admission;
pub mod client;
pub mod config;
pub mod proto;
pub mod server;

pub use admission::{Admission, AdmitError};
pub use client::{Client, SearchCall};
pub use config::ServeConfig;
pub use proto::{OkResponse, Response};
pub use server::{serve, ServerHandle};
