//! Server configuration from `LAN_SERVE_*` environment variables.
//!
//! Every knob parses through `lan_par::env` — a malformed value yields a
//! typed [`EnvError`] on the `try_` path and a once-per-key stderr
//! warning plus the documented default on the total path, never a silent
//! fallback.

use lan_par::env::{self, EnvError};
use std::net::SocketAddr;
use std::time::Duration;

/// Default listen address (`LAN_SERVE_ADDR`). Port 0 delegates port
/// choice to the OS — the bound address is reported by the handle.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7470";
/// Default micro-batch size cap per shard worker pop (`LAN_SERVE_BATCH`).
pub const DEFAULT_BATCH: usize = 8;
/// Default wait for co-batchable queries after the first pop, in
/// microseconds (`LAN_SERVE_BATCH_WAIT_US`).
pub const DEFAULT_BATCH_WAIT_US: u64 = 200;
/// Default global in-flight admission cap (`LAN_SERVE_MAX_INFLIGHT`).
pub const DEFAULT_MAX_INFLIGHT: usize = 64;

/// Resolved serving configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address.
    pub addr: SocketAddr,
    /// Micro-batch size cap: a shard worker pops at most this many
    /// queries per scoring pass.
    pub batch: usize,
    /// How long a shard worker holds its first popped query waiting for
    /// co-batchable arrivals. Zero disables the wait (batch still forms
    /// from whatever is already queued).
    pub batch_wait: Duration,
    /// Global cap on admitted-but-unanswered queries; arrivals beyond it
    /// get a typed `overloaded` response.
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.parse().expect("default address parses"),
            batch: DEFAULT_BATCH,
            batch_wait: Duration::from_micros(DEFAULT_BATCH_WAIT_US),
            max_inflight: DEFAULT_MAX_INFLIGHT,
        }
    }
}

fn socket_addr(s: &str) -> Result<SocketAddr, String> {
    s.parse()
        .map_err(|_| format!("expected host:port socket address, got {s:?}"))
}

fn micros(s: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("expected a non-negative integer (microseconds), got {s:?}"))
}

impl ServeConfig {
    /// Reads the `LAN_SERVE_*` variables; any malformed value is a typed
    /// error naming the key, the raw value, and the reason.
    pub fn try_from_env() -> Result<Self, EnvError> {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = env::parse_var("LAN_SERVE_ADDR", socket_addr)? {
            cfg.addr = addr;
        }
        if let Some(batch) = env::parse_var("LAN_SERVE_BATCH", env::positive_usize)? {
            cfg.batch = batch;
        }
        if let Some(us) = env::parse_var("LAN_SERVE_BATCH_WAIT_US", micros)? {
            cfg.batch_wait = Duration::from_micros(us);
        }
        if let Some(cap) = env::parse_var("LAN_SERVE_MAX_INFLIGHT", env::positive_usize)? {
            cfg.max_inflight = cap;
        }
        Ok(cfg)
    }

    /// Total variant of [`ServeConfig::try_from_env`]: malformed values
    /// warn once to stderr and keep their defaults.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(addr) = env::parse_var_or_warn("LAN_SERVE_ADDR", socket_addr) {
            cfg.addr = addr;
        }
        if let Some(batch) = env::parse_var_or_warn("LAN_SERVE_BATCH", env::positive_usize) {
            cfg.batch = batch;
        }
        if let Some(us) = env::parse_var_or_warn("LAN_SERVE_BATCH_WAIT_US", micros) {
            cfg.batch_wait = Duration::from_micros(us);
        }
        if let Some(cap) = env::parse_var_or_warn("LAN_SERVE_MAX_INFLIGHT", env::positive_usize) {
            cfg.max_inflight = cap;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_par::testenv::with_env;

    const KEYS: [&str; 4] = [
        "LAN_SERVE_ADDR",
        "LAN_SERVE_BATCH",
        "LAN_SERVE_BATCH_WAIT_US",
        "LAN_SERVE_MAX_INFLIGHT",
    ];

    fn clear() -> Vec<(&'static str, Option<&'static str>)> {
        KEYS.iter().map(|&k| (k, None)).collect()
    }

    #[test]
    fn defaults_when_unset() {
        with_env(&clear(), || {
            let cfg = ServeConfig::try_from_env().unwrap();
            assert_eq!(cfg, ServeConfig::default());
            assert_eq!(cfg.addr.port(), 7470);
            assert_eq!(cfg.batch, DEFAULT_BATCH);
            assert_eq!(cfg.batch_wait, Duration::from_micros(DEFAULT_BATCH_WAIT_US));
            assert_eq!(cfg.max_inflight, DEFAULT_MAX_INFLIGHT);
        });
    }

    #[test]
    fn valid_values_parse() {
        let mut vars = clear();
        vars[0].1 = Some("0.0.0.0:0");
        vars[1].1 = Some("32");
        vars[2].1 = Some("0");
        vars[3].1 = Some("256");
        with_env(&vars, || {
            let cfg = ServeConfig::try_from_env().unwrap();
            assert_eq!(cfg.addr, "0.0.0.0:0".parse().unwrap());
            assert_eq!(cfg.batch, 32);
            assert_eq!(cfg.batch_wait, Duration::ZERO);
            assert_eq!(cfg.max_inflight, 256);
        });
    }

    /// Every malformed value must reject with a typed error naming its
    /// key — no silent fallback.
    #[test]
    fn reject_set() {
        let rejects: [(&str, &[&str]); 4] = [
            (
                "LAN_SERVE_ADDR",
                &[
                    "nonsense",
                    "localhost",
                    "1.2.3.4",
                    ":80",
                    "1.2.3.4:notaport",
                ],
            ),
            ("LAN_SERVE_BATCH", &["0", "-1", "eight", "1.5", ""]),
            ("LAN_SERVE_BATCH_WAIT_US", &["-200", "fast", "0.5", ""]),
            ("LAN_SERVE_MAX_INFLIGHT", &["0", "-64", "lots", ""]),
        ];
        for (key, values) in rejects {
            for v in values {
                let mut vars = clear();
                let slot = vars.iter_mut().find(|(k, _)| *k == key).unwrap();
                slot.1 = Some(v);
                with_env(&vars, || {
                    let err = ServeConfig::try_from_env()
                        .expect_err(&format!("{key}={v:?} must be rejected"));
                    assert_eq!(err.key, key);
                    assert_eq!(err.value, *v);
                });
            }
        }
    }

    /// The total path keeps defaults for malformed values (and warns once,
    /// which `reset_warnings` makes observable elsewhere).
    #[test]
    fn total_path_falls_back_to_defaults() {
        let mut vars = clear();
        vars[1].1 = Some("zero");
        vars[3].1 = Some("0");
        with_env(&vars, || {
            lan_par::env::reset_warnings();
            let cfg = ServeConfig::from_env();
            assert_eq!(cfg.batch, DEFAULT_BATCH);
            assert_eq!(cfg.max_inflight, DEFAULT_MAX_INFLIGHT);
        });
    }
}
