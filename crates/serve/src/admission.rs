//! Admission control: a global in-flight cap with per-tenant fair share.
//!
//! Admission is the server's first degradation tier (the second is the
//! deadline shed at dequeue time — see `server`). A query is admitted
//! when (a) total in-flight queries are below `max_inflight` and (b) the
//! tenant holds fewer than its fair share `max(1, max_inflight /
//! active_tenants)` of the slots, where `active_tenants` counts tenants
//! with at least one in-flight query (including the candidate). The share
//! recomputes on every admission, so a tenant alone on the box may use
//! every slot, and the arrival of a second tenant immediately halves the
//! first one's headroom for *new* admissions — already-admitted queries
//! are never revoked.
//!
//! Rejections are typed ([`AdmitError`]) and turn into the protocol's
//! `overloaded` response; nothing is silently queued without bound.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Why a query was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The global in-flight cap is reached.
    Capacity { max_inflight: usize },
    /// The tenant already holds its fair share of the slots.
    TenantShare { tenant: String, share: usize },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Capacity { max_inflight } => {
                write!(f, "inflight cap ({max_inflight}) reached")
            }
            AdmitError::TenantShare { tenant, share } => {
                write!(f, "tenant {tenant:?} at fair share ({share})")
            }
        }
    }
}

struct AdmState {
    total: usize,
    tenants: HashMap<String, usize>,
}

/// The admission gate. Shared by every connection handler.
pub struct Admission {
    max_inflight: usize,
    state: Mutex<AdmState>,
    inflight_gauge: &'static lan_obs::Gauge,
}

impl Admission {
    pub fn new(max_inflight: usize) -> Arc<Self> {
        assert!(max_inflight >= 1);
        Arc::new(Admission {
            max_inflight,
            state: Mutex::new(AdmState {
                total: 0,
                tenants: HashMap::new(),
            }),
            inflight_gauge: lan_obs::gauge(lan_obs::names::SERVE_INFLIGHT),
        })
    }

    /// Current in-flight count (test observability).
    pub fn inflight(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// Tries to admit one query for `tenant`; the returned token holds
    /// the slot until dropped.
    pub fn try_admit(self: &Arc<Self>, tenant: &str) -> Result<AdmitToken, AdmitError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.total >= self.max_inflight {
            return Err(AdmitError::Capacity {
                max_inflight: self.max_inflight,
            });
        }
        let held = st.tenants.get(tenant).copied().unwrap_or(0);
        // Active tenants including the candidate, whether or not it holds
        // a slot yet.
        let active = st.tenants.len() + usize::from(held == 0);
        let share = (self.max_inflight / active).max(1);
        if held >= share {
            return Err(AdmitError::TenantShare {
                tenant: tenant.to_string(),
                share,
            });
        }
        st.total += 1;
        *st.tenants.entry(tenant.to_string()).or_insert(0) += 1;
        self.inflight_gauge.set(st.total as i64);
        Ok(AdmitToken {
            adm: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    fn release(&self, tenant: &str) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.total = st.total.saturating_sub(1);
        if let Some(n) = st.tenants.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                st.tenants.remove(tenant);
            }
        }
        self.inflight_gauge.set(st.total as i64);
    }
}

/// An admitted query's slot; releasing is infallible and automatic.
pub struct AdmitToken {
    adm: Arc<Admission>,
    tenant: String,
}

impl std::fmt::Debug for AdmitToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmitToken")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl Drop for AdmitToken {
    fn drop(&mut self) {
        self.adm.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_tenant_uses_every_slot() {
        let adm = Admission::new(4);
        let tokens: Vec<AdmitToken> = (0..4).map(|_| adm.try_admit("a").unwrap()).collect();
        assert_eq!(
            adm.try_admit("a").unwrap_err(),
            AdmitError::Capacity { max_inflight: 4 }
        );
        drop(tokens);
        assert_eq!(adm.inflight(), 0);
        assert!(adm.try_admit("a").is_ok());
    }

    #[test]
    fn second_tenant_halves_the_share() {
        let adm = Admission::new(8);
        // Tenant a fills its (sole-tenant) share of 8...
        let a: Vec<AdmitToken> = (0..8).map(|_| adm.try_admit("a").unwrap()).collect();
        // ...so b is refused by capacity, not by share.
        assert_eq!(
            adm.try_admit("b").unwrap_err(),
            AdmitError::Capacity { max_inflight: 8 }
        );
        drop(a);
        // With b holding slots, a's share is 8/2 = 4. Keep the total
        // below capacity (2 + 4 = 6 < 8) so it is the share gate — not
        // the capacity gate, which is checked first — that refuses a.
        let _b: Vec<AdmitToken> = (0..2).map(|_| adm.try_admit("b").unwrap()).collect();
        let _a: Vec<AdmitToken> = (0..4).map(|_| adm.try_admit("a").unwrap()).collect();
        assert_eq!(
            adm.try_admit("a").unwrap_err(),
            AdmitError::TenantShare {
                tenant: "a".into(),
                share: 4
            }
        );
    }

    #[test]
    fn share_never_rounds_to_zero() {
        let adm = Admission::new(2);
        let _a = adm.try_admit("a").unwrap();
        let _b = adm.try_admit("b").unwrap();
        // Three tenants on two slots: share = max(1, 2/3) = 1, and the
        // capacity gate (not a zero share) is what refuses c.
        assert_eq!(
            adm.try_admit("c").unwrap_err(),
            AdmitError::Capacity { max_inflight: 2 }
        );
        drop(_a);
        let _c = adm.try_admit("c").unwrap();
    }

    #[test]
    fn release_on_drop_restores_tenant_headroom() {
        let adm = Admission::new(6);
        // Two tenants → share 3 each; a holds 2 and b fills its share,
        // leaving the total (5) below capacity so b's 4th admit is
        // refused by the share gate.
        let _a: Vec<AdmitToken> = (0..2).map(|_| adm.try_admit("a").unwrap()).collect();
        let b = adm.try_admit("b").unwrap();
        let _b2: Vec<AdmitToken> = (0..2).map(|_| adm.try_admit("b").unwrap()).collect();
        assert!(matches!(
            adm.try_admit("b").unwrap_err(),
            AdmitError::TenantShare { .. }
        ));
        drop(b);
        assert!(adm.try_admit("b").is_ok());
    }
}
