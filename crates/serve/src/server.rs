//! The serving loop: blocking acceptor + per-connection readers feeding
//! per-shard micro-batching workers.
//!
//! # Execution model
//!
//! Zero external dependencies and no async runtime: connections get one
//! blocking reader thread each (cheap at the closed-loop client counts
//! the service targets), and heavy work happens on `num_shards` *shard
//! workers*. An admitted query is enqueued on **every** shard's queue;
//! each worker pops up to `LAN_SERVE_BATCH` queued queries (holding the
//! first for `LAN_SERVE_BATCH_WAIT_US` to let co-batchable arrivals
//! land), then executes the micro-batch concurrently via
//! `lan_par::par_map_dyn`. Co-batched queries share the shard's
//! [`FusedScoreService`] — their hop-scoring feature rows stack into
//! single `FusedHeads` matmuls — and draw their pair slabs from the
//! shard's [`SlabArena`], so steady-state traffic allocates no slab
//! memory. Each query keeps its own `BudgetCtx` and per-shard
//! `DistCache` exactly as in the serial fan-out, which is what makes
//! results bit-identical to [`ShardedLanIndex::search_budgeted`]
//! (property-tested in `tests/equivalence.rs`).
//!
//! # Degradation tiers
//!
//! 1. **Admission** — the global in-flight cap and per-tenant fair share
//!    ([`crate::admission`]) refuse excess queries up front: typed
//!    `overloaded` response, no work done.
//! 2. **Deadline shed** — a query whose budget deadline has already
//!    passed when a shard worker dequeues it is shed, not executed
//!    (`serve.shed` counts both tiers). The same deadline also bounds
//!    execution via the ordinary budget machinery, with the GED poll
//!    stride tightened at boot ([`lan_ged::set_default_poll_stride`]) so
//!    in-flight kernels notice expiry promptly.
//!
//! The listener answers `GET /metrics` HTTP requests on the same port
//! with the Prometheus rendering of the global metrics snapshot.

use crate::admission::Admission;
use crate::config::ServeConfig;
use crate::proto::{
    parse_request, render_error, render_ok, render_overloaded, write_frame, Request, SearchRequest,
};
use lan_core::sharded::merged_explain;
use lan_core::{InitStrategy, QueryOutcome, RouteStrategy, SearchShared, ShardedLanIndex};
use lan_models::{FusedScoreService, SlabArena};
use lan_obs::explain::{QueryExplain, TimelineEvent};
use lan_obs::names;
use lan_pg::budget::BudgetCtx;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving queries answer with the full LAN pipeline (learned initial
/// selection + learned routing with CG acceleration) — the paper's
/// deployed configuration.
const INIT: InitStrategy = InitStrategy::LanIs;
const ROUTE: RouteStrategy = RouteStrategy::LanRoute { use_cg: true };

/// GED deadline-poll stride under serve mode: 4x tighter than the
/// offline default of 256, bounding a budgeted kernel's deadline
/// overshoot to 64 expansions (pinned by `poll_stride_bounds_deadline_
/// overshoot` in `lan-ged`).
const SERVE_POLL_STRIDE: usize = 64;

/// How long blocked reads wait before re-checking the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

enum Slot {
    Pending,
    Done(Box<(QueryOutcome, Option<QueryExplain>)>),
    Shed,
}

struct JobState {
    remaining: usize,
    slots: Vec<Slot>,
}

/// One admitted query in flight across the shard workers.
struct QueryJob {
    req: SearchRequest,
    ctx: BudgetCtx,
    t0: Instant,
    /// Arrival + deadline budget; a worker dequeuing past it sheds the
    /// query instead of executing.
    abs_deadline: Option<Instant>,
    shed: AtomicBool,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl QueryJob {
    fn new(req: SearchRequest, num_shards: usize) -> Self {
        let ctx = BudgetCtx::new(&req.budget);
        let t0 = Instant::now();
        let abs_deadline = req.budget.deadline.map(|d| t0 + d);
        QueryJob {
            req,
            ctx,
            t0,
            abs_deadline,
            shed: AtomicBool::new(false),
            state: Mutex::new(JobState {
                remaining: num_shards,
                slots: (0..num_shards).map(|_| Slot::Pending).collect(),
            }),
            cv: Condvar::new(),
        }
    }

    fn past_deadline(&self, now: Instant) -> bool {
        self.abs_deadline.is_some_and(|d| now >= d)
    }

    fn complete(&self, shard: usize, slot: Slot) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.slots[shard] = slot;
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Blocks until every shard has reported, then takes the slots.
    fn wait(&self) -> Vec<Slot> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.remaining > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        std::mem::take(&mut st.slots)
    }
}

struct ShardQueue {
    q: Mutex<VecDeque<Arc<QueryJob>>>,
    cv: Condvar,
}

struct ServeMetrics {
    requests: &'static lan_obs::Counter,
    shed: &'static lan_obs::Counter,
    occupancy: &'static lan_obs::Histogram,
    latency: &'static lan_obs::Histogram,
}

struct ServerInner {
    index: Arc<ShardedLanIndex>,
    cfg: ServeConfig,
    queues: Vec<ShardQueue>,
    scorers: Vec<FusedScoreService>,
    arenas: Vec<Arc<SlabArena>>,
    admission: Arc<Admission>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    metrics: ServeMetrics,
}

impl ServerInner {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for sq in &self.queues {
            let _g = sq.q.lock().unwrap_or_else(|e| e.into_inner());
            sq.cv.notify_all();
        }
        // Wake the acceptor's blocking accept().
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: bound address plus the thread tree for shutdown.
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0 to the OS choice).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (a `shutdown` request arrives), then
    /// joins every thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Stops the server from the hosting process and joins every thread.
    pub fn shutdown(mut self) {
        self.inner.begin_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.inner.shutdown.load(Ordering::SeqCst) {
            self.inner.begin_shutdown();
        }
        self.join_all();
    }
}

/// Boots the service on `cfg.addr` over a built sharded index. Returns
/// once the listener is bound; queries are served until a `shutdown`
/// request or [`ServerHandle::shutdown`].
pub fn serve(index: Arc<ShardedLanIndex>, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    lan_ged::set_default_poll_stride(SERVE_POLL_STRIDE);
    let listener = TcpListener::bind(cfg.addr)?;
    let addr = listener.local_addr()?;
    let num_shards = index.num_shards();
    let inner = Arc::new(ServerInner {
        queues: (0..num_shards)
            .map(|_| ShardQueue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect(),
        scorers: (0..num_shards).map(|_| FusedScoreService::new()).collect(),
        arenas: index
            .shards
            .iter()
            .map(|sh| Arc::new(SlabArena::new(&sh.models)))
            .collect(),
        admission: Admission::new(cfg.max_inflight),
        shutdown: AtomicBool::new(false),
        addr,
        metrics: ServeMetrics {
            requests: lan_obs::counter(names::SERVE_REQUESTS),
            shed: lan_obs::counter(names::SERVE_SHED),
            occupancy: lan_obs::histogram(names::SERVE_BATCH_OCCUPANCY),
            latency: lan_obs::histogram(names::SERVE_LATENCY_NS),
        },
        index,
        cfg,
    });

    let workers: Vec<JoinHandle<()>> = (0..num_shards)
        .map(|s| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("lan-serve-shard-{s}"))
                .spawn(move || shard_worker(s, &inner))
                .expect("spawn shard worker")
        })
        .collect();

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let inner = Arc::clone(&inner);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("lan-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let inner = Arc::clone(&inner);
                    let h = std::thread::Builder::new()
                        .name("lan-serve-conn".into())
                        .spawn(move || handle_conn(&inner, stream))
                        .expect("spawn connection handler");
                    conns.lock().unwrap_or_else(|e| e.into_inner()).push(h);
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        inner,
        addr,
        acceptor: Some(acceptor),
        workers,
        conns,
    })
}

/// One shard's micro-batching loop: pop → wait for co-batchable arrivals
/// → shed expired → execute the batch concurrently over the shared
/// scorer and arena.
fn shard_worker(s: usize, inner: &Arc<ServerInner>) {
    loop {
        let mut batch: Vec<Arc<QueryJob>> = Vec::new();
        {
            let sq = &inner.queues[s];
            let mut q = sq.q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    batch.push(j);
                    break;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = sq.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            let wait_deadline = Instant::now() + inner.cfg.batch_wait;
            loop {
                while batch.len() < inner.cfg.batch {
                    match q.pop_front() {
                        Some(j) => batch.push(j),
                        None => break,
                    }
                }
                if batch.len() >= inner.cfg.batch || inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let now = Instant::now();
                if now >= wait_deadline {
                    break;
                }
                let (guard, timeout) = sq
                    .cv
                    .wait_timeout(q, wait_deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if timeout.timed_out() {
                    // One final drain happens at the top of the loop.
                    if q.is_empty() {
                        break;
                    }
                }
            }
        }
        inner.metrics.occupancy.record(batch.len() as u64);

        let now = Instant::now();
        let (run, expired): (Vec<_>, Vec<_>) =
            batch.into_iter().partition(|j| !j.past_deadline(now));
        for job in expired {
            job.shed.store(true, Ordering::SeqCst);
            job.complete(s, Slot::Shed);
        }
        if run.is_empty() {
            continue;
        }
        let shared = SearchShared {
            scorer: &inner.scorers[s],
            arena: &inner.arenas[s],
        };
        let outs: Vec<(QueryOutcome, Option<QueryExplain>)> =
            lan_par::par_map_dyn(&run, lan_par::Grain::Fine, |job| {
                let r = &job.req;
                if r.explain {
                    let (out, ex) = inner.index.shard_search_explain_budgeted_shared(
                        s, &r.graph, r.k, r.b, INIT, ROUTE, r.seed, &job.ctx, &shared,
                    );
                    (out, Some(ex))
                } else {
                    let out = inner.index.shard_search_budgeted_shared(
                        s, &r.graph, r.k, r.b, INIT, ROUTE, r.seed, &job.ctx, &shared,
                    );
                    (out, None)
                }
            });
        for (job, (out, ex)) in run.iter().zip(outs) {
            job.complete(s, Slot::Done(Box::new((out, ex))));
        }
    }
}

/// Reads exactly `buf.len()` bytes, tolerating read-timeout ticks (used
/// to observe the shutdown flag). `Ok(false)` = clean EOF before any
/// byte; an EOF mid-buffer is an error.
fn read_full(inner: &ServerInner, stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Serves `GET /metrics`: drains the request head, writes one HTTP
/// response with the Prometheus rendering, and closes.
fn handle_metrics_scrape(inner: &ServerInner, stream: &mut TcpStream) -> std::io::Result<()> {
    // Drain the request head (bounded) until the blank line.
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 16 << 10 && !head.ends_with(b"\r\n\r\n") {
        if !read_full(inner, stream, &mut byte)? {
            break;
        }
        head.push(byte[0]);
    }
    let body = lan_obs::snapshot().to_prometheus();
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

fn handle_conn(inner: &Arc<ServerInner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Sniff: a JSON frame's 4-byte length prefix can never be
        // ASCII "GET " (that would be a 1.2 GB frame, over MAX_FRAME).
        let mut prefix = [0u8; 4];
        match read_full(inner, &mut stream, &mut prefix) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        if &prefix == b"GET " {
            let _ = handle_metrics_scrape(inner, &mut stream);
            return;
        }
        let n = u32::from_be_bytes(prefix) as usize;
        if n > crate::proto::MAX_FRAME {
            let _ = write_frame(&mut stream, render_error("frame too large").as_bytes());
            return;
        }
        let mut payload = vec![0u8; n];
        match read_full(inner, &mut stream, &mut payload) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let payload = match String::from_utf8(payload) {
            Ok(s) => s,
            Err(_) => {
                let _ = write_frame(&mut stream, render_error("frame is not UTF-8").as_bytes());
                continue;
            }
        };
        let resp = match parse_request(&payload) {
            Err(reason) => render_error(&reason),
            Ok(Request::Ping) => "{\"status\":\"ok\"}".to_string(),
            Ok(Request::Shutdown) => {
                inner.begin_shutdown();
                let _ = write_frame(&mut stream, b"{\"status\":\"ok\"}");
                return;
            }
            Ok(Request::Search(req)) => handle_search(inner, *req),
        };
        if write_frame(&mut stream, resp.as_bytes()).is_err() {
            return;
        }
    }
}

/// Admission → enqueue on every shard → wait → merge (or typed shed).
fn handle_search(inner: &Arc<ServerInner>, req: SearchRequest) -> String {
    inner.metrics.requests.inc();
    let _token = match inner.admission.try_admit(&req.tenant) {
        Ok(t) => t,
        Err(e) => {
            inner.metrics.shed.inc();
            return render_overloaded(&e.to_string());
        }
    };
    let (k, b, explain) = (req.k, req.b, req.explain);
    let job = Arc::new(QueryJob::new(req, inner.index.num_shards()));
    for sq in &inner.queues {
        sq.q.lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(Arc::clone(&job));
        sq.cv.notify_all();
    }
    let slots = job.wait();
    inner
        .metrics
        .latency
        .record(job.t0.elapsed().as_nanos() as u64);
    if job.shed.load(Ordering::SeqCst) {
        inner.metrics.shed.inc();
        return render_overloaded("deadline passed before execution");
    }
    let mut per_shard: Vec<QueryOutcome> = Vec::with_capacity(slots.len());
    let mut plans: Vec<QueryExplain> = Vec::with_capacity(if explain { slots.len() } else { 0 });
    for slot in slots {
        match slot {
            Slot::Done(done) => {
                let (out, ex) = *done;
                per_shard.push(out);
                if let Some(ex) = ex {
                    plans.push(ex);
                }
            }
            Slot::Pending | Slot::Shed => unreachable!("unshed jobs complete every shard"),
        }
    }
    let merged = inner
        .index
        .merge_shard_outcomes(per_shard, k, job.t0, job.ctx.termination());
    let explain_json = explain.then(|| {
        let mut timeline: Vec<TimelineEvent> = Vec::with_capacity(plans.len());
        let mut ndc_so_far = 0u64;
        for (s, p) in plans.iter().enumerate() {
            ndc_so_far += p.ndc;
            timeline.push(TimelineEvent {
                stage: format!("shard.{s}"),
                ndc: ndc_so_far,
                elapsed_ns: job.t0.elapsed().as_nanos() as u64,
            });
        }
        let ex = merged_explain(
            &merged,
            k,
            b,
            INIT,
            ROUTE,
            job.req.seed,
            &job.ctx,
            plans,
            timeline,
        );
        ex.to_json()
    });
    render_ok(
        &merged.results,
        merged.ndc as u64,
        merged.termination.as_str(),
        explain_json.as_deref(),
    )
}
