//! A minimal blocking client for the length-prefixed protocol — used by
//! the load-generator bench, the equivalence tests, and the CI smoke job.

use crate::proto::{parse_response, read_frame, render_search_request, write_frame, Response};
use lan_graph::Graph;
use std::io;
use std::net::{SocketAddr, TcpStream};

/// One search call's parameters.
pub struct SearchCall<'a> {
    pub tenant: &'a str,
    pub k: usize,
    pub b: usize,
    pub seed: u64,
    pub graph: &'a Graph,
    pub explain: bool,
    pub deadline_ms: Option<u64>,
    pub max_ndc: Option<u64>,
}

impl<'a> SearchCall<'a> {
    /// A plain unbudgeted call for `graph` under the default tenant.
    pub fn new(graph: &'a Graph, k: usize, b: usize, seed: u64) -> Self {
        SearchCall {
            tenant: "default",
            k,
            b,
            seed,
            graph,
            explain: false,
            deadline_ms: None,
            max_ndc: None,
        }
    }
}

/// A blocking connection to a LAN server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, payload: &str) -> io::Result<Response> {
        write_frame(&mut self.stream, payload.as_bytes())?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        let text = String::from_utf8(frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        parse_response(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One k-ANN query; returns the typed response (ok / overloaded /
    /// error).
    pub fn search(&mut self, call: &SearchCall<'_>) -> io::Result<Response> {
        let payload = render_search_request(
            call.tenant,
            call.k,
            call.b,
            call.seed,
            call.graph,
            call.explain,
            call.deadline_ms,
            call.max_ndc,
        );
        self.round_trip(&payload)
    }

    /// Health check.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip("{\"op\":\"ping\"}")? {
            Response::Ok(_) => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected ping response: {other:?}"),
            )),
        }
    }

    /// Asks the server to stop (acknowledged before it exits).
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip("{\"op\":\"shutdown\"}")? {
            Response::Ok(_) => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected shutdown response: {other:?}"),
            )),
        }
    }

    /// Scrapes `GET /metrics` from `addr` (separate connection — the
    /// server closes metrics connections after one response) and returns
    /// the Prometheus body.
    pub fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: lan\r\nConnection: close\r\n\r\n")?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        match raw.split_once("\r\n\r\n") {
            Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "metrics scrape failed",
            )),
        }
    }
}
