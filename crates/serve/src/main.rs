//! The `lan-serve` binary: build (or open from `LAN_STORE`) a sharded
//! index over the deterministic SYN database and serve it.
//!
//! ```text
//! LAN_STORE=store LAN_SERVE_ADDR=127.0.0.1:7470 \
//!     cargo run --release -p lan-serve
//! ```
//!
//! Knobs: `LAN_SERVE_GRAPHS` (database size, default 1000) and
//! `LAN_SERVE_SHARDS` (default 4) pick the tier; the serving knobs are
//! documented on [`lan_serve::ServeConfig`]. The cache key matches the
//! scale-campaign bench, so a `LAN_STORE` directory primed by
//! `lan-bench --bin scale` boots in seconds.
//!
//! **Probe mode** (the CI smoke client):
//!
//! ```text
//! lan-serve --probe 127.0.0.1:7470 --clients 8 --requests 32 --shutdown
//! ```
//!
//! connects the given number of concurrent clients to an already running
//! server, fires the deterministic query workload at it, checks every
//! response is `ok`, scrapes `GET /metrics`, pings, and (with
//! `--shutdown`) asks the server to stop cleanly.

use lan_core::{LanConfig, QuantConfig, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_par::env as lenv;
use lan_serve::{Client, Response, SearchCall, ServeConfig};
use std::sync::Arc;

/// The scale campaign's index configuration (kept in sync with
/// `lan-bench --bin scale` so the two share `LAN_STORE` cache entries).
fn serve_index_config() -> LanConfig {
    LanConfig {
        pg: lan_pg::PgConfig::new(6),
        model: lan_models::ModelConfig {
            embed_dim: 16,
            epochs: 2,
            max_samples_per_epoch: 300,
            nh_cover_k: 20,
            clusters: 6,
            top_clusters: 2,
            mlp_hidden: 16,
            ..lan_models::ModelConfig::default()
        },
        ds: 1.0,
        quant: QuantConfig::from_env(),
    }
}

/// Build or open the index, mirroring the bench cache-key convention
/// (`sharded_<name>_g<graphs>_q<queries>_seed<seed>_s<shards>.lan`).
fn build_or_open(num_graphs: usize, num_shards: usize) -> ShardedLanIndex {
    let spec = DatasetSpec::syn()
        .with_graphs(num_graphs)
        .with_queries(120)
        .with_metric(lan_ged::GedMethod::Hungarian);
    let cache = std::env::var("LAN_STORE").ok().map(|dir| {
        std::path::PathBuf::from(dir).join(format!(
            "sharded_{}_g{}_q{}_seed{}_s{}.lan",
            spec.name.to_lowercase(),
            spec.num_graphs,
            spec.num_queries,
            spec.seed,
            num_shards
        ))
    });
    if let Some(path) = &cache {
        if let Ok(index) = ShardedLanIndex::open(path) {
            eprintln!("[lan-serve] opened cached index {}", path.display());
            return index;
        }
    }
    eprintln!("[lan-serve] building index: {num_graphs} graphs, {num_shards} shards");
    let dataset = Dataset::generate_par(spec);
    let index = ShardedLanIndex::build(&dataset, &serve_index_config(), num_shards);
    if let Some(path) = &cache {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match index.save(path) {
            Ok(bytes) => eprintln!("[lan-serve] cached to {} ({bytes} bytes)", path.display()),
            Err(e) => eprintln!("[lan-serve] cache write failed: {e}"),
        }
    }
    index
}

/// Drives `clients` concurrent clients against a running server at
/// `addr` (probe mode — the CI smoke job's client side).
fn probe(addr: std::net::SocketAddr, clients: usize, total: usize, do_shutdown: bool) {
    let num_graphs =
        lenv::parse_var_or_warn("LAN_SERVE_GRAPHS", lenv::positive_usize).unwrap_or(1000);
    let spec = DatasetSpec::syn()
        .with_graphs(num_graphs)
        .with_queries(120)
        .with_metric(lan_ged::GedMethod::Hungarian);
    let queries = Arc::new(Dataset::generate_par(spec).queries);
    let per_client = total.div_ceil(clients);
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect probe client");
                for j in 0..per_client {
                    let qi = (c * per_client + j) % queries.len();
                    let call = SearchCall::new(&queries[qi], 5, 16, qi as u64);
                    match client.search(&call).expect("search round-trip") {
                        Response::Ok(ok) => {
                            assert!(!ok.results.is_empty(), "query {qi}: empty result set")
                        }
                        other => panic!("query {qi}: expected ok, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("probe client thread");
    }
    let metrics = Client::scrape_metrics(addr).expect("metrics scrape");
    assert!(
        metrics.contains("serve_requests_total"),
        "metrics scrape missing serve_requests_total:\n{metrics}"
    );
    let mut client = Client::connect(addr).expect("connect control client");
    client.ping().expect("ping");
    if do_shutdown {
        client.shutdown().expect("shutdown acknowledged");
    }
    eprintln!(
        "[lan-serve] probe ok: {} requests over {clients} clients{}",
        clients * per_client,
        if do_shutdown { ", shutdown sent" } else { "" }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--probe") {
        let addr = args
            .get(i + 1)
            .and_then(|a| a.parse().ok())
            .expect("--probe needs an ip:port address");
        let flag_val = |name: &str, default: usize| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        probe(
            addr,
            flag_val("--clients", 8),
            flag_val("--requests", 32),
            args.iter().any(|a| a == "--shutdown"),
        );
        return;
    }
    let cfg = ServeConfig::from_env();
    let num_graphs =
        lenv::parse_var_or_warn("LAN_SERVE_GRAPHS", lenv::positive_usize).unwrap_or(1000);
    let num_shards = lenv::parse_var_or_warn("LAN_SERVE_SHARDS", lenv::positive_usize).unwrap_or(4);
    let index = Arc::new(build_or_open(num_graphs, num_shards));
    let (batch, batch_wait, max_inflight) = (cfg.batch, cfg.batch_wait, cfg.max_inflight);
    let handle = lan_serve::serve(index, cfg).expect("bind listen address");
    eprintln!(
        "[lan-serve] listening on {} (batch={batch}, wait={batch_wait:?}, max_inflight={max_inflight})",
        handle.addr(),
    );
    handle.wait();
    eprintln!("[lan-serve] server shut down cleanly");
}
