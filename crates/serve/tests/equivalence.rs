//! Over-the-wire half of the serving equivalence contract: a booted
//! server answering concurrent TCP clients must return results, NDC,
//! termination, and EXPLAIN tier attribution **bit-identical** to the
//! serial [`ShardedLanIndex::search_budgeted`] /
//! [`ShardedLanIndex::search_explain_budgeted`] entry points — protocol
//! encoding, micro-batching, the cross-query funnel, and slab pooling
//! all included. (The in-process half lives in
//! `lan-core/tests/shared_equivalence.rs`.)
//!
//! Also covered here: the typed `overloaded` degradation path, ping,
//! the `/metrics` scrape on the query port, and clean shutdown.

use lan_core::{InitStrategy, LanConfig, QueryOutcome, RouteStrategy, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_obs::json::Value;
use lan_pg::budget::QueryBudget;
use lan_serve::{serve, Client, Response, SearchCall, ServeConfig, ServerHandle};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: lan_pg::PgConfig::new(4),
        model: lan_models::ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..lan_models::ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(48)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    )
}

fn fixture() -> Arc<ShardedLanIndex> {
    static FIXTURE: OnceLock<Arc<ShardedLanIndex>> = OnceLock::new();
    Arc::clone(FIXTURE.get_or_init(|| Arc::new(ShardedLanIndex::build(&dataset(), &tiny_cfg(), 3))))
}

/// Boots a server over the shared fixture on an ephemeral port.
fn boot(batch: usize, wait: Duration, max_inflight: usize) -> ServerHandle {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        batch,
        batch_wait: wait,
        max_inflight,
    };
    serve(fixture(), cfg).expect("bind ephemeral port")
}

fn serial(seed: u64, k: usize, b: usize) -> QueryOutcome {
    let ds = dataset();
    fixture().search_budgeted(
        &ds.queries[(seed % 10) as usize],
        k,
        b,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
        seed,
        &QueryBudget::unlimited(),
    )
}

fn result_bits(results: &[(f64, u32)]) -> Vec<(u64, u32)> {
    results.iter().map(|&(d, id)| (d.to_bits(), id)).collect()
}

fn num(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(|x| x.as_f64())
        .unwrap_or_else(|| panic!("explain field {key} missing")) as u64
}

/// K concurrent clients over TCP, micro-batching enabled: every reply
/// must match that client's serial run bit for bit.
#[test]
fn concurrent_wire_results_match_serial_bitwise() {
    let handle = boot(4, Duration::from_micros(2000), 64);
    let addr = handle.addr();
    let serial_runs: Vec<(u64, QueryOutcome)> =
        (0..12u64).map(|seed| (seed, serial(seed, 5, 8))).collect();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let ds = dataset();
                let mut client = Client::connect(addr).unwrap();
                (0..3u64)
                    .map(|i| {
                        let seed = t * 3 + i;
                        let q = &ds.queries[(seed % 10) as usize];
                        let resp = client.search(&SearchCall::new(q, 5, 8, seed)).unwrap();
                        let Response::Ok(ok) = resp else {
                            panic!("seed {seed}: expected ok, got {resp:?}")
                        };
                        (seed, ok)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut wire: Vec<_> = threads
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    wire.sort_by_key(|&(seed, _)| seed);
    for ((seed, want), (wseed, got)) in serial_runs.iter().zip(&wire) {
        assert_eq!(seed, wseed);
        assert_eq!(
            result_bits(&want.results),
            result_bits(&got.results),
            "seed {seed}: served results diverged from serial"
        );
        assert_eq!(want.ndc as u64, got.ndc, "seed {seed}: NDC diverged");
        assert_eq!(
            want.termination.as_str(),
            got.termination,
            "seed {seed}: termination diverged"
        );
    }
}

/// Opt-in EXPLAIN plans cross the wire with counts (NDC, cache hits,
/// hops, cascade tier attribution, per-shard sub-plans) identical to the
/// serial EXPLAIN path.
#[test]
fn explain_attribution_crosses_the_wire() {
    let handle = boot(4, Duration::from_micros(500), 64);
    let ds = dataset();
    let sharded = fixture();
    let mut client = Client::connect(handle.addr()).unwrap();
    for seed in 0..4u64 {
        let q = &ds.queries[(seed % 10) as usize];
        let (serial_out, serial_ex) = sharded.search_explain_budgeted(
            q,
            5,
            8,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            seed,
            &QueryBudget::unlimited(),
        );
        let mut call = SearchCall::new(q, 5, 8, seed);
        call.explain = true;
        let Response::Ok(ok) = client.search(&call).unwrap() else {
            panic!("seed {seed}: expected ok")
        };
        assert_eq!(result_bits(&serial_out.results), result_bits(&ok.results));
        let ex = ok.explain.as_ref().expect("explain plan attached");
        assert_eq!(serial_ex.ndc, num(ex, "ndc"), "seed {seed}: NDC diverged");
        assert_eq!(serial_ex.cache_hits, num(ex, "cache_hits"));
        assert_eq!(serial_ex.hops, num(ex, "hops"));
        let tiers = ex.get("tiers").expect("tiers object");
        assert_eq!(
            (
                serial_ex.tiers.quant_skips,
                serial_ex.tiers.lb_prunes,
                serial_ex.tiers.tau_aborts,
                serial_ex.tiers.full_solves
            ),
            (
                num(tiers, "quant_skips"),
                num(tiers, "lb_prunes"),
                num(tiers, "tau_aborts"),
                num(tiers, "full_solves")
            ),
            "seed {seed}: tier attribution diverged"
        );
        let Some(Value::Arr(shards)) = ex.get("shards") else {
            panic!("per-shard sub-plans missing")
        };
        assert_eq!(serial_ex.shards.len(), shards.len());
        for (want, got) in serial_ex.shards.iter().zip(shards) {
            assert_eq!(want.ndc, num(got, "ndc"), "per-shard NDC diverged");
            assert_eq!(want.hops, num(got, "hops"), "per-shard hops diverged");
        }
    }
}

/// An already-expired deadline is shed at dequeue time with the typed
/// `overloaded` response — the query is never executed.
#[test]
fn zero_deadline_sheds_with_typed_overloaded() {
    let handle = boot(4, Duration::from_micros(100), 64);
    let ds = dataset();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut call = SearchCall::new(&ds.queries[0], 5, 8, 0);
    call.deadline_ms = Some(0);
    match client.search(&call).unwrap() {
        Response::Overloaded { reason } => {
            assert!(reason.contains("deadline"), "unexpected reason: {reason}")
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    // The connection stays usable after a shed.
    let ok = client
        .search(&SearchCall::new(&ds.queries[0], 3, 6, 1))
        .unwrap();
    assert!(matches!(ok, Response::Ok(_)));
}

/// Malformed frames get a typed `error` response and the connection
/// survives for the next (valid) request.
#[test]
fn malformed_request_gets_typed_error() {
    use lan_serve::proto::{parse_response, read_frame, write_frame};
    let handle = boot(2, Duration::from_micros(100), 8);
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    write_frame(&mut stream, b"{\"op\":\"fly\"}").unwrap();
    let frame = read_frame(&mut stream).unwrap().expect("response frame");
    let resp = parse_response(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { .. }), "got {resp:?}");
}

/// Ping, a Prometheus scrape on the query port, and a client-initiated
/// clean shutdown that joins every server thread.
#[test]
fn ping_metrics_and_clean_shutdown() {
    let handle = boot(2, Duration::from_micros(100), 8);
    let addr = handle.addr();
    let ds = dataset();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let resp = client
        .search(&SearchCall::new(&ds.queries[1], 4, 8, 7))
        .unwrap();
    assert!(matches!(resp, Response::Ok(_)));
    let body = Client::scrape_metrics(addr).expect("metrics scrape");
    assert!(
        body.contains("serve_requests_total"),
        "metrics body missing serve_requests_total:\n{body}"
    );
    assert!(body.contains("serve_batch_occupancy"));
    client.shutdown().unwrap();
    // Joins acceptor, shard workers, and connection handlers.
    handle.wait();
}
