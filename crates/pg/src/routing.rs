//! Baseline greedy (beam) routing on the proximity graph — paper
//! Algorithm 1.
//!
//! At each step the router explores the unexplored pooled node closest to
//! the query, computes distances for **all** of its neighbors (this is the
//! exhaustive neighbor exploration whose NDC LAN attacks), adds them to the
//! pool, and resizes the pool to the beam size `b`. The routing stops when
//! every pooled node is explored; the top-`k` of the pool are the k-ANNs.

use crate::budget::{budgeted_get, budgeted_get_within, BudgetCtx, Termination};
use crate::metric::{DistBound, DistCache};
use crate::pool::{Pool, PoolEntry, RouterState};

/// The outcome of one routed query.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// `(distance, id)` of the k best candidates, ascending.
    pub results: Vec<(f64, u32)>,
    /// Number of unique distance computations (NDC).
    pub ndc: usize,
    /// Nodes in exploration order (for the Lemma 1 equivalence tests).
    pub exploration_order: Vec<u32>,
    /// How the routing ended ([`Termination::Converged`] unless a budget
    /// bound it; the results are best-so-far either way).
    pub termination: Termination,
}

impl RouteResult {
    /// Just the result ids.
    pub fn ids(&self) -> Vec<u32> {
        self.results.iter().map(|&(_, id)| id).collect()
    }
}

/// Seals a route: top-k of the pool, NDC, exploration order, and the
/// termination tag; emits the trace `end` event for traced queries.
/// Shared by both routers (Algorithm 1 and `np_route`).
pub(crate) fn finish_route(
    w: &Pool,
    state: RouterState,
    cache: &DistCache<'_>,
    k: usize,
    stopped: Option<Termination>,
) -> RouteResult {
    let termination = stopped.unwrap_or(Termination::Converged);
    let r = RouteResult {
        results: w.top_k(k).into_iter().map(|e| (e.dist, e.id)).collect(),
        ndc: cache.ndc(),
        exploration_order: state.order,
        termination,
    };
    if let Some(q) = lan_obs::trace::active_query() {
        lan_obs::trace::emit_end(q, termination.as_str(), r.ndc as u64);
    }
    r
}

/// Algorithm 1: beam search over the base-layer adjacency `adj` from the
/// given entry nodes.
pub fn beam_search(
    adj: &[Vec<u32>],
    cache: &DistCache<'_>,
    entries: &[u32],
    b: usize,
    k: usize,
) -> RouteResult {
    beam_search_budgeted(adj, cache, entries, b, k, &BudgetCtx::unlimited())
}

/// Algorithm 1 under a query budget: identical to [`beam_search`] while
/// the budget holds (bit-identical with an unlimited one); on exhaustion
/// the walk stops and the best-so-far pool is returned, tagged with the
/// bound that fired. Never panics, never errors.
pub fn beam_search_budgeted(
    adj: &[Vec<u32>],
    cache: &DistCache<'_>,
    entries: &[u32],
    b: usize,
    k: usize,
    ctx: &BudgetCtx,
) -> RouteResult {
    assert!(b >= 1, "beam size must be at least 1");
    let m_hops = lan_obs::counter(lan_obs::names::ROUTE_HOPS);
    let mut w = Pool::new();
    let mut state = RouterState::new();
    let mut stopped: Option<Termination> = None;
    // Gate for the threshold-gated metric cascade: a neighbor whose lower
    // bound strictly exceeds the worst distance a full pool kept at the
    // last resize would be truncated by the next resize before any pool
    // query could see it, so it is never pooled at all. Algorithm 1 has no
    // γ threshold, hence gamma = -inf (the gate alone decides). With an
    // ungated metric every answer is Exact and this is the seed algorithm.
    //
    // The gate argument only holds for k <= b: on budget exhaustion the
    // harvest reads the top-k of the *un-resized* pool, so with k > b a
    // candidate beyond the b kept entries could still surface there —
    // gating stays off (+inf) in that regime.
    let gating = k <= b;
    let mut gate = f64::INFINITY;
    for &e in entries {
        match budgeted_get(cache, ctx, e) {
            Ok(d) => w.add(e, d),
            Err(t) => {
                stopped = Some(t);
                break;
            }
        }
    }

    while stopped.is_none() {
        let Some(PoolEntry { id: g, .. }) = w.min_unexplored(&state) else {
            break;
        };
        if state.order.len() >= ctx.max_hops() {
            ctx.note_local(Termination::Degraded);
            stopped = Some(Termination::Degraded);
            break;
        }
        for &nb in &adj[g as usize] {
            match budgeted_get_within(cache, ctx, nb, f64::NEG_INFINITY, gate) {
                Ok(DistBound::Exact(d)) => w.add(nb, d),
                Ok(DistBound::AtLeast(_)) => {} // provably truncated by the next resize
                Err(t) => {
                    stopped = Some(t);
                    break;
                }
            }
        }
        state.mark_explored(g);
        m_hops.inc();
        w.resize(b, &state);
        if gating {
            gate = w.prune_gate(b);
        }
    }

    finish_route(&w, state, cache, k, stopped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::DistCache;

    /// A path PG 0-1-2-3-4 with the query nearest node 4.
    fn path_adj() -> Vec<Vec<u32>> {
        vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]]
    }

    #[test]
    fn routes_along_path_to_optimum() {
        let adj = path_adj();
        let dist = |id: u32| (4 - id) as f64;
        let cache = DistCache::new(&dist);
        let r = beam_search(&adj, &cache, &[0], 2, 1);
        assert_eq!(r.results[0], (0.0, 4));
        // Every node on the way gets its distance computed.
        assert_eq!(r.ndc, 5);
    }

    #[test]
    fn beam_one_can_get_stuck_at_local_optimum() {
        // Distances with a valley at node 1 and the true optimum at node 4,
        // but a hill at 2 — with b = 1 the pool forgets the bridge.
        let adj = path_adj();
        let d = [3.0, 1.0, 5.0, 4.0, 0.0];
        let dist = |id: u32| d[id as usize];
        let cache = DistCache::new(&dist);
        let r = beam_search(&adj, &cache, &[0], 1, 1);
        assert_eq!(r.results[0].1, 1, "b=1 should stop at the local optimum");
        // A wider beam escapes.
        let cache2 = DistCache::new(&dist);
        let r2 = beam_search(&adj, &cache2, &[0], 3, 1);
        assert_eq!(r2.results[0].1, 4);
    }

    #[test]
    fn k_results_sorted() {
        let adj = path_adj();
        let dist = |id: u32| (4 - id) as f64;
        let cache = DistCache::new(&dist);
        let r = beam_search(&adj, &cache, &[0], 5, 3);
        assert_eq!(r.ids(), vec![4, 3, 2]);
        assert!(r.results.windows(2).all(|p| p[0].0 <= p[1].0));
    }

    #[test]
    fn multiple_entries() {
        let adj = path_adj();
        let dist = |id: u32| (4 - id) as f64;
        let cache = DistCache::new(&dist);
        let r = beam_search(&adj, &cache, &[0, 4], 2, 1);
        assert_eq!(r.results[0].1, 4);
    }

    #[test]
    fn exploration_order_starts_at_entry() {
        let adj = path_adj();
        let dist = |id: u32| (4 - id) as f64;
        let cache = DistCache::new(&dist);
        let r = beam_search(&adj, &cache, &[0], 2, 1);
        assert_eq!(r.exploration_order[0], 0);
        assert_eq!(*r.exploration_order.last().unwrap(), 4);
    }

    #[test]
    fn isolated_entry_terminates() {
        let adj = vec![vec![]];
        let dist = |_: u32| 7.0;
        let cache = DistCache::new(&dist);
        let r = beam_search(&adj, &cache, &[0], 2, 1);
        assert_eq!(r.results, vec![(7.0, 0)]);
        assert_eq!(r.termination, crate::budget::Termination::Converged);
    }

    #[test]
    fn budgeted_matches_unbudgeted_with_large_cap() {
        use crate::budget::{BudgetCtx, QueryBudget, Termination};
        let adj = path_adj();
        let dist = |id: u32| (4 - id) as f64;
        let c1 = DistCache::new(&dist);
        let free = beam_search(&adj, &c1, &[0], 2, 2);
        let c2 = DistCache::new(&dist);
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(1000));
        let capped = beam_search_budgeted(&adj, &c2, &[0], 2, 2, &ctx);
        assert_eq!(free.results, capped.results);
        assert_eq!(free.ndc, capped.ndc);
        assert_eq!(free.exploration_order, capped.exploration_order);
        assert_eq!(capped.termination, Termination::Converged);
    }

    #[test]
    fn ndc_cap_degrades_gracefully() {
        use crate::budget::{BudgetCtx, QueryBudget, Termination};
        let adj = path_adj();
        let dist = |id: u32| (4 - id) as f64;
        for cap in 1..5 {
            let cache = DistCache::new(&dist);
            let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(cap));
            let r = beam_search_budgeted(&adj, &cache, &[0], 2, 1, &ctx);
            assert!(r.ndc <= cap, "cap {cap}: ndc {} over budget", r.ndc);
            assert_eq!(r.termination, Termination::NdcBudget);
            assert!(!r.results.is_empty(), "best-so-far results expected");
        }
        // The full walk needs 5 computations; a cap of 5 converges.
        let cache = DistCache::new(&dist);
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(5));
        let r = beam_search_budgeted(&adj, &cache, &[0], 2, 1, &ctx);
        assert_eq!(r.termination, Termination::Converged);
        assert_eq!(r.results[0], (0.0, 4));
    }

    #[test]
    fn hop_cap_degrades_gracefully() {
        use crate::budget::{BudgetCtx, QueryBudget, Termination};
        let adj = path_adj();
        let dist = |id: u32| (4 - id) as f64;
        let cache = DistCache::new(&dist);
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_hops(2));
        let r = beam_search_budgeted(&adj, &cache, &[0], 2, 1, &ctx);
        assert_eq!(r.exploration_order.len(), 2);
        assert_eq!(r.termination, Termination::Degraded);
        assert!(!r.results.is_empty());
    }
}

/// Approximate range search (the query class of GHashing [9], supported
/// here on the proximity graph): returns every discovered node within
/// distance `tau` of the query, ascending.
///
/// The router exhaustively explores any discovered node with
/// `d <= tau + eps` (the `eps` margin lets the walk cross thin gaps just
/// outside the ball); like all PG searches it is approximate — a cluster
/// reachable only through far intermediates can be missed.
pub fn range_search(
    adj: &[Vec<u32>],
    cache: &DistCache<'_>,
    entries: &[u32],
    tau: f64,
    eps: f64,
) -> Vec<(f64, u32)> {
    use std::collections::HashSet;
    let mut discovered: HashSet<u32> = HashSet::new();
    let mut frontier: Vec<u32> = Vec::new();
    // Stage 1: greedy descent from each entry toward the ball — the entry
    // itself may start far outside it.
    for &e in entries {
        let mut cur = e;
        let mut cur_d = cache.get(cur);
        loop {
            let mut best = cur;
            let mut best_d = cur_d;
            for &nb in &adj[cur as usize] {
                let d = cache.get(nb);
                if d < best_d || (d == best_d && nb < best) {
                    best = nb;
                    best_d = d;
                }
            }
            if best == cur {
                break;
            }
            cur = best;
            cur_d = best_d;
        }
        if discovered.insert(cur) {
            frontier.push(cur);
        }
    }
    // Stage 2: exhaustive expansion within the (eps-padded) ball.
    let mut explored: HashSet<u32> = HashSet::new();
    while let Some(&g) = frontier
        .iter()
        .filter(|&&g| !explored.contains(&g) && cache.get(g) <= tau + eps)
        .min_by(|&&a, &&b| cache.get(a).total_cmp(&cache.get(b)).then(a.cmp(&b)))
    {
        explored.insert(g);
        for &nb in &adj[g as usize] {
            if discovered.insert(nb) {
                cache.get(nb);
                frontier.push(nb);
            }
        }
    }
    let mut hits: Vec<(f64, u32)> = discovered
        .into_iter()
        .filter_map(|g| {
            let d = cache.get(g);
            (d <= tau).then_some((d, g))
        })
        .collect();
    hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    hits
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::metric::DistCache;

    #[test]
    fn range_search_collects_ball() {
        // Path 0-1-2-3-4 with distances 4,3,2,1,0: tau = 2 collects {2,3,4}.
        let adj: Vec<Vec<u32>> = vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]];
        let f = |id: u32| (4 - id) as f64;
        let cache = DistCache::new(&f);
        let hits = range_search(&adj, &cache, &[0], 2.0, 1.0);
        let ids: Vec<u32> = hits.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![4, 3, 2]);
    }

    #[test]
    fn range_search_empty_ball() {
        let adj: Vec<Vec<u32>> = vec![vec![1], vec![0]];
        let f = |id: u32| 10.0 + id as f64;
        let cache = DistCache::new(&f);
        let hits = range_search(&adj, &cache, &[0], 2.0, 1.0);
        assert!(hits.is_empty());
    }

    #[test]
    fn eps_bridges_gaps() {
        // 0(3) - 1(4) - 2(1): tau = 3 needs eps >= 1 to cross node 1.
        let adj: Vec<Vec<u32>> = vec![vec![1], vec![0, 2], vec![1]];
        let d = [3.0, 4.0, 1.0];
        let f = |id: u32| d[id as usize];
        let c1 = DistCache::new(&f);
        let no_eps = range_search(&adj, &c1, &[0], 3.0, 0.0);
        assert_eq!(no_eps.len(), 1, "without eps the walk stops at node 1");
        let c2 = DistCache::new(&f);
        let with_eps = range_search(&adj, &c2, &[0], 3.0, 1.0);
        assert_eq!(with_eps.len(), 2, "eps lets the walk cross node 1");
    }
}
