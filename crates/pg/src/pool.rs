//! The candidate pool `W` shared by both routers, with the paper's exact
//! resize tie-breaking (§III-B):
//!
//! ordered by ascending distance; on equal distance an unexplored node
//! outranks an explored one; two explored nodes rank by recency of
//! exploration (most recent first); two unexplored nodes rank by smaller id.

use std::collections::HashSet;

/// Global per-query exploration bookkeeping shared by pool ordering and the
//  routers.
#[derive(Debug, Default)]
pub struct RouterState {
    explored: HashSet<u32>,
    /// Exploration timestamps (sequence numbers), for the recency tie-break.
    seq: std::collections::HashMap<u32, u64>,
    next_seq: u64,
    /// Nodes in exploration order.
    pub order: Vec<u32>,
}

impl RouterState {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_explored(&self, id: u32) -> bool {
        self.explored.contains(&id)
    }

    pub fn mark_explored(&mut self, id: u32) {
        if self.explored.insert(id) {
            self.seq.insert(id, self.next_seq);
            self.next_seq += 1;
            self.order.push(id);
        }
    }

    fn seq_of(&self, id: u32) -> u64 {
        self.seq.get(&id).copied().unwrap_or(0)
    }
}

/// One pool entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolEntry {
    pub id: u32,
    pub dist: f64,
}

/// The candidate pool `W`.
#[derive(Debug, Default)]
pub struct Pool {
    entries: Vec<PoolEntry>,
    ids: HashSet<u32>,
}

impl Pool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `(dist, id)` unless the node is already pooled.
    pub fn add(&mut self, id: u32, dist: f64) {
        if self.ids.insert(id) {
            self.entries.push(PoolEntry { id, dist });
        }
    }

    /// Whether the node is currently in the pool.
    pub fn contains(&self, id: u32) -> bool {
        self.ids.contains(&id)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The paper's resize: order by the tie-breaking comparator, keep the
    /// best `b`.
    pub fn resize(&mut self, b: usize, state: &RouterState) {
        self.sort(state);
        if self.entries.len() > b {
            self.entries.truncate(b);
            self.ids = self.entries.iter().map(|e| e.id).collect();
        }
    }

    // All pool comparators use `f64::total_cmp`, not `partial_cmp` with an
    // `Equal` fallback: a NaN distance (a buggy or faulted metric) would
    // otherwise compare Equal to *everything*, making the sort order
    // depend on the input permutation — and the parallel==sequential
    // equivalence guarantees flake. Under total_cmp NaN orders after
    // +inf, deterministically (and -0.0 < 0.0 cannot matter: GED ≥ 0).
    fn sort(&mut self, state: &RouterState) {
        self.entries.sort_by(|a, b| {
            a.dist.total_cmp(&b.dist).then_with(|| {
                let ea = state.is_explored(a.id);
                let eb = state.is_explored(b.id);
                match (ea, eb) {
                    (false, true) => std::cmp::Ordering::Less,
                    (true, false) => std::cmp::Ordering::Greater,
                    (true, true) => state.seq_of(b.id).cmp(&state.seq_of(a.id)),
                    (false, false) => a.id.cmp(&b.id),
                }
            })
        });
    }

    /// The unexplored entry with the smallest `(dist, id)` (baseline line 6).
    pub fn min_unexplored(&self, state: &RouterState) -> Option<PoolEntry> {
        self.entries
            .iter()
            .filter(|e| !state.is_explored(e.id))
            .min_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)))
            .copied()
    }

    /// The unexplored entry with the smallest `(dist, id)` among those with
    /// `dist <= gamma` (np_route stage-2 inner loop).
    pub fn min_unexplored_within(&self, gamma: f64, state: &RouterState) -> Option<PoolEntry> {
        self.entries
            .iter()
            .filter(|e| !state.is_explored(e.id) && e.dist <= gamma)
            .min_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)))
            .copied()
    }

    /// The entry with the smallest `(dist, id)` regardless of exploration.
    pub fn min_entry(&self) -> Option<PoolEntry> {
        self.entries
            .iter()
            .min_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)))
            .copied()
    }

    /// True when every pooled node has been explored.
    pub fn all_explored(&self, state: &RouterState) -> bool {
        self.entries.iter().all(|e| state.is_explored(e.id))
    }

    /// The threshold above which a later `add` is provably dead: once a
    /// pool resized to capacity `b` keeps `b` entries, any candidate whose
    /// distance is *strictly* greater than every kept distance sorts after
    /// all of them (distance is the comparator's first key) and is
    /// truncated by the next `resize(b, ..)` before any pool query runs —
    /// the routers only consult the pool post-resize. Candidates merely
    /// tying the gate may still win on the tie-break, so the gate is an
    /// exclusive threshold. Returns `+inf` while the pool holds fewer than
    /// `b` entries (every add can survive). Call right after `resize`.
    ///
    /// `total_cmp` keeps a NaN distance (a buggy or faulted metric) as the
    /// maximum, which makes the gate NaN and disables pruning — NaN
    /// entries sort last but are still displaceable by any finite add.
    pub fn prune_gate(&self, b: usize) -> f64 {
        if self.entries.len() < b {
            return f64::INFINITY;
        }
        self.entries
            .iter()
            .map(|e| e.dist)
            .max_by(|x, y| x.total_cmp(y))
            .unwrap_or(f64::INFINITY)
    }

    /// The `k` best entries by `(dist, id)`.
    pub fn top_k(&self, k: usize) -> Vec<PoolEntry> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_dedups() {
        let mut w = Pool::new();
        w.add(1, 5.0);
        w.add(1, 7.0);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn resize_prefers_unexplored_on_tie() {
        let mut w = Pool::new();
        let mut s = RouterState::new();
        w.add(1, 3.0);
        w.add(2, 3.0);
        s.mark_explored(1);
        w.resize(1, &s);
        assert_eq!(w.top_k(1)[0].id, 2);
    }

    #[test]
    fn resize_prefers_recent_explored_on_tie() {
        let mut w = Pool::new();
        let mut s = RouterState::new();
        w.add(1, 3.0);
        w.add(2, 3.0);
        s.mark_explored(1);
        s.mark_explored(2);
        w.resize(1, &s);
        assert_eq!(w.top_k(1)[0].id, 2); // 2 explored more recently
    }

    #[test]
    fn resize_prefers_smaller_id_unexplored() {
        let mut w = Pool::new();
        let s = RouterState::new();
        w.add(7, 3.0);
        w.add(2, 3.0);
        w.resize(1, &s);
        assert_eq!(w.top_k(1)[0].id, 2);
    }

    #[test]
    fn min_unexplored_and_within() {
        let mut w = Pool::new();
        let mut s = RouterState::new();
        w.add(1, 5.0);
        w.add(2, 2.0);
        w.add(3, 8.0);
        s.mark_explored(2);
        assert_eq!(w.min_unexplored(&s).unwrap().id, 1);
        assert_eq!(w.min_unexplored_within(4.9, &s), None);
        assert_eq!(w.min_unexplored_within(5.0, &s).unwrap().id, 1);
        assert_eq!(w.min_entry().unwrap().id, 2);
        assert!(!w.all_explored(&s));
        s.mark_explored(1);
        s.mark_explored(3);
        assert!(w.all_explored(&s));
    }

    #[test]
    fn top_k_sorted() {
        let mut w = Pool::new();
        w.add(1, 5.0);
        w.add(2, 2.0);
        w.add(3, 8.0);
        let t = w.top_k(2);
        assert_eq!(t[0].id, 2);
        assert_eq!(t[1].id, 1);
    }

    #[test]
    fn nan_distances_order_last_and_deterministically() {
        // A NaN distance must not scramble the order of the finite
        // entries (with partial_cmp-or-Equal it compared Equal to every
        // neighbor, so the result depended on insertion order).
        let mut w = Pool::new();
        let s = RouterState::new();
        w.add(4, f64::NAN);
        w.add(1, 5.0);
        w.add(9, f64::NAN);
        w.add(2, 2.0);
        w.add(3, f64::INFINITY);
        let t = w.top_k(5);
        let ids: Vec<u32> = t.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 1, 3, 4, 9]); // NaN after +inf, then by id
        assert_eq!(w.min_entry().unwrap().id, 2);
        assert_eq!(w.min_unexplored(&s).unwrap().id, 2);
        // Resize keeps the finite entries, dropping the NaNs first.
        w.resize(3, &s);
        let kept: Vec<u32> = w.top_k(5).iter().map(|e| e.id).collect();
        assert_eq!(kept, vec![2, 1, 3]);
    }

    #[test]
    fn prune_gate_tracks_worst_kept_distance() {
        let mut w = Pool::new();
        let s = RouterState::new();
        assert_eq!(w.prune_gate(2), f64::INFINITY, "empty pool gates nothing");
        w.add(1, 5.0);
        assert_eq!(
            w.prune_gate(2),
            f64::INFINITY,
            "under-full pool gates nothing"
        );
        w.add(2, 3.0);
        w.add(3, 9.0);
        w.resize(2, &s);
        assert_eq!(w.prune_gate(2), 5.0);
        // A NaN kept entry must disable pruning entirely.
        let mut v = Pool::new();
        v.add(1, 2.0);
        v.add(2, f64::NAN);
        v.resize(2, &s);
        assert!(v.prune_gate(2).is_nan());
    }

    #[test]
    fn exploration_order_recorded() {
        let mut s = RouterState::new();
        s.mark_explored(5);
        s.mark_explored(3);
        s.mark_explored(5); // idempotent
        assert_eq!(s.order, vec![5, 3]);
    }
}
