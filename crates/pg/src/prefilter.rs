//! Candidate prefiltering for routing — the hook the quantized-embedding
//! tier plugs into above the threshold-gated GED cascade.
//!
//! The GED cascade (`QueryDistance::distance_within`) is *admissible*: its
//! lower bounds never overestimate, so gated pruning is provably lossless.
//! A learned surrogate (quantized embedding distance) is **not** admissible
//! — it can overestimate — so it must not feed the same gate. Instead it
//! acts one tier earlier, as a [`CandidatePrefilter`] consulted by
//! `np_route` *before* a candidate's distance is ever requested:
//!
//! * the router asks `predict_beyond(id, tau)` with
//!   `tau = max(γ, pool gate)` — the threshold beyond which the candidate
//!   provably cannot contribute to the final top-k *at this round*;
//! * a `true` answer skips the distance computation entirely (no NDC, no
//!   cache entry) and is treated like a certified `d ≥ γ` threshold hit;
//! * the router only consults the prefilter when `tau` is finite (pool
//!   full, gating active) and the candidate is uncached — cached answers
//!   are free and always better than a prediction.
//!
//! **Recall safety.** A skipped candidate leaves no trace in the distance
//! cache, so every later round that reaches it — stage-2 re-scans under an
//! escalated γ, further batch openings — re-asks the prefilter with the
//! *larger* τ and eventually computes the real distance once the
//! prediction no longer clears it. A mistaken skip therefore costs at most
//! a delay to a higher-γ round of the same query, the same failure mode
//! the paper's learned ranker already has; it is never silently final
//! unless the prediction keeps clearing every escalated threshold, which
//! the consumer's calibrated safety margin makes rare (measured, not
//! assumed: the quant bench gates recall ≥ 0.98). The property tests below
//! pin the two analytic anchors: a never-firing prefilter is bit-identical
//! to unfiltered routing, and a *truthful* prefilter (predicting with the
//! true distance) is result-identical with NDC never larger.

use crate::metric::QueryDistance;

/// Decides whether a candidate's distance computation can be skipped.
///
/// Implementations must be cheap relative to one distance computation —
/// the router may consult the prefilter once per candidate per γ round.
/// `Sync` because one prefilter instance is shared by concurrently
/// executing queries.
pub trait CandidatePrefilter: Sync {
    /// `true` predicts the candidate's true distance to the query exceeds
    /// `tau` (strictly) — the router then skips computing it this round.
    /// `tau` is always finite.
    fn predict_beyond(&self, id: u32, tau: f64) -> bool;
}

/// A prefilter that never skips — routing with it is bit-identical to
/// routing without one (the property test anchors this).
pub struct NeverSkip;

impl CandidatePrefilter for NeverSkip {
    fn predict_beyond(&self, _id: u32, _tau: f64) -> bool {
        false
    }
}

/// The idealized prefilter that predicts with the **true** distance —
/// the analytic upper bound on what a learned surrogate can achieve.
/// With it, skips are exactly the computations whose results the pool
/// would provably truncate, so results are identical and NDC never
/// larger (same argument as the admissible cascade's gate, applied one
/// tier earlier). Test-only in spirit, but exported for benches that
/// want the oracle ceiling.
pub struct OraclePrefilter<'a> {
    truth: &'a dyn QueryDistance,
}

impl<'a> OraclePrefilter<'a> {
    pub fn new(truth: &'a dyn QueryDistance) -> Self {
        OraclePrefilter { truth }
    }
}

impl CandidatePrefilter for OraclePrefilter<'_> {
    fn predict_beyond(&self, id: u32, tau: f64) -> bool {
        // Not counted as NDC — the same idealization as `OracleRanker`
        // (Theorem 1's oracle assumption).
        self.truth.distance(id) > tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetCtx;
    use crate::metric::DistCache;
    use crate::np_route::{np_route, np_route_prefiltered, OracleRanker};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_adj(rng: &mut StdRng, n: usize, extra: usize) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<u32>>, a: usize, b: usize| {
            if a != b && !adj[a].contains(&(b as u32)) {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        };
        for i in 1..n {
            let j = rng.gen_range(0..i);
            connect(&mut adj, i, j);
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            connect(&mut adj, a, b);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    #[test]
    fn never_skip_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(131);
        for trial in 0..150 {
            let n = rng.gen_range(5..30);
            let adj = random_adj(&mut rng, n, n);
            // Integer distances with ties — the hard case.
            let dists: Vec<f64> = (0..n).map(|_| rng.gen_range(0..8) as f64).collect();
            let entry = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(1..6);
            let k = rng.gen_range(1..=b);
            let f = |id: u32| dists[id as usize];
            let oracle = OracleRanker::new(&f, 20);

            let cache_plain = DistCache::new(&f);
            let plain = np_route(&adj, &cache_plain, &oracle, &[entry], b, k, 1.0);
            let cache_pf = DistCache::new(&f);
            let pf = np_route_prefiltered(
                &adj,
                &cache_pf,
                &oracle,
                &[entry],
                b,
                k,
                1.0,
                &BudgetCtx::unlimited(),
                Some(&NeverSkip),
            );
            assert_eq!(plain.results, pf.results, "trial {trial}");
            assert_eq!(plain.ndc, pf.ndc, "trial {trial}");
            assert_eq!(
                plain.exploration_order, pf.exploration_order,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn truthful_prefilter_same_results_never_more_ndc() {
        let mut rng = StdRng::seed_from_u64(132);
        let (mut ndc_plain_sum, mut ndc_pf_sum) = (0usize, 0usize);
        for trial in 0..200 {
            let n = rng.gen_range(5..30);
            let adj = random_adj(&mut rng, n, n);
            let dists: Vec<f64> = (0..n).map(|_| rng.gen_range(0..10) as f64).collect();
            let entry = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(1..6);
            let k = rng.gen_range(1..=b);
            let f = |id: u32| dists[id as usize];
            let oracle = OracleRanker::new(&f, 20);

            let cache_plain = DistCache::new(&f);
            let plain = np_route(&adj, &cache_plain, &oracle, &[entry], b, k, 1.0);
            let cache_pf = DistCache::new(&f);
            let truthful = OraclePrefilter::new(&f);
            let pf = np_route_prefiltered(
                &adj,
                &cache_pf,
                &oracle,
                &[entry],
                b,
                k,
                1.0,
                &BudgetCtx::unlimited(),
                Some(&truthful),
            );
            assert_eq!(plain.results, pf.results, "trial {trial}");
            assert!(
                pf.ndc <= plain.ndc,
                "trial {trial}: prefiltered NDC {} > plain {}",
                pf.ndc,
                plain.ndc
            );
            ndc_plain_sum += plain.ndc;
            ndc_pf_sum += pf.ndc;
        }
        // The oracle ceiling must actually save work in aggregate,
        // otherwise the tier is wired wrong (e.g. never consulted).
        assert!(
            ndc_pf_sum < ndc_plain_sum,
            "truthful prefilter saved nothing: {ndc_pf_sum} vs {ndc_plain_sum}"
        );
    }
}
