//! On-disk codec for the proximity graph (HNSW layout).
//!
//! Each layer is serialized as CSR (per-node offsets + flattened neighbor
//! ids), the natural relocatable layout for adjacency: a load is one
//! zero-copy slab read per layer followed by straight copies into the
//! in-memory `Vec<Vec<u32>>` shape the routers consume. Validation is
//! O(nodes + edges): offsets monotone and consistent, every neighbor id
//! and the entry point in range, levels sized to the node count.

use crate::build::ProximityGraph;
use lan_store::{Dec, Enc, StoreError};

impl ProximityGraph {
    /// Serializes the full HNSW structure (all layers, levels, entry).
    pub fn store_encode(&self, enc: &mut Enc) {
        let n = self.len();
        enc.put_u64(n as u64);
        enc.put_u32(self.entry);
        enc.put_u32(self.layers.len() as u32);
        enc.put_u8_slice(&self.levels);
        for layer in &self.layers {
            let mut offsets: Vec<u64> = Vec::with_capacity(layer.len() + 1);
            let mut flat: Vec<u32> = Vec::new();
            offsets.push(0);
            for ns in layer {
                flat.extend_from_slice(ns);
                offsets.push(flat.len() as u64);
            }
            enc.put_u64_slice(&offsets);
            enc.put_u32_slice(&flat);
        }
    }

    /// Decodes and validates a proximity graph.
    pub fn store_decode(dec: &mut Dec<'_>) -> Result<ProximityGraph, StoreError> {
        let n = dec.get_u64()? as usize;
        let entry = dec.get_u32()?;
        let num_layers = dec.get_u32()? as usize;
        let levels = dec.get_u8_slice()?;
        if levels.len() != n {
            return Err(StoreError::corrupt(format!(
                "pg levels: {} entries for {n} nodes",
                levels.len()
            )));
        }
        if num_layers == 0 {
            return Err(StoreError::corrupt("pg has no layers"));
        }
        if n > 0 && entry as usize >= n {
            return Err(StoreError::corrupt(format!(
                "pg entry {entry} out of range"
            )));
        }
        let mut layers: Vec<Vec<Vec<u32>>> = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let offsets = dec.get_u64_slice()?;
            let flat = dec.get_u32_slice()?;
            if offsets.len() != n + 1 || offsets.first().copied().unwrap_or(0) != 0 {
                return Err(StoreError::corrupt(format!(
                    "pg layer {l} offsets malformed"
                )));
            }
            if offsets.last().copied().unwrap_or(0) as usize != flat.len() {
                return Err(StoreError::corrupt(format!(
                    "pg layer {l} offsets disagree with adjacency"
                )));
            }
            if flat.iter().any(|&w| w as usize >= n) {
                return Err(StoreError::corrupt(format!(
                    "pg layer {l} has an out-of-range neighbor id"
                )));
            }
            let mut layer: Vec<Vec<u32>> = Vec::with_capacity(n);
            for v in 0..n {
                let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                if hi < lo {
                    return Err(StoreError::corrupt(format!(
                        "pg layer {l} offsets not monotone"
                    )));
                }
                layer.push(flat[lo..hi].to_vec());
            }
            layers.push(layer);
        }
        Ok(ProximityGraph {
            layers,
            levels: levels.to_vec(),
            entry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PgConfig;
    use crate::metric::PairCache;
    use lan_store::{Archive, Writer};

    fn round_trip(pg: &ProximityGraph) -> ProximityGraph {
        let mut enc = Enc::new();
        pg.store_encode(&mut enc);
        let mut w = Writer::new();
        w.add_section("pg", enc);
        let bytes = w.to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let mut d = a.section("pg").unwrap();
        let out = ProximityGraph::store_decode(&mut d).unwrap();
        d.expect_end().unwrap();
        out
    }

    #[test]
    fn round_trips_a_built_hnsw() {
        // A deterministic metric over 40 points on a line.
        let dist = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let pairs = PairCache::new_uncounted(&dist);
        let pg = ProximityGraph::build(40, &pairs, &PgConfig::new(4));
        let back = round_trip(&pg);
        assert_eq!(back.layers, pg.layers);
        assert_eq!(back.levels, pg.levels);
        assert_eq!(back.entry, pg.entry);
    }

    #[test]
    fn corrupt_neighbor_id_is_typed() {
        let dist = |a: u32, b: u32| (a as f64 - b as f64).abs();
        let pairs = PairCache::new_uncounted(&dist);
        let mut pg = ProximityGraph::build(8, &pairs, &PgConfig::new(3));
        pg.layers[0][0] = vec![99]; // out of range
        let mut enc = Enc::new();
        pg.store_encode(&mut enc);
        let mut w = Writer::new();
        w.add_section("pg", enc);
        let bytes = w.to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let mut d = a.section("pg").unwrap();
        assert!(matches!(
            ProximityGraph::store_decode(&mut d),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
