//! Deterministic fault injection at the distance-computation boundary.
//!
//! `LAN_FAULTS=ged_timeout:0.05,ged_fail:0.01,seed=42` makes a configurable
//! fraction of distance computations *fault* — modelling the exact-GED
//! timeout and transient evaluation failures a production deployment sees —
//! so the recovery policy (retry once, then fall back to an approximate
//! GED) can be exercised and measured without flaky real timeouts.
//!
//! Faults are **deterministic**: whether the draw for `(query salt, object
//! id, attempt)` faults is a pure hash of those values and the plan seed,
//! independent of thread scheduling. Two runs with the same spec and
//! workload inject exactly the same faults — which is what lets
//! `budget_curve` plot recall-vs-fault-rate curves that are reproducible,
//! and lets tests assert on fault counters exactly.
//!
//! The policy lives in [`faulted_distance`]: attempt 0 faulting triggers
//! one retry (`fault.retried`); the retry faulting too triggers the
//! fallback metric (`fault.fallback`). Every injected fault increments
//! `fault.injected`. A fault never escapes as a panic or an error — the
//! query always gets a distance.

use lan_obs::names;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Fault rates and determinism seed parsed from a `LAN_FAULTS` spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a distance computation times out (`ged_timeout:RATE`).
    pub timeout_rate: f64,
    /// Probability a distance computation fails outright (`ged_fail:RATE`).
    pub fail_rate: f64,
    /// Seed of the deterministic draw (`seed=N`; default 0).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            timeout_rate: 0.0,
            fail_rate: 0.0,
            seed: 0,
        }
    }

    /// Parses a comma-separated spec: `ged_timeout:0.05`, `ged_fail:0.01`,
    /// `seed=42` (a bare `seed` keeps the default 0). Unknown keys or
    /// unparsable values reject the whole spec.
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let mut plan = FaultPlan::none();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = match item.split_once([':', '=']) {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (item, None),
            };
            match (key, value) {
                ("ged_timeout", Some(v)) => plan.timeout_rate = parse_rate(v)?,
                ("ged_fail", Some(v)) => plan.fail_rate = parse_rate(v)?,
                ("seed", Some(v)) => plan.seed = v.parse().ok()?,
                ("seed", None) => {}
                _ => return None,
            }
        }
        Some(plan)
    }

    /// True when no fault can ever be injected.
    pub fn is_none(&self) -> bool {
        self.timeout_rate <= 0.0 && self.fail_rate <= 0.0
    }

    /// Whether the draw for `(salt, id, attempt)` faults — a pure function
    /// of the arguments and the seed, independent of scheduling. `salt`
    /// distinguishes queries (the harness passes the query seed).
    pub fn faults(&self, salt: u64, id: u32, attempt: u32) -> bool {
        let rate = self.timeout_rate + self.fail_rate;
        if rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt)
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(((id as u64) << 32) | attempt as u64),
        );
        // Map the top 53 bits to [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate.min(1.0)
    }
}

/// SplitMix64 finalizer — a well-mixed 64-bit hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_rate(v: &str) -> Option<f64> {
    let r: f64 = v.parse().ok()?;
    (r.is_finite() && (0.0..=1.0).contains(&r)).then_some(r)
}

/// 0 = uninitialized, 1 = a plan is active, 2 = no plan.
static STATE: AtomicU8 = AtomicU8::new(0);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// The active fault plan: the programmatic override if one was set,
/// otherwise parsed once from `LAN_FAULTS`. `None` (the default) costs one
/// relaxed atomic load per distance computation.
pub fn active_plan() -> Option<FaultPlan> {
    match STATE.load(Ordering::Relaxed) {
        2 => None,
        1 => *PLAN.lock().unwrap_or_else(|e| e.into_inner()),
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> Option<FaultPlan> {
    let plan = std::env::var("LAN_FAULTS")
        .ok()
        .and_then(|spec| FaultPlan::parse(&spec))
        .filter(|p| !p.is_none());
    set_plan(plan);
    plan
}

/// Programmatic override of `LAN_FAULTS` (benches and tests; avoids racy
/// env mutation). `None` disables injection.
pub fn set_plan(plan: Option<FaultPlan>) {
    let plan = plan.filter(|p| !p.is_none());
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    STATE.store(if plan.is_some() { 1 } else { 2 }, Ordering::Relaxed);
}

/// Pre-resolved fault counters, resolved once per query (same pattern as
/// `CacheMetrics` — the registry lock never sits on the distance path).
pub struct FaultMetrics {
    injected: &'static lan_obs::Counter,
    retried: &'static lan_obs::Counter,
    fallback: &'static lan_obs::Counter,
}

impl FaultMetrics {
    pub fn resolve() -> Self {
        FaultMetrics {
            injected: lan_obs::counter(names::FAULT_INJECTED),
            retried: lan_obs::counter(names::FAULT_RETRIED),
            fallback: lan_obs::counter(names::FAULT_FALLBACK),
        }
    }
}

/// Applies the retry-then-fallback policy to one distance computation.
///
/// * Attempt 0 clean → `primary()`.
/// * Attempt 0 faults → count `fault.injected` + `fault.retried`, draw
///   attempt 1.
/// * Attempt 1 clean → `primary()` (the retry succeeded).
/// * Attempt 1 faults too → count `fault.injected` + `fault.fallback`,
///   return `fallback()` (an approximate GED — total, never faults).
///
/// Never panics, never errors: the caller always receives a distance.
pub fn faulted_distance(
    plan: &FaultPlan,
    metrics: &FaultMetrics,
    salt: u64,
    id: u32,
    primary: impl Fn() -> f64,
    fallback: impl Fn() -> f64,
) -> f64 {
    if !plan.faults(salt, id, 0) {
        return primary();
    }
    metrics.injected.inc();
    metrics.retried.inc();
    if !plan.faults(salt, id, 1) {
        return primary();
    }
    metrics.injected.inc();
    metrics.fallback.inc();
    fallback()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("ged_timeout:0.05,ged_fail:0.01,seed=42").unwrap();
        assert_eq!(p.timeout_rate, 0.05);
        assert_eq!(p.fail_rate, 0.01);
        assert_eq!(p.seed, 42);
        // `seed:N` and a bare `seed` are accepted too.
        assert_eq!(FaultPlan::parse("ged_timeout:0.5,seed:7").unwrap().seed, 7);
        assert_eq!(FaultPlan::parse("ged_timeout:0.05,seed").unwrap().seed, 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(FaultPlan::parse("ged_timeout:1.5"), None); // rate > 1
        assert_eq!(FaultPlan::parse("ged_timeout:-0.1"), None);
        assert_eq!(FaultPlan::parse("ged_timeout:NaN"), None);
        assert_eq!(FaultPlan::parse("frobnicate:0.5"), None);
        assert_eq!(FaultPlan::parse("seed=xyz"), None);
        // Empty spec parses to the no-op plan.
        assert!(FaultPlan::parse("").unwrap().is_none());
    }

    #[test]
    fn draws_are_deterministic_and_rate_accurate() {
        let p = FaultPlan::parse("ged_timeout:0.1,seed=3").unwrap();
        let mut faults = 0;
        for id in 0..10_000u32 {
            let a = p.faults(17, id, 0);
            let b = p.faults(17, id, 0);
            assert_eq!(a, b);
            if a {
                faults += 1;
            }
        }
        // 10_000 draws at 10%: the observed rate is within ±3% absolute.
        assert!((700..=1300).contains(&faults), "faults = {faults}");
        // Different salts and attempts draw independently.
        assert_ne!(
            (0..64u32).map(|id| p.faults(1, id, 0)).collect::<Vec<_>>(),
            (0..64u32).map(|id| p.faults(2, id, 0)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_rate_never_faults() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!((0..1000u32).all(|id| !p.faults(0, id, 0)));
    }

    #[test]
    fn policy_retries_then_falls_back() {
        let metrics = FaultMetrics::resolve();
        // Rate 1.0: every draw faults → always the fallback value.
        let all = FaultPlan::parse("ged_fail:1.0").unwrap();
        let d = faulted_distance(&all, &metrics, 0, 1, || 5.0, || 9.0);
        assert_eq!(d, 9.0);
        // Rate 0: never faults → always the primary value.
        let none = FaultPlan::none();
        let d = faulted_distance(&none, &metrics, 0, 1, || 5.0, || 9.0);
        assert_eq!(d, 5.0);
    }

    #[test]
    fn set_plan_overrides_and_clears() {
        // Serialize with any other test touching the global plan.
        static LOCK: Mutex<()> = Mutex::new(());
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_plan(Some(FaultPlan::parse("ged_timeout:0.5,seed=1").unwrap()));
        assert!(active_plan().is_some());
        set_plan(None);
        assert_eq!(active_plan(), None);
        // A no-op plan normalizes to None.
        set_plan(Some(FaultPlan::none()));
        assert_eq!(active_plan(), None);
    }
}
