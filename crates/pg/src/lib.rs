//! Proximity-graph index and routing for LAN.
//!
//! * [`metric`] — query/pair distance traits with memoization and the
//!   paper's NDC accounting;
//! * [`build`] — HNSW-style hierarchical proximity-graph construction and
//!   the `HNSW_IS` entry selection;
//! * [`pool`] — the candidate pool `W` with the paper's exact tie-breaking;
//! * [`routing`] — Algorithm 1, the exhaustive beam-search baseline;
//! * [`np_route`] — Algorithms 2–4, routing with neighbor pruning, generic
//!   over a [`np_route::NeighborRanker`] (oracle here; the learned ranker
//!   lives in `lan-models`);
//! * [`budget`] — per-query NDC/deadline/hop budgets with cooperative
//!   cancellation and graceful degradation ([`budget::Termination`]);
//! * [`faults`] — deterministic fault injection at the distance boundary
//!   (`LAN_FAULTS`) with a retry-then-fallback recovery policy.
//!
//! The Lemma 1 / Theorem 1 guarantees (same exploration sequence, same
//! results, NDC no larger) are enforced by randomized property tests, and
//! the budget layer adds its own: an unlimited budget is bit-identical to
//! unbudgeted routing; a finite one strictly bounds NDC.

pub mod budget;
pub mod build;
pub mod faults;
pub mod metric;
pub mod np_route;
pub mod pool;
pub mod prefilter;
pub mod routing;
pub mod store;

pub use budget::{budgeted_get, budgeted_get_within, BudgetCtx, QueryBudget, Termination};
pub use build::{brute_force_knn, PgConfig, ProximityGraph};
pub use faults::{FaultMetrics, FaultPlan};
pub use metric::{DistBound, DistCache, PairCache, PairDistance, QueryDistance};
pub use np_route::{
    np_route, np_route_budgeted, np_route_prefiltered, NeighborRanker, NoPruneRanker, OracleRanker,
};
pub use prefilter::{CandidatePrefilter, NeverSkip, OraclePrefilter};
pub use routing::{beam_search, beam_search_budgeted, range_search, RouteResult};
