//! Proximity-graph (HNSW-style) index construction.
//!
//! The paper indexes the graph database with a proximity graph and compares
//! against HNSW [17]; we build a hierarchical navigable-small-world index:
//! each object draws a geometric level, lives in layers `0..=level`, and is
//! connected to its `ef_construction`-searched nearest neighbors, capped at
//! `m` (base layer `2m`). LAN's `np_route` runs on the base layer; the
//! hierarchy also provides the `HNSW_IS` initial-node selection (greedy
//! descent from the top layer).

use crate::metric::{DistCache, PairCache, QueryDistance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct PgConfig {
    /// Max neighbors per node above the base layer (base allows `2m`).
    pub m: usize,
    /// Beam width used when searching for insertion neighbors.
    pub ef_construction: usize,
    /// Level-generation factor; HNSW default `1 / ln(m)`.
    pub ml: f64,
    /// RNG seed for level draws (construction is deterministic per seed).
    pub seed: u64,
}

impl PgConfig {
    /// Sensible defaults for databases of hundreds to thousands of graphs.
    pub fn new(m: usize) -> Self {
        PgConfig {
            m,
            ef_construction: 4 * m,
            ml: 1.0 / (m as f64).ln().max(0.5),
            seed: 0x1a4,
        }
    }
}

/// The built index.
#[derive(Debug, Clone)]
pub struct ProximityGraph {
    /// `layers[l][v]` = neighbors of `v` at layer `l` (empty if `v` does not
    /// live at layer `l`). `layers[0]` is the base proximity graph.
    pub layers: Vec<Vec<Vec<u32>>>,
    /// Top layer of each node.
    pub levels: Vec<u8>,
    /// Entry point (a node on the top layer).
    pub entry: u32,
}

impl ProximityGraph {
    /// Builds the index over objects `0..n` with the given symmetric
    /// distance (construction-time distances flow through a [`PairCache`]).
    pub fn build(n: usize, pairs: &PairCache<'_>, cfg: &PgConfig) -> Self {
        assert!(n > 0, "cannot index an empty database");
        // Node ids are u32 throughout (adjacency, caches, pool entries);
        // a larger database would silently truncate `0..n as u32` below.
        assert!(
            n <= u32::MAX as usize + 1,
            "database of {n} objects exceeds the u32 id space"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let levels: Vec<u8> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                ((-u.ln() * cfg.ml).floor() as usize).min(12) as u8
            })
            .collect();
        let top = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut layers: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; top + 1];
        let mut entry: u32 = 0;
        let mut entry_level: i32 = -1;

        for v in 0..n as u32 {
            let level = levels[v as usize] as usize;
            if entry_level < 0 {
                entry = v;
                entry_level = level as i32;
                continue;
            }
            // Greedy descent from the global entry to `level + 1`.
            let mut ep = entry;
            let mut l = entry_level as usize;
            while l > level {
                ep = greedy_step_to_min(&layers[l], ep, |x| pairs.get(v, x));
                l -= 1;
            }
            // Insert at each layer from min(level, entry_level) down to 0.
            let start = level.min(entry_level as usize);
            for l in (0..=start).rev() {
                let found = search_layer(&layers[l], ep, cfg.ef_construction, |x| pairs.get(v, x));
                let cap = if l == 0 { 2 * cfg.m } else { cfg.m };
                // HNSW's select-neighbors *heuristic*: clustered databases
                // (exactly what edit-perturbation graph families are) would
                // otherwise saturate every node's list with same-cluster
                // duplicates and disconnect the base layer.
                let chosen = select_neighbors_heuristic(&found, cap, |a, b| pairs.get(a, b));
                for &nb in &chosen {
                    layers[l][v as usize].push(nb);
                    layers[l][nb as usize].push(v);
                    // Shrink over-full neighbor lists with the same
                    // diversity heuristic.
                    if layers[l][nb as usize].len() > cap {
                        let mut ns: Vec<(f64, u32)> = layers[l][nb as usize]
                            .iter()
                            .map(|&x| (pairs.get(nb, x), x))
                            .collect();
                        ns.sort_by(|a, b| {
                            a.0.partial_cmp(&b.0)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.1.cmp(&b.1))
                        });
                        layers[l][nb as usize] =
                            select_neighbors_heuristic(&ns, cap, |a, b| pairs.get(a, b));
                    }
                }
                if let Some(&(_, best)) = found.first() {
                    ep = best;
                }
            }
            if (level as i32) > entry_level {
                entry = v;
                entry_level = level as i32;
            }
        }
        for layer in &mut layers {
            for l in layer.iter_mut() {
                l.sort_unstable();
                l.dedup();
            }
        }

        // Connectivity repair: databases with many near-duplicates can
        // still splinter the base layer despite the selection heuristic.
        // Bridge every unreachable component to its nearest reached node —
        // searches are only correct on the reachable component, so this is
        // required for a usable index.
        loop {
            let mut reached = vec![false; n];
            let mut stack = vec![entry];
            reached[entry as usize] = true;
            while let Some(v) = stack.pop() {
                for &nb in &layers[0][v as usize] {
                    if !reached[nb as usize] {
                        reached[nb as usize] = true;
                        stack.push(nb);
                    }
                }
            }
            let unreached: Vec<u32> = (0..n as u32).filter(|&v| !reached[v as usize]).collect();
            if unreached.is_empty() {
                break;
            }
            // Cheapest bridge from the unreached set into the reached set.
            // Each unreached node's row scan is independent; rows evaluate
            // in parallel and the final reduction keeps the sequential
            // tie-breaking (first strict improvement in (u, v) order).
            let reached_ref = &reached;
            let row_best: Vec<Option<(f64, u32, u32)>> =
                lan_par::par_map_dyn(&unreached, lan_par::Grain::Auto, |&u| {
                    let mut best: Option<(f64, u32, u32)> = None;
                    for v in 0..n as u32 {
                        if reached_ref[v as usize] {
                            let d = pairs.get(u, v);
                            if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                                best = Some((d, u, v));
                            }
                        }
                    }
                    best
                });
            let mut best: Option<(f64, u32, u32)> = None;
            for b in row_best.into_iter().flatten() {
                if best.map(|(bd, _, _)| b.0 < bd).unwrap_or(true) {
                    best = Some(b);
                }
            }
            let (_, u, v) = best.expect("reached set is never empty");
            layers[0][u as usize].push(v);
            layers[0][v as usize].push(u);
            layers[0][u as usize].sort_unstable();
            layers[0][v as usize].sort_unstable();
        }

        ProximityGraph {
            layers,
            levels,
            entry,
        }
    }

    /// The base-layer adjacency LAN routes on.
    pub fn base(&self) -> &[Vec<u32>] {
        &self.layers[0]
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the index is empty (never: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// HNSW-style initial-node selection (`HNSW_IS`): greedy descent from
    /// the top layer to layer 1 using **counted** query distances, returning
    /// the entry node for base-layer routing.
    pub fn hnsw_entry(&self, cache: &DistCache<'_>) -> u32 {
        self.hnsw_entry_budgeted(cache, &crate::budget::BudgetCtx::unlimited())
    }

    /// [`Self::hnsw_entry`] under a query budget: once the budget stops
    /// answering distances the descent sees `+inf` for every further
    /// candidate, stops improving, and returns the best node reached so
    /// far — graceful degradation, never a panic.
    ///
    /// Distances flow through the threshold-gated cache path with the
    /// current best descent distance as the gate: a candidate whose lower
    /// bound strictly exceeds `best_d` can never win the `<` move test (nor
    /// the equal-distance tie-break), so the bound itself stands in for the
    /// full solve. With an ungated metric this is the seed descent bit for
    /// bit — same moves, same NDC, same hits.
    pub fn hnsw_entry_budgeted(
        &self,
        cache: &DistCache<'_>,
        ctx: &crate::budget::BudgetCtx,
    ) -> u32 {
        use crate::budget::{budgeted_get, budgeted_get_within};
        use crate::metric::DistBound;
        let mut cur = self.entry;
        for l in (1..self.layers.len()).rev() {
            // Mirrors `greedy_step_to_min`, including its per-layer lookup
            // of the current node (a cache hit after the first layer).
            let mut cur_d = budgeted_get(cache, ctx, cur).unwrap_or(f64::INFINITY);
            loop {
                let mut best = cur;
                let mut best_d = cur_d;
                for &nb in &self.layers[l][cur as usize] {
                    let d = match budgeted_get_within(cache, ctx, nb, f64::NEG_INFINITY, best_d) {
                        Ok(DistBound::Exact(d)) => d,
                        // lb > best_d strictly: loses both move tests below,
                        // exactly as the true distance would.
                        Ok(DistBound::AtLeast(lb)) => lb,
                        Err(_) => f64::INFINITY,
                    };
                    if d < best_d || (d == best_d && nb < best) {
                        best = nb;
                        best_d = d;
                    }
                }
                if best == cur {
                    break;
                }
                cur = best;
                cur_d = best_d;
            }
        }
        cur
    }
}

/// HNSW's neighbor-selection heuristic (Malkov & Yashunin, Alg. 4):
/// from candidates sorted by distance to the inserted point, keep `e` only
/// if it is closer to the point than to every already-selected neighbor —
/// this spends degree budget on *diverse* directions instead of one dense
/// cluster. Pruned candidates backfill remaining slots
/// (`keepPrunedConnections`), preserving connectivity.
fn select_neighbors_heuristic(
    cands: &[(f64, u32)],
    cap: usize,
    pair_dist: impl Fn(u32, u32) -> f64,
) -> Vec<u32> {
    let mut selected: Vec<(f64, u32)> = Vec::with_capacity(cap);
    let mut pruned: Vec<u32> = Vec::new();
    for &(d_e, e) in cands {
        if selected.len() >= cap {
            break;
        }
        let diverse = selected.iter().all(|&(_, s)| pair_dist(e, s) > d_e);
        if diverse {
            selected.push((d_e, e));
        } else {
            pruned.push(e);
        }
    }
    let mut out: Vec<u32> = selected.into_iter().map(|(_, e)| e).collect();
    for e in pruned {
        if out.len() >= cap {
            break;
        }
        out.push(e);
    }
    out
}

/// Greedy walk to a local minimum of `dist` within one layer.
fn greedy_step_to_min(layer: &[Vec<u32>], start: u32, dist: impl Fn(u32) -> f64) -> u32 {
    let mut cur = start;
    let mut cur_d = dist(cur);
    loop {
        let mut best = cur;
        let mut best_d = cur_d;
        for &nb in &layer[cur as usize] {
            let d = dist(nb);
            if d < best_d || (d == best_d && nb < best) {
                best = nb;
                best_d = d;
            }
        }
        if best == cur {
            return cur;
        }
        cur = best;
        cur_d = best_d;
    }
}

/// ef-limited best-first search within one layer; returns candidates sorted
/// by `(distance, id)`.
///
/// The candidate-distance evaluations of each expansion are batched through
/// `lan-par` — with an expensive metric (GED) the per-expansion fan of up
/// to `2m` distances dominates construction time and parallelizes with no
/// change in behavior: distances are pure, and admission decisions are
/// replayed sequentially in neighbor order afterwards.
fn search_layer(
    layer: &[Vec<u32>],
    entry: u32,
    ef: usize,
    dist: impl Fn(u32) -> f64 + Sync,
) -> Vec<(f64, u32)> {
    use std::collections::HashSet;
    // Spawning scoped workers is only worth it for a decent fan-out.
    const MIN_PAR_BATCH: usize = 4;
    let mut visited: HashSet<u32> = HashSet::new();
    visited.insert(entry);
    let mut results: Vec<(f64, u32)> = vec![(dist(entry), entry)];
    let mut frontier: Vec<(f64, u32)> = results.clone();

    // total_cmp everywhere below: a NaN distance must order
    // deterministically (after +inf) instead of comparing Equal to
    // everything and leaving the pick dependent on iteration order.
    while let Some(i) = frontier
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
        .map(|(i, _)| i)
    {
        let (d, v) = frontier.swap_remove(i);
        let worst = results
            .iter()
            .map(|&(d, _)| d)
            .fold(f64::NEG_INFINITY, f64::max);
        if results.len() >= ef && d > worst {
            break;
        }
        let fresh: Vec<u32> = layer[v as usize]
            .iter()
            .copied()
            .filter(|&nb| visited.insert(nb))
            .collect();
        let dists: Vec<f64> = if fresh.len() >= MIN_PAR_BATCH {
            lan_par::par_map_dyn(&fresh, lan_par::Grain::Fine, |&nb| dist(nb))
        } else {
            fresh.iter().map(|&nb| dist(nb)).collect()
        };
        for (&nb, &nd) in fresh.iter().zip(&dists) {
            if results.len() < ef || nd < worst {
                results.push((nd, nb));
                frontier.push((nd, nb));
                if results.len() > ef {
                    // Drop the worst.
                    let worst_i = results
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
                        .map(|(i, _)| i)
                        .unwrap();
                    results.swap_remove(worst_i);
                }
            }
        }
    }
    results.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    results
}

/// Exhaustive k-NN scan — the brute-force reference used to measure recall.
/// The scan parallelizes over the database (distances are independent).
pub fn brute_force_knn(n: usize, query: &dyn QueryDistance, k: usize) -> Vec<(f64, u32)> {
    let mut all: Vec<(f64, u32)> = lan_par::par_map_indices_dyn(n, lan_par::Grain::Fine, |i| {
        (query.distance(i as u32), i as u32)
    });
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{DistCache, PairCache};
    use crate::routing::beam_search;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 1-D points: distance = |a - b| gives an easy metric space.
    fn points(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..100.0)).collect()
    }

    #[test]
    fn build_produces_connected_base_layer() {
        let pts = points(100, 1);
        let f = |a: u32, b: u32| (pts[a as usize] - pts[b as usize]).abs();
        let cache = PairCache::new(&f);
        let pg = ProximityGraph::build(100, &cache, &PgConfig::new(6));
        // BFS from entry over base layer reaches everyone.
        let mut seen = [false; 100];
        let mut stack = vec![pg.entry];
        seen[pg.entry as usize] = true;
        let mut cnt = 1;
        while let Some(v) = stack.pop() {
            for &nb in &pg.base()[v as usize] {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    cnt += 1;
                    stack.push(nb);
                }
            }
        }
        assert_eq!(cnt, 100, "base layer disconnected");
    }

    #[test]
    fn degree_caps_respected() {
        let pts = points(80, 2);
        let f = |a: u32, b: u32| (pts[a as usize] - pts[b as usize]).abs();
        let cache = PairCache::new(&f);
        let cfg = PgConfig::new(5);
        let pg = ProximityGraph::build(80, &cache, &cfg);
        for (l, layer) in pg.layers.iter().enumerate() {
            let cap = if l == 0 { 2 * cfg.m } else { cfg.m };
            for ns in layer {
                assert!(
                    ns.len() <= cap + 1,
                    "layer {l} degree {} > cap {cap}",
                    ns.len()
                );
            }
        }
    }

    #[test]
    fn search_quality_on_1d_points() {
        let pts = points(200, 3);
        let f = |a: u32, b: u32| (pts[a as usize] - pts[b as usize]).abs();
        let cache = PairCache::new(&f);
        let pg = ProximityGraph::build(200, &cache, &PgConfig::new(8));

        let mut rng = StdRng::seed_from_u64(4);
        let mut total_recall = 0.0;
        let queries = 20;
        for _ in 0..queries {
            let q = rng.gen_range(0.0..100.0);
            let pts_c = pts.clone();
            let qd = move |id: u32| (pts_c[id as usize] - q).abs();
            let truth = brute_force_knn(200, &qd, 10);
            let dc = DistCache::new(&qd);
            let entry = pg.hnsw_entry(&dc);
            let res = beam_search(pg.base(), &dc, &[entry], 20, 10);
            let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|&(_, i)| i).collect();
            let hit = res.ids().iter().filter(|i| truth_ids.contains(i)).count();
            total_recall += hit as f64 / 10.0;
        }
        let recall = total_recall / queries as f64;
        assert!(recall > 0.9, "recall@10 too low: {recall}");
    }

    #[test]
    fn hnsw_entry_descends_toward_query() {
        let pts = points(150, 5);
        let f = |a: u32, b: u32| (pts[a as usize] - pts[b as usize]).abs();
        let cache = PairCache::new(&f);
        let pg = ProximityGraph::build(150, &cache, &PgConfig::new(6));
        let q = 42.0;
        let pts_c = pts.clone();
        let qd = move |id: u32| (pts_c[id as usize] - q).abs();
        let dc = DistCache::new(&qd);
        let entry = pg.hnsw_entry(&dc);
        // The selected entry should be much closer than a random node on
        // average.
        let entry_d = (pts[entry as usize] - q).abs();
        let mean_d: f64 = (0..150).map(|i| (pts[i] - q).abs()).sum::<f64>() / 150.0;
        assert!(
            entry_d < mean_d,
            "entry {entry_d} not better than mean {mean_d}"
        );
        assert!(dc.ndc() > 0, "descent must cost counted distances");
    }

    #[test]
    fn single_object_database() {
        let f = |_: u32, _: u32| 0.0;
        let cache = PairCache::new(&f);
        let pg = ProximityGraph::build(1, &cache, &PgConfig::new(4));
        assert_eq!(pg.len(), 1);
        assert_eq!(pg.entry, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = points(60, 6);
        let f = |a: u32, b: u32| (pts[a as usize] - pts[b as usize]).abs();
        let c1 = PairCache::new(&f);
        let c2 = PairCache::new(&f);
        let cfg = PgConfig::new(5);
        let p1 = ProximityGraph::build(60, &c1, &cfg);
        let p2 = ProximityGraph::build(60, &c2, &cfg);
        assert_eq!(p1.layers, p2.layers);
        assert_eq!(p1.entry, p2.entry);
    }

    #[test]
    fn brute_force_reference() {
        let pts = [5.0f64, 1.0, 9.0, 3.0];
        let qd = |id: u32| (pts[id as usize] - 2.0).abs();
        let knn = brute_force_knn(4, &qd, 2);
        assert_eq!(knn[0].1, 1);
        assert_eq!(knn[1].1, 3);
    }
}
