//! Query budgets and cooperative cancellation.
//!
//! A production query must never run unbounded: `np_route`'s stage-2
//! backtracking escalates γ until the pool is exhausted, and a single slow
//! exact-GED call can stall a whole shard. This module bounds a query by
//! **NDC** (the paper's own cost metric — exact and deterministic, since
//! `ged.calls == NDC` by construction), by a **wall-clock deadline**, and
//! by a **hop count**, with graceful degradation: exhaustion never panics
//! and never returns an error, it stops routing and returns the
//! best-so-far pool tagged with a [`Termination`] outcome.
//!
//! One [`BudgetCtx`] is shared by every shard of a query (it is all
//! atomics, so the `lan-par` fan-out can borrow it concurrently); NDC is
//! *reserved* before each distance computation, which makes the cap strict
//! — the measured NDC can never exceed it, even when shards race. The
//! first shard to exhaust the budget records the cause and raises the
//! cancellation flag, cooperatively stopping its siblings at their next
//! distance computation.
//!
//! The unlimited budget is a true no-op: [`budgeted_get`] short-circuits
//! to a plain `DistCache::get`, so results and NDC are bit-identical to
//! unbudgeted execution (property-tested in
//! `crates/core/tests/budget_properties.rs`).

use crate::metric::{DistBound, DistCache};
use lan_obs::names;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How a routed query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Termination {
    /// Ran to natural completion — results are exactly what the unbudgeted
    /// algorithm would return.
    #[default]
    Converged,
    /// Stopped by the NDC cap; results are best-so-far.
    NdcBudget,
    /// Stopped by the wall-clock deadline; results are best-so-far.
    Deadline,
    /// Stopped early for another reason: the hop cap, or cooperative
    /// cancellation after a sibling shard exhausted the shared budget.
    Degraded,
}

impl Termination {
    /// Stable lower-case name (used in traces and JSON exports).
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Converged => "converged",
            Termination::NdcBudget => "ndc_budget",
            Termination::Deadline => "deadline",
            Termination::Degraded => "degraded",
        }
    }

    /// True for every outcome except [`Termination::Converged`].
    pub fn is_degraded(self) -> bool {
        self != Termination::Converged
    }
}

/// Resource bounds for one query. The default is unlimited on every axis,
/// which is guaranteed to add zero overhead and change nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Maximum unique distance computations (strict: measured NDC never
    /// exceeds this, even across parallel shards sharing the budget).
    pub max_ndc: Option<usize>,
    /// Wall-clock allowance, measured from [`BudgetCtx::new`].
    pub deadline: Option<Duration>,
    /// Maximum routing hops (explored nodes) per router.
    pub max_hops: Option<usize>,
}

impl QueryBudget {
    /// No bounds — bit-identical behavior to unbudgeted execution.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// True when no axis is bounded.
    pub fn is_unlimited(&self) -> bool {
        self.max_ndc.is_none() && self.deadline.is_none() && self.max_hops.is_none()
    }

    /// Caps unique distance computations.
    pub fn with_max_ndc(mut self, n: usize) -> Self {
        self.max_ndc = Some(n);
        self
    }

    /// Caps wall-clock time.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Caps routing hops per router.
    pub fn with_max_hops(mut self, h: usize) -> Self {
        self.max_hops = Some(h);
        self
    }

    /// Reads `LAN_NDC_BUDGET`, `LAN_DEADLINE_MS`, and `LAN_MAX_HOPS` as a
    /// `Result`: each is optional (unset → unlimited on that axis), but a
    /// *set and malformed* value — `-5`, `abc`, an empty string — is a
    /// typed [`lan_par::env::EnvError`] naming the key and the offending
    /// value, never a silent fallback to unlimited.
    pub fn try_from_env() -> Result<Self, lan_par::env::EnvError> {
        use lan_par::env::{any_usize, parse_var};
        Ok(QueryBudget {
            max_ndc: parse_var("LAN_NDC_BUDGET", any_usize)?,
            deadline: parse_var("LAN_DEADLINE_MS", any_usize)?
                .map(|ms| Duration::from_millis(ms as u64)),
            max_hops: parse_var("LAN_MAX_HOPS", any_usize)?,
        })
    }

    /// Total variant of [`QueryBudget::try_from_env`] for callers that
    /// cannot propagate: a malformed value prints one warning per key to
    /// stderr and that axis stays unlimited. Re-read on every call so
    /// tests and benches can flip the knobs at runtime.
    pub fn from_env() -> Self {
        use lan_par::env::{any_usize, parse_var_or_warn};
        QueryBudget {
            max_ndc: parse_var_or_warn("LAN_NDC_BUDGET", any_usize),
            deadline: parse_var_or_warn("LAN_DEADLINE_MS", any_usize)
                .map(|ms| Duration::from_millis(ms as u64)),
            max_hops: parse_var_or_warn("LAN_MAX_HOPS", any_usize),
        }
    }
}

/// Termination cause codes stored in [`BudgetCtx::cause`].
const CAUSE_NONE: u8 = 0;
const CAUSE_NDC: u8 = 1;
const CAUSE_DEADLINE: u8 = 2;
const CAUSE_DEGRADED: u8 = 3;

fn cause_to_termination(c: u8) -> Option<Termination> {
    match c {
        CAUSE_NDC => Some(Termination::NdcBudget),
        CAUSE_DEADLINE => Some(Termination::Deadline),
        CAUSE_DEGRADED => Some(Termination::Degraded),
        _ => None,
    }
}

/// Shared per-query execution state: the budget plus the global NDC
/// reservation counter and the cooperative cancellation flag. One per
/// query; shards borrow it across the `lan-par` fan-out (all state is
/// atomic).
#[derive(Debug)]
pub struct BudgetCtx {
    max_ndc: usize,
    deadline: Option<Instant>,
    max_hops: usize,
    unlimited: bool,
    /// Distance computations *reserved* so far, across every shard.
    spent: AtomicUsize,
    /// Raised by the first shard to exhaust the budget; siblings stop at
    /// their next distance computation.
    cancel: AtomicBool,
    /// First recorded termination cause (CAS; the winner also bumps the
    /// corresponding `budget.*` metric exactly once per query).
    cause: AtomicU8,
    /// The declared budget, kept verbatim for reporting (EXPLAIN plans
    /// need the original limits, e.g. the deadline as a duration rather
    /// than the derived `Instant`).
    limits: QueryBudget,
}

impl BudgetCtx {
    /// Starts the query clock: a deadline is measured from this call.
    pub fn new(budget: &QueryBudget) -> Self {
        BudgetCtx {
            max_ndc: budget.max_ndc.unwrap_or(usize::MAX),
            deadline: budget.deadline.map(|d| Instant::now() + d),
            max_hops: budget.max_hops.unwrap_or(usize::MAX),
            unlimited: budget.is_unlimited(),
            spent: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            cause: AtomicU8::new(CAUSE_NONE),
            limits: budget.clone(),
        }
    }

    /// A context that never stops anything.
    pub fn unlimited() -> Self {
        BudgetCtx::new(&QueryBudget::unlimited())
    }

    /// True when every check short-circuits (the zero-overhead fast path).
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.unlimited
    }

    /// The hop cap (usize::MAX when unbounded).
    pub fn max_hops(&self) -> usize {
        self.max_hops
    }

    /// The budget this context was created from, verbatim (reporting).
    pub fn limits(&self) -> &QueryBudget {
        &self.limits
    }

    /// Distance computations reserved so far across all shards.
    pub fn spent(&self) -> usize {
        self.spent.load(Ordering::Relaxed)
    }

    /// True once a shard raised the cooperative cancellation flag — used
    /// by sequential shard loops to skip the remaining shards entirely.
    #[inline]
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The first recorded termination cause, if the budget ever bound.
    pub fn cause(&self) -> Option<Termination> {
        cause_to_termination(self.cause.load(Ordering::Relaxed))
    }

    /// The merged outcome for the whole query: the recorded cause, or
    /// [`Termination::Converged`] when nothing ever bound.
    pub fn termination(&self) -> Termination {
        self.cause().unwrap_or(Termination::Converged)
    }

    /// Pre-computation check: cancellation by a sibling, then the deadline.
    /// Returns the *local* stop reason (a sibling's exhaustion reads as
    /// [`Termination::Degraded`] here; the shared cause keeps the original).
    #[inline]
    fn check(&self) -> Option<Termination> {
        if self.cancel.load(Ordering::Relaxed) {
            return Some(Termination::Degraded);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(Termination::Deadline);
            }
        }
        None
    }

    /// Reserves one distance computation. Strictly never lets `spent`
    /// exceed `max_ndc`, even under concurrent shard reservations.
    #[inline]
    fn try_charge(&self) -> bool {
        self.spent
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                (s < self.max_ndc).then_some(s + 1)
            })
            .is_ok()
    }

    /// Records an exhaustion cause and cancels sibling shards. The CAS
    /// winner bumps the matching `budget.*` counter once per query.
    pub fn note_exhausted(&self, t: Termination) {
        self.cancel.store(true, Ordering::Relaxed);
        self.note_local(t);
    }

    /// Records a cause without cancelling siblings (the hop cap is a
    /// per-router bound; other shards may still converge).
    pub fn note_local(&self, t: Termination) {
        let code = match t {
            Termination::Converged => return,
            Termination::NdcBudget => CAUSE_NDC,
            Termination::Deadline => CAUSE_DEADLINE,
            Termination::Degraded => CAUSE_DEGRADED,
        };
        if self
            .cause
            .compare_exchange(CAUSE_NONE, code, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            match t {
                Termination::NdcBudget => lan_obs::counter(names::BUDGET_NDC_EXHAUSTED).inc(),
                Termination::Deadline => lan_obs::counter(names::BUDGET_DEADLINE_EXCEEDED).inc(),
                Termination::Degraded => lan_obs::counter(names::BUDGET_CANCELLED).inc(),
                Termination::Converged => {}
            }
        }
    }
}

impl Default for BudgetCtx {
    fn default() -> Self {
        BudgetCtx::unlimited()
    }
}

/// A budget-aware `DistCache::get`.
///
/// * Unlimited budget: exactly `cache.get(id)` — same NDC, same result.
/// * Finite budget: cached distances are free (a `peek` costs no NDC);
///   a miss first passes the cancellation/deadline check, then reserves
///   one unit of NDC, and only then computes. `Err` carries the local
///   stop reason; the caller stops routing and returns best-so-far.
///
/// The peek-before-charge protocol relies on each query's `DistCache`
/// being accessed by one thread at a time (shards have independent
/// caches), which makes the reservation exact: every reserved unit is a
/// real cache miss.
#[inline]
pub fn budgeted_get(cache: &DistCache<'_>, ctx: &BudgetCtx, id: u32) -> Result<f64, Termination> {
    if ctx.is_unlimited() {
        return Ok(cache.get(id));
    }
    if let Some(d) = cache.peek(id) {
        return Ok(d);
    }
    if let Some(t) = ctx.check() {
        ctx.note_exhausted(t);
        return Err(t);
    }
    if !ctx.try_charge() {
        ctx.note_exhausted(Termination::NdcBudget);
        return Err(Termination::NdcBudget);
    }
    Ok(cache.get(id))
}

/// The threshold-gated counterpart of [`budgeted_get`]: same budget
/// protocol (cached answers are free and never charged, a miss passes the
/// cancellation/deadline check and reserves one NDC unit), but the lookup
/// flows through the gated cache paths so the metric may settle a
/// provably-dead candidate with a lower bound instead of a full solve.
/// With an ungated metric this is exactly [`budgeted_get`].
#[inline]
pub fn budgeted_get_within(
    cache: &DistCache<'_>,
    ctx: &BudgetCtx,
    id: u32,
    gamma: f64,
    gate: f64,
) -> Result<DistBound, Termination> {
    if ctx.is_unlimited() {
        return Ok(cache.get_within(id, gamma, gate));
    }
    if let Some(b) = cache.peek_within(id, gamma, gate) {
        return Ok(b);
    }
    if let Some(t) = ctx.check() {
        ctx.note_exhausted(t);
        return Err(t);
    }
    if !ctx.try_charge() {
        ctx.note_exhausted(Termination::NdcBudget);
        return Err(Termination::NdcBudget);
    }
    Ok(cache.get_within(id, gamma, gate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_env_reject_set_is_typed() {
        use lan_par::testenv::with_env;
        // Each knob's reject set: negative, non-numeric, empty, float.
        for key in ["LAN_NDC_BUDGET", "LAN_DEADLINE_MS", "LAN_MAX_HOPS"] {
            for bad in ["-5", "abc", "", "1.5", "1e3"] {
                with_env(&[(key, Some(bad))], || {
                    let err = QueryBudget::try_from_env().expect_err(bad);
                    assert_eq!(err.key, key, "wrong key blamed for {bad:?}");
                    assert_eq!(err.value, bad);
                    // The total path stays usable: that axis is unlimited.
                    assert!(QueryBudget::from_env().is_unlimited());
                });
            }
        }
        // Valid values still parse on both paths (zero is a legal cap).
        with_env(
            &[
                ("LAN_NDC_BUDGET", Some("100")),
                ("LAN_DEADLINE_MS", Some("250")),
                ("LAN_MAX_HOPS", Some("0")),
            ],
            || {
                let b = QueryBudget::try_from_env().unwrap();
                assert_eq!(b.max_ndc, Some(100));
                assert_eq!(b.deadline, Some(Duration::from_millis(250)));
                assert_eq!(b.max_hops, Some(0));
                assert_eq!(QueryBudget::from_env(), b);
            },
        );
        // Unset means unlimited, not an error.
        with_env(
            &[
                ("LAN_NDC_BUDGET", None),
                ("LAN_DEADLINE_MS", None),
                ("LAN_MAX_HOPS", None),
            ],
            || {
                assert!(QueryBudget::try_from_env().unwrap().is_unlimited());
            },
        );
    }

    #[test]
    fn unlimited_budget_is_unlimited() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        let ctx = BudgetCtx::new(&b);
        assert!(ctx.is_unlimited());
        assert_eq!(ctx.termination(), Termination::Converged);
    }

    #[test]
    fn budgeted_get_charges_misses_only() {
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(2));
        assert_eq!(budgeted_get(&cache, &ctx, 1), Ok(1.0));
        assert_eq!(budgeted_get(&cache, &ctx, 1), Ok(1.0)); // hit: free
        assert_eq!(budgeted_get(&cache, &ctx, 2), Ok(2.0));
        assert_eq!(ctx.spent(), 2);
        // Third unique id exceeds the cap.
        assert_eq!(budgeted_get(&cache, &ctx, 3), Err(Termination::NdcBudget));
        assert_eq!(cache.ndc(), 2);
        assert_eq!(ctx.termination(), Termination::NdcBudget);
        // Cached ids keep answering after exhaustion.
        assert_eq!(budgeted_get(&cache, &ctx, 1), Ok(1.0));
    }

    #[test]
    fn budgeted_get_within_follows_the_same_protocol() {
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(1));
        let g = (f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(
            budgeted_get_within(&cache, &ctx, 1, g.0, g.1),
            Ok(DistBound::Exact(1.0))
        );
        assert_eq!(
            budgeted_get_within(&cache, &ctx, 2, g.0, g.1),
            Err(Termination::NdcBudget)
        );
        // Cached ids keep answering for free after exhaustion.
        assert_eq!(
            budgeted_get_within(&cache, &ctx, 1, g.0, g.1),
            Ok(DistBound::Exact(1.0))
        );
        assert_eq!(cache.ndc(), 1);
    }

    #[test]
    fn exhaustion_cancels_siblings() {
        let f = |id: u32| id as f64;
        let cache_a = DistCache::new(&f);
        let cache_b = DistCache::new(&f);
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(1));
        assert!(budgeted_get(&cache_a, &ctx, 1).is_ok());
        assert_eq!(budgeted_get(&cache_a, &ctx, 2), Err(Termination::NdcBudget));
        // The sibling sees a cooperative cancellation, not the NDC cause.
        assert_eq!(budgeted_get(&cache_b, &ctx, 9), Err(Termination::Degraded));
        // The shared cause keeps the original reason.
        assert_eq!(ctx.termination(), Termination::NdcBudget);
    }

    #[test]
    fn deadline_in_the_past_stops_immediately() {
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        let ctx = BudgetCtx::new(&QueryBudget::default().with_deadline(Duration::ZERO));
        assert_eq!(budgeted_get(&cache, &ctx, 1), Err(Termination::Deadline));
        assert_eq!(cache.ndc(), 0);
        assert_eq!(ctx.termination(), Termination::Deadline);
    }

    #[test]
    fn concurrent_charges_never_exceed_cap() {
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(100));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _ = ctx.try_charge();
                    }
                });
            }
        });
        assert_eq!(ctx.spent(), 100);
    }

    #[test]
    fn termination_names_stable() {
        assert_eq!(Termination::Converged.as_str(), "converged");
        assert_eq!(Termination::NdcBudget.as_str(), "ndc_budget");
        assert_eq!(Termination::Deadline.as_str(), "deadline");
        assert_eq!(Termination::Degraded.as_str(), "degraded");
        assert!(!Termination::Converged.is_degraded());
        assert!(Termination::Deadline.is_degraded());
    }
}
