//! Distance abstractions with NDC accounting.
//!
//! The paper's central efficiency metric is **NDC** — the number of distance
//! computations a query performs. Both routers draw every query↔data
//! distance through a [`DistCache`], which memoizes per query (computing
//! `d(Q, G)` twice would be a wasted NP-hard computation no real system
//! performs) and counts unique computations. NDC = cache misses.
//!
//! Both caches are **thread-safe**: the map is lock-striped (keys hash to
//! one of [`STRIPES`] independent `Mutex<HashMap>` shards) and the NDC
//! counter is atomic, so concurrent routing, construction workers, and
//! parallel shard searches can share one cache. A stripe's lock is held
//! *while the distance is computed*, which preserves the sequential
//! guarantee that each key is computed **at most once** — two threads
//! racing on the same id serialize on the stripe and the loser reads the
//! winner's cached value. Distinct keys almost always land on distinct
//! stripes and compute truly concurrently.

use lan_obs::{names, Counter};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of independent lock stripes per cache. More stripes = less
/// contention between concurrent misses on distinct keys; 64 keeps the
/// collision probability low for the ≤ `2m`-sized candidate batches the
/// parallel construction evaluates at once.
const STRIPES: usize = 64;

/// A distance answer from a threshold-gated metric: the exact value, or an
/// admissible lower bound that already proves the object is too far to
/// matter (the GED kernel cascade returns `AtLeast` when a cheap signature
/// bound or an aborted branch-and-bound reaches the caller's threshold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistBound {
    /// The true distance.
    Exact(f64),
    /// The true distance is `>= lb`; the full solver never ran.
    AtLeast(f64),
}

impl DistBound {
    /// The smallest distance consistent with this answer.
    pub fn min_value(&self) -> f64 {
        match *self {
            DistBound::Exact(d) => d,
            DistBound::AtLeast(lb) => lb,
        }
    }

    /// True for [`DistBound::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, DistBound::Exact(_))
    }
}

/// The cascade prune predicate: a lower bound settles a candidate only
/// when it reaches the routing threshold `gamma` AND strictly exceeds the
/// pool gate (the worst distance a full pool kept at its last resize).
/// Strict `> gate` preserves the pool's `(dist, id)` tie-breaking: a
/// candidate tied with the gate could still displace a kept entry, so it
/// must be computed exactly. NaN gates compare false and disable pruning.
#[inline]
fn prunes(lb: f64, gamma: f64, gate: f64) -> bool {
    lb >= gamma && lb > gate
}

/// Distance from the current query to database object `id`.
///
/// `Sync` is a supertrait: oracles are shared across the scoped worker
/// threads of `lan-par`, so any interior state they carry must be
/// thread-safe (use atomics, not `RefCell`, for counters and timers).
pub trait QueryDistance: Sync {
    fn distance(&self, id: u32) -> f64;

    /// Threshold-gated distance: may answer with an admissible lower bound
    /// instead of the exact value, provided the bound reaches `tau`. The
    /// default runs the full metric — closures and wrappers that do not
    /// override this stay bit-identical to ungated execution. Overrides
    /// must guarantee `AtLeast(lb)` implies `lb <= d(id)` and `lb >= tau`,
    /// and that `Exact` answers equal [`Self::distance`] bit for bit.
    fn distance_within(&self, id: u32, tau: f64) -> DistBound {
        let _ = tau;
        DistBound::Exact(self.distance(id))
    }
}

impl<F: Fn(u32) -> f64 + Sync> QueryDistance for F {
    fn distance(&self, id: u32) -> f64 {
        self(id)
    }
}

/// Pre-resolved global metric handles for one cache. Resolved once at
/// cache construction (the registry lock is never taken inside the
/// stripe-locked distance section — increments are lock-free atomics).
struct CacheMetrics {
    calls: &'static Counter,
    hit: &'static Counter,
    miss: &'static Counter,
}

/// Memoizing, counting wrapper around a [`QueryDistance`]. One per query.
///
/// Entries may hold a threshold-gated [`DistBound::AtLeast`] bound instead
/// of an exact distance. The counter contract keeps NDC and hit counts
/// bit-identical to an ungated run: a gated miss counts one NDC (the
/// ungated run computed that object exactly once there too); every later
/// touch through [`DistCache::get`]/[`DistCache::get_within`] counts one
/// hit whether the bound survives or must be refined (the ungated run saw
/// a hit there); [`DistCache::peek`]/[`DistCache::peek_within`] refine
/// silently, counting nothing (ungated `peek` counted nothing). What the
/// cascade actually saves is full solver runs — visible in the gap between
/// `ged.calls` (= NDC) and `ged.full_evals`, never in NDC itself.
pub struct DistCache<'a> {
    inner: &'a dyn QueryDistance,
    stripes: Vec<Mutex<HashMap<u32, DistBound>>>,
    ndc: AtomicUsize,
    hits: AtomicUsize,
    metrics: Option<CacheMetrics>,
}

impl<'a> DistCache<'a> {
    /// Wraps a query-distance oracle; misses and hits feed the global
    /// `ged.calls` / `ged.cache.{hit,miss}` metrics.
    pub fn new(inner: &'a dyn QueryDistance) -> Self {
        Self::build(
            inner,
            Some(CacheMetrics {
                calls: lan_obs::counter(names::GED_CALLS),
                hit: lan_obs::counter(names::GED_CACHE_HIT),
                miss: lan_obs::counter(names::GED_CACHE_MISS),
            }),
        )
    }

    /// Wraps an oracle whose computations are *not* graph distances (e.g.
    /// L2route's embedding-space routing) — local `ndc()`/`hits()` still
    /// count, but the global `ged.*` metrics are untouched, keeping
    /// `ged.calls` equal to the paper's NDC.
    pub fn new_uncounted(inner: &'a dyn QueryDistance) -> Self {
        Self::build(inner, None)
    }

    fn build(inner: &'a dyn QueryDistance, metrics: Option<CacheMetrics>) -> Self {
        DistCache {
            inner,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            ndc: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            metrics,
        }
    }

    fn stripe(&self, id: u32) -> &Mutex<HashMap<u32, DistBound>> {
        &self.stripes[id as usize % STRIPES]
    }

    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.hit.inc();
        }
    }

    fn count_miss(&self) {
        self.ndc.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.miss.inc();
            m.calls.inc();
        }
    }

    /// The distance from the query to `id`, counted as a miss at most once —
    /// even under concurrent access (the stripe lock covers the
    /// computation). A cached threshold bound is refined to the exact value
    /// here; the touch still counts as the single hit the ungated run saw.
    pub fn get(&self, id: u32) -> f64 {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.entry(id) {
            Entry::Occupied(mut e) => {
                self.count_hit();
                match *e.get() {
                    DistBound::Exact(d) => d,
                    DistBound::AtLeast(_) => {
                        let d = self.inner.distance(id);
                        e.insert(DistBound::Exact(d));
                        d
                    }
                }
            }
            Entry::Vacant(e) => {
                let d = self.inner.distance(id);
                e.insert(DistBound::Exact(d));
                self.count_miss();
                d
            }
        }
    }

    /// The threshold-gated distance under the routing threshold `gamma` and
    /// pool gate `gate` (see [`crate::pool::Pool::prune_gate`]). A cached or
    /// freshly computed bound is kept only while the prune predicate holds
    /// for the *current* thresholds; otherwise it is refined to the exact
    /// value. Counters follow the [`DistCache::get`] contract exactly.
    pub fn get_within(&self, id: u32, gamma: f64, gate: f64) -> DistBound {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.entry(id) {
            Entry::Occupied(mut e) => {
                self.count_hit();
                match *e.get() {
                    DistBound::Exact(d) => DistBound::Exact(d),
                    DistBound::AtLeast(lb) if prunes(lb, gamma, gate) => DistBound::AtLeast(lb),
                    DistBound::AtLeast(_) => {
                        let d = self.inner.distance(id);
                        e.insert(DistBound::Exact(d));
                        DistBound::Exact(d)
                    }
                }
            }
            Entry::Vacant(e) => {
                let b = match self.inner.distance_within(id, gamma.max(gate)) {
                    // A bound that only *ties* the gate cannot settle the
                    // candidate (the pool breaks distance ties by id);
                    // refine it on the spot.
                    DistBound::AtLeast(lb) if !prunes(lb, gamma, gate) => {
                        DistBound::Exact(self.inner.distance(id))
                    }
                    b => b,
                };
                e.insert(b);
                self.count_miss();
                b
            }
        }
    }

    /// The cached distance, if this object was ever computed. A cached
    /// threshold bound is silently refined to the exact value — no hit or
    /// miss is counted, matching the ungated `peek` (which counted nothing
    /// and would have found the exact value already cached).
    pub fn peek(&self, id: u32) -> Option<f64> {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.get_mut(&id) {
            None => None,
            Some(DistBound::Exact(d)) => Some(*d),
            Some(slot) => {
                let d = self.inner.distance(id);
                *slot = DistBound::Exact(d);
                Some(d)
            }
        }
    }

    /// The cached answer under the current thresholds, if this object was
    /// ever computed: exact values and still-valid bounds come back as-is;
    /// a bound the thresholds no longer justify is silently refined.
    /// Counts nothing, like [`DistCache::peek`].
    pub fn peek_within(&self, id: u32, gamma: f64, gate: f64) -> Option<DistBound> {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.get_mut(&id) {
            None => None,
            Some(DistBound::Exact(d)) => Some(DistBound::Exact(*d)),
            Some(slot) => {
                let DistBound::AtLeast(lb) = *slot else {
                    unreachable!("non-exact slot is AtLeast")
                };
                if prunes(lb, gamma, gate) {
                    Some(DistBound::AtLeast(lb))
                } else {
                    let d = self.inner.distance(id);
                    *slot = DistBound::Exact(d);
                    Some(DistBound::Exact(d))
                }
            }
        }
    }

    /// The raw cached entry — exact or bound — without refining, computing,
    /// or counting anything.
    pub fn peek_bound(&self, id: u32) -> Option<DistBound> {
        self.stripe(id)
            .lock()
            .expect("stripe poisoned")
            .get(&id)
            .copied()
    }

    /// Number of unique distance computations so far (the paper's NDC).
    pub fn ndc(&self) -> usize {
        self.ndc.load(Ordering::Relaxed)
    }

    /// Number of cache hits so far (lookups served without computing).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Symmetric pairwise distance between database objects (used at index
/// construction time). `Sync` for the same reason as [`QueryDistance`].
pub trait PairDistance: Sync {
    fn distance(&self, a: u32, b: u32) -> f64;
}

impl<F: Fn(u32, u32) -> f64 + Sync> PairDistance for F {
    fn distance(&self, a: u32, b: u32) -> f64 {
        self(a, b)
    }
}

/// Packs a symmetric `(u32, u32)` pair into one `u64` key (`min` in the
/// high half) — one word to hash instead of a two-field tuple.
fn pack_pair(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// Memoizing wrapper for construction-time pair distances (symmetric keys).
pub struct PairCache<'a> {
    inner: &'a dyn PairDistance,
    stripes: Vec<Mutex<HashMap<u64, f64>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
    metrics: Option<CacheMetrics>,
}

impl<'a> PairCache<'a> {
    /// Wraps a pair-distance oracle; misses and hits feed the global
    /// `pair.calls` / `pair.cache.{hit,miss}` metrics.
    pub fn new(inner: &'a dyn PairDistance) -> Self {
        Self::build(
            inner,
            Some(CacheMetrics {
                calls: lan_obs::counter(names::PAIR_CALLS),
                hit: lan_obs::counter(names::PAIR_CACHE_HIT),
                miss: lan_obs::counter(names::PAIR_CACHE_MISS),
            }),
        )
    }

    /// Wraps an oracle whose computations are not graph distances (e.g.
    /// embedding-space L2) — the global `pair.*` metrics are untouched.
    pub fn new_uncounted(inner: &'a dyn PairDistance) -> Self {
        Self::build(inner, None)
    }

    fn build(inner: &'a dyn PairDistance, metrics: Option<CacheMetrics>) -> Self {
        PairCache {
            inner,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            computed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            metrics,
        }
    }

    /// `d(a, b) = d(b, a)`, computed at most once per unordered pair — even
    /// under concurrent access (the stripe lock covers the computation).
    pub fn get(&self, a: u32, b: u32) -> f64 {
        let key = pack_pair(a, b);
        // Mix both halves so stripes don't degenerate when one endpoint is
        // fixed (the inner loops of construction probe (v, *) fans).
        let stripe = ((key ^ (key >> 32)) as usize) % STRIPES;
        let mut map = self.stripes[stripe].lock().expect("stripe poisoned");
        match map.entry(key) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.hit.inc();
                }
                *e.get()
            }
            Entry::Vacant(e) => {
                let d = self.inner.distance((key >> 32) as u32, key as u32);
                e.insert(d);
                self.computed.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.miss.inc();
                    m.calls.inc();
                }
                d
            }
        }
    }

    pub fn computed(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of cache hits so far (lookups served without computing).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let calls = AtomicUsize::new(0);
        let f = |id: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            id as f64 * 2.0
        };
        let cache = DistCache::new(&f);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(4), 8.0);
        assert_eq!(cache.ndc(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.peek(3), Some(6.0));
        assert_eq!(cache.peek(9), None);
    }

    /// A gated oracle with per-object exact distances and admissible lower
    /// bounds, counting how often each path runs.
    struct GatedOracle {
        d: Vec<f64>,
        lb: Vec<f64>,
        full: AtomicUsize,
        gated: AtomicUsize,
    }

    impl GatedOracle {
        fn new(d: Vec<f64>, lb: Vec<f64>) -> Self {
            assert!(
                d.iter().zip(&lb).all(|(d, lb)| lb <= d),
                "bounds admissible"
            );
            GatedOracle {
                d,
                lb,
                full: AtomicUsize::new(0),
                gated: AtomicUsize::new(0),
            }
        }
    }

    impl QueryDistance for GatedOracle {
        fn distance(&self, id: u32) -> f64 {
            self.full.fetch_add(1, Ordering::Relaxed);
            self.d[id as usize]
        }

        fn distance_within(&self, id: u32, tau: f64) -> DistBound {
            let lb = self.lb[id as usize];
            if tau.is_finite() && lb >= tau {
                self.gated.fetch_add(1, Ordering::Relaxed);
                DistBound::AtLeast(lb)
            } else {
                DistBound::Exact(self.distance(id))
            }
        }
    }

    #[test]
    fn get_within_prunes_and_counts_like_get() {
        let o = GatedOracle::new(vec![9.0, 2.0], vec![7.0, 1.0]);
        let cache = DistCache::new(&o);
        // Object 0: lb 7 reaches gamma 5 and beats gate 6 -> bound kept,
        // still one NDC (the ungated run computed it here too).
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        assert_eq!(cache.ndc(), 1);
        assert_eq!(o.full.load(Ordering::Relaxed), 0, "no full eval ran");
        // Object 1: lb 1 misses gamma -> exact, one more NDC.
        assert_eq!(cache.get_within(1, 5.0, 6.0), DistBound::Exact(2.0));
        assert_eq!(cache.ndc(), 2);
        // Re-touch under the same thresholds: hit, bound survives.
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        assert_eq!(cache.hits(), 1);
        // Re-touch under a stricter gate: hit plus an on-the-spot refine —
        // a full eval but no new NDC.
        assert_eq!(cache.get_within(0, 5.0, 8.0), DistBound::Exact(9.0));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.ndc(), 2);
        assert_eq!(o.full.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn get_refines_cached_bound_with_one_hit() {
        let o = GatedOracle::new(vec![9.0], vec![7.0]);
        let cache = DistCache::new(&o);
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        assert_eq!(cache.get(0), 9.0);
        assert_eq!((cache.ndc(), cache.hits()), (1, 1));
        // The refined value is cached exactly from then on.
        assert_eq!(cache.peek_bound(0), Some(DistBound::Exact(9.0)));
        assert_eq!(cache.get(0), 9.0);
        assert_eq!(o.full.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn peek_refines_silently() {
        let o = GatedOracle::new(vec![9.0], vec![7.0]);
        let cache = DistCache::new(&o);
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        let (ndc, hits) = (cache.ndc(), cache.hits());
        assert_eq!(cache.peek_bound(0), Some(DistBound::AtLeast(7.0)));
        assert_eq!(
            cache.peek(0),
            Some(9.0),
            "peek must surface the exact value"
        );
        assert_eq!(
            (cache.ndc(), cache.hits()),
            (ndc, hits),
            "peek counts nothing"
        );
        assert_eq!(cache.peek(1), None);
        assert_eq!(cache.peek_bound(1), None);
    }

    #[test]
    fn peek_within_keeps_valid_bounds_and_refines_stale_ones() {
        let o = GatedOracle::new(vec![9.0, 9.0], vec![7.0, 7.0]);
        let cache = DistCache::new(&o);
        cache.get_within(0, 5.0, 6.0);
        cache.get_within(1, 5.0, 6.0);
        let (ndc, hits) = (cache.ndc(), cache.hits());
        assert_eq!(
            cache.peek_within(0, 5.0, 6.0),
            Some(DistBound::AtLeast(7.0))
        );
        assert_eq!(cache.peek_within(1, 8.0, 6.0), Some(DistBound::Exact(9.0)));
        assert_eq!((cache.ndc(), cache.hits()), (ndc, hits));
        assert_eq!(cache.peek_within(2, 5.0, 6.0), None);
    }

    #[test]
    fn bound_tying_the_gate_is_refined_immediately() {
        // lb == gate cannot settle a candidate (pool ties break by id), so
        // the vacant path must refine before caching.
        let o = GatedOracle::new(vec![7.5], vec![7.0]);
        let cache = DistCache::new(&o);
        assert_eq!(cache.get_within(0, 5.0, 7.0), DistBound::Exact(7.5));
        assert_eq!(cache.ndc(), 1);
    }

    #[test]
    fn closures_never_produce_bounds() {
        // The default distance_within keeps plain closures on the exact
        // path no matter the thresholds.
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        assert_eq!(cache.get_within(3, 0.0, 1.0), DistBound::Exact(3.0));
        assert_eq!(cache.peek_bound(3), Some(DistBound::Exact(3.0)));
    }

    #[test]
    fn repeated_workload_has_positive_hit_rate() {
        // A routing workload revisits nodes constantly (every hop re-ranks
        // neighbors some of which were already scored); model that with a
        // lookup sequence containing repeats and assert the hit counters
        // and the global ged.* metrics both see the hits.
        let before = lan_obs::snapshot();
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        let workload = [3u32, 7, 3, 9, 7, 3, 11, 9, 3];
        for id in workload {
            cache.get(id);
        }
        assert_eq!(cache.ndc(), 4); // {3, 7, 9, 11}
        assert_eq!(cache.hits(), 5);
        let hit_rate = cache.hits() as f64 / workload.len() as f64;
        assert!(hit_rate > 0.0);
        if lan_obs::enabled() {
            let d = lan_obs::snapshot().diff(&before);
            assert!(d.counter(names::GED_CACHE_HIT) >= 5);
            assert!(d.counter(names::GED_CALLS) >= 4);
        }

        // The uncounted constructor must leave the global metrics alone.
        let before = lan_obs::snapshot();
        let quiet = DistCache::new_uncounted(&f);
        quiet.get(1);
        quiet.get(1);
        assert_eq!(quiet.ndc(), 1);
        assert_eq!(quiet.hits(), 1);
        let d = lan_obs::snapshot().diff(&before);
        assert_eq!(d.counter(names::GED_CALLS), 0);
        assert_eq!(d.counter(names::GED_CACHE_HIT), 0);
    }

    #[test]
    fn pair_cache_counts_hits() {
        let f = |a: u32, b: u32| (a + b) as f64;
        let cache = PairCache::new(&f);
        cache.get(1, 2);
        cache.get(2, 1);
        cache.get(1, 2);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn pair_cache_symmetric() {
        let calls = AtomicUsize::new(0);
        let f = |a: u32, b: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            (a + b) as f64
        };
        let cache = PairCache::new(&f);
        assert_eq!(cache.get(1, 2), 3.0);
        assert_eq!(cache.get(2, 1), 3.0);
        assert_eq!(cache.computed(), 1);
    }

    #[test]
    fn pack_pair_is_symmetric_and_injective() {
        assert_eq!(pack_pair(1, 2), pack_pair(2, 1));
        assert_ne!(pack_pair(1, 2), pack_pair(1, 3));
        assert_ne!(pack_pair(0, 1), pack_pair(1, 1));
        assert_eq!(pack_pair(u32::MAX, 0), pack_pair(0, u32::MAX));
    }

    #[test]
    fn concurrent_get_computes_each_id_once() {
        let calls = AtomicUsize::new(0);
        let f = |id: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            id as f64
        };
        let cache = DistCache::new(&f);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for id in 0..100u32 {
                        assert_eq!(cache.get(id), id as f64);
                    }
                });
            }
        });
        // Every one of the 4 threads asks for all 100 ids; each id must
        // have been computed exactly once.
        assert_eq!(cache.ndc(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_pair_get_computes_each_pair_once() {
        let calls = AtomicUsize::new(0);
        let f = |a: u32, b: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            (a * 31 + b) as f64
        };
        let cache = PairCache::new(&f);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for a in 0..20u32 {
                        for b in 0..20u32 {
                            let _ = cache.get(a, b);
                        }
                    }
                });
            }
        });
        // 20×20 symmetric grid → 20 diagonal + 190 off-diagonal pairs.
        assert_eq!(cache.computed(), 210);
        assert_eq!(calls.load(Ordering::Relaxed), 210);
    }
}
