//! Distance abstractions with NDC accounting.
//!
//! The paper's central efficiency metric is **NDC** — the number of distance
//! computations a query performs. Both routers draw every query↔data
//! distance through a [`DistCache`], which memoizes per query (computing
//! `d(Q, G)` twice would be a wasted NP-hard computation no real system
//! performs) and counts unique computations. NDC = cache misses.

use std::cell::RefCell;
use std::collections::HashMap;

/// Distance from the current query to database object `id`.
pub trait QueryDistance {
    fn distance(&self, id: u32) -> f64;
}

impl<F: Fn(u32) -> f64> QueryDistance for F {
    fn distance(&self, id: u32) -> f64 {
        self(id)
    }
}

/// Memoizing, counting wrapper around a [`QueryDistance`]. One per query.
pub struct DistCache<'a> {
    inner: &'a dyn QueryDistance,
    cache: RefCell<HashMap<u32, f64>>,
    ndc: RefCell<usize>,
}

impl<'a> DistCache<'a> {
    /// Wraps a query-distance oracle.
    pub fn new(inner: &'a dyn QueryDistance) -> Self {
        DistCache { inner, cache: RefCell::new(HashMap::new()), ndc: RefCell::new(0) }
    }

    /// The distance from the query to `id`, computed at most once.
    pub fn get(&self, id: u32) -> f64 {
        if let Some(&d) = self.cache.borrow().get(&id) {
            return d;
        }
        let d = self.inner.distance(id);
        self.cache.borrow_mut().insert(id, d);
        *self.ndc.borrow_mut() += 1;
        d
    }

    /// The cached distance, if this object's distance was ever computed.
    pub fn peek(&self, id: u32) -> Option<f64> {
        self.cache.borrow().get(&id).copied()
    }

    /// Number of unique distance computations so far (the paper's NDC).
    pub fn ndc(&self) -> usize {
        *self.ndc.borrow()
    }
}

/// Symmetric pairwise distance between database objects (used at index
/// construction time).
pub trait PairDistance {
    fn distance(&self, a: u32, b: u32) -> f64;
}

impl<F: Fn(u32, u32) -> f64> PairDistance for F {
    fn distance(&self, a: u32, b: u32) -> f64 {
        self(a, b)
    }
}

/// Memoizing wrapper for construction-time pair distances (symmetric keys).
pub struct PairCache<'a> {
    inner: &'a dyn PairDistance,
    cache: RefCell<HashMap<(u32, u32), f64>>,
    computed: RefCell<usize>,
}

impl<'a> PairCache<'a> {
    pub fn new(inner: &'a dyn PairDistance) -> Self {
        PairCache { inner, cache: RefCell::new(HashMap::new()), computed: RefCell::new(0) }
    }

    pub fn get(&self, a: u32, b: u32) -> f64 {
        let key = (a.min(b), a.max(b));
        if let Some(&d) = self.cache.borrow().get(&key) {
            return d;
        }
        let d = self.inner.distance(key.0, key.1);
        self.cache.borrow_mut().insert(key, d);
        *self.computed.borrow_mut() += 1;
        d
    }

    pub fn computed(&self) -> usize {
        *self.computed.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let calls = RefCell::new(0usize);
        let f = |id: u32| {
            *calls.borrow_mut() += 1;
            id as f64 * 2.0
        };
        let cache = DistCache::new(&f);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(4), 8.0);
        assert_eq!(cache.ndc(), 2);
        assert_eq!(*calls.borrow(), 2);
        assert_eq!(cache.peek(3), Some(6.0));
        assert_eq!(cache.peek(9), None);
    }

    #[test]
    fn pair_cache_symmetric() {
        let calls = RefCell::new(0usize);
        let f = |a: u32, b: u32| {
            *calls.borrow_mut() += 1;
            (a + b) as f64
        };
        let cache = PairCache::new(&f);
        assert_eq!(cache.get(1, 2), 3.0);
        assert_eq!(cache.get(2, 1), 3.0);
        assert_eq!(cache.computed(), 1);
    }
}
