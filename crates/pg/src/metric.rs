//! Distance abstractions with NDC accounting.
//!
//! The paper's central efficiency metric is **NDC** — the number of distance
//! computations a query performs. Both routers draw every query↔data
//! distance through a [`DistCache`], which memoizes per query (computing
//! `d(Q, G)` twice would be a wasted NP-hard computation no real system
//! performs) and counts unique computations. NDC = cache misses.
//!
//! Both caches are **thread-safe**: the map is lock-striped (keys hash to
//! one of [`STRIPES`] independent `Mutex<HashMap>` shards) and the NDC
//! counter is atomic, so concurrent routing, construction workers, and
//! parallel shard searches can share one cache. A stripe's lock is held
//! *while the distance is computed*, which preserves the sequential
//! guarantee that each key is computed **at most once** — two threads
//! racing on the same id serialize on the stripe and the loser reads the
//! winner's cached value. Distinct keys almost always land on distinct
//! stripes and compute truly concurrently.

use lan_obs::{names, Counter};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of independent lock stripes per cache. More stripes = less
/// contention between concurrent misses on distinct keys; 64 keeps the
/// collision probability low for the ≤ `2m`-sized candidate batches the
/// parallel construction evaluates at once.
const STRIPES: usize = 64;

/// Distance from the current query to database object `id`.
///
/// `Sync` is a supertrait: oracles are shared across the scoped worker
/// threads of `lan-par`, so any interior state they carry must be
/// thread-safe (use atomics, not `RefCell`, for counters and timers).
pub trait QueryDistance: Sync {
    fn distance(&self, id: u32) -> f64;
}

impl<F: Fn(u32) -> f64 + Sync> QueryDistance for F {
    fn distance(&self, id: u32) -> f64 {
        self(id)
    }
}

/// Pre-resolved global metric handles for one cache. Resolved once at
/// cache construction (the registry lock is never taken inside the
/// stripe-locked distance section — increments are lock-free atomics).
struct CacheMetrics {
    calls: &'static Counter,
    hit: &'static Counter,
    miss: &'static Counter,
}

/// Memoizing, counting wrapper around a [`QueryDistance`]. One per query.
pub struct DistCache<'a> {
    inner: &'a dyn QueryDistance,
    stripes: Vec<Mutex<HashMap<u32, f64>>>,
    ndc: AtomicUsize,
    hits: AtomicUsize,
    metrics: Option<CacheMetrics>,
}

impl<'a> DistCache<'a> {
    /// Wraps a query-distance oracle; misses and hits feed the global
    /// `ged.calls` / `ged.cache.{hit,miss}` metrics.
    pub fn new(inner: &'a dyn QueryDistance) -> Self {
        Self::build(
            inner,
            Some(CacheMetrics {
                calls: lan_obs::counter(names::GED_CALLS),
                hit: lan_obs::counter(names::GED_CACHE_HIT),
                miss: lan_obs::counter(names::GED_CACHE_MISS),
            }),
        )
    }

    /// Wraps an oracle whose computations are *not* graph distances (e.g.
    /// L2route's embedding-space routing) — local `ndc()`/`hits()` still
    /// count, but the global `ged.*` metrics are untouched, keeping
    /// `ged.calls` equal to the paper's NDC.
    pub fn new_uncounted(inner: &'a dyn QueryDistance) -> Self {
        Self::build(inner, None)
    }

    fn build(inner: &'a dyn QueryDistance, metrics: Option<CacheMetrics>) -> Self {
        DistCache {
            inner,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            ndc: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            metrics,
        }
    }

    fn stripe(&self, id: u32) -> &Mutex<HashMap<u32, f64>> {
        &self.stripes[id as usize % STRIPES]
    }

    /// The distance from the query to `id`, computed at most once — even
    /// under concurrent access (the stripe lock covers the computation).
    pub fn get(&self, id: u32) -> f64 {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.entry(id) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.hit.inc();
                }
                *e.get()
            }
            Entry::Vacant(e) => {
                let d = self.inner.distance(id);
                e.insert(d);
                self.ndc.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.miss.inc();
                    m.calls.inc();
                }
                d
            }
        }
    }

    /// The cached distance, if this object's distance was ever computed.
    pub fn peek(&self, id: u32) -> Option<f64> {
        self.stripe(id)
            .lock()
            .expect("stripe poisoned")
            .get(&id)
            .copied()
    }

    /// Number of unique distance computations so far (the paper's NDC).
    pub fn ndc(&self) -> usize {
        self.ndc.load(Ordering::Relaxed)
    }

    /// Number of cache hits so far (lookups served without computing).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Symmetric pairwise distance between database objects (used at index
/// construction time). `Sync` for the same reason as [`QueryDistance`].
pub trait PairDistance: Sync {
    fn distance(&self, a: u32, b: u32) -> f64;
}

impl<F: Fn(u32, u32) -> f64 + Sync> PairDistance for F {
    fn distance(&self, a: u32, b: u32) -> f64 {
        self(a, b)
    }
}

/// Packs a symmetric `(u32, u32)` pair into one `u64` key (`min` in the
/// high half) — one word to hash instead of a two-field tuple.
fn pack_pair(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// Memoizing wrapper for construction-time pair distances (symmetric keys).
pub struct PairCache<'a> {
    inner: &'a dyn PairDistance,
    stripes: Vec<Mutex<HashMap<u64, f64>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
    metrics: Option<CacheMetrics>,
}

impl<'a> PairCache<'a> {
    /// Wraps a pair-distance oracle; misses and hits feed the global
    /// `pair.calls` / `pair.cache.{hit,miss}` metrics.
    pub fn new(inner: &'a dyn PairDistance) -> Self {
        Self::build(
            inner,
            Some(CacheMetrics {
                calls: lan_obs::counter(names::PAIR_CALLS),
                hit: lan_obs::counter(names::PAIR_CACHE_HIT),
                miss: lan_obs::counter(names::PAIR_CACHE_MISS),
            }),
        )
    }

    /// Wraps an oracle whose computations are not graph distances (e.g.
    /// embedding-space L2) — the global `pair.*` metrics are untouched.
    pub fn new_uncounted(inner: &'a dyn PairDistance) -> Self {
        Self::build(inner, None)
    }

    fn build(inner: &'a dyn PairDistance, metrics: Option<CacheMetrics>) -> Self {
        PairCache {
            inner,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            computed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            metrics,
        }
    }

    /// `d(a, b) = d(b, a)`, computed at most once per unordered pair — even
    /// under concurrent access (the stripe lock covers the computation).
    pub fn get(&self, a: u32, b: u32) -> f64 {
        let key = pack_pair(a, b);
        // Mix both halves so stripes don't degenerate when one endpoint is
        // fixed (the inner loops of construction probe (v, *) fans).
        let stripe = ((key ^ (key >> 32)) as usize) % STRIPES;
        let mut map = self.stripes[stripe].lock().expect("stripe poisoned");
        match map.entry(key) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.hit.inc();
                }
                *e.get()
            }
            Entry::Vacant(e) => {
                let d = self.inner.distance((key >> 32) as u32, key as u32);
                e.insert(d);
                self.computed.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.miss.inc();
                    m.calls.inc();
                }
                d
            }
        }
    }

    pub fn computed(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of cache hits so far (lookups served without computing).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let calls = AtomicUsize::new(0);
        let f = |id: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            id as f64 * 2.0
        };
        let cache = DistCache::new(&f);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(4), 8.0);
        assert_eq!(cache.ndc(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.peek(3), Some(6.0));
        assert_eq!(cache.peek(9), None);
    }

    #[test]
    fn repeated_workload_has_positive_hit_rate() {
        // A routing workload revisits nodes constantly (every hop re-ranks
        // neighbors some of which were already scored); model that with a
        // lookup sequence containing repeats and assert the hit counters
        // and the global ged.* metrics both see the hits.
        let before = lan_obs::snapshot();
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        let workload = [3u32, 7, 3, 9, 7, 3, 11, 9, 3];
        for id in workload {
            cache.get(id);
        }
        assert_eq!(cache.ndc(), 4); // {3, 7, 9, 11}
        assert_eq!(cache.hits(), 5);
        let hit_rate = cache.hits() as f64 / workload.len() as f64;
        assert!(hit_rate > 0.0);
        if lan_obs::enabled() {
            let d = lan_obs::snapshot().diff(&before);
            assert!(d.counter(names::GED_CACHE_HIT) >= 5);
            assert!(d.counter(names::GED_CALLS) >= 4);
        }

        // The uncounted constructor must leave the global metrics alone.
        let before = lan_obs::snapshot();
        let quiet = DistCache::new_uncounted(&f);
        quiet.get(1);
        quiet.get(1);
        assert_eq!(quiet.ndc(), 1);
        assert_eq!(quiet.hits(), 1);
        let d = lan_obs::snapshot().diff(&before);
        assert_eq!(d.counter(names::GED_CALLS), 0);
        assert_eq!(d.counter(names::GED_CACHE_HIT), 0);
    }

    #[test]
    fn pair_cache_counts_hits() {
        let f = |a: u32, b: u32| (a + b) as f64;
        let cache = PairCache::new(&f);
        cache.get(1, 2);
        cache.get(2, 1);
        cache.get(1, 2);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn pair_cache_symmetric() {
        let calls = AtomicUsize::new(0);
        let f = |a: u32, b: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            (a + b) as f64
        };
        let cache = PairCache::new(&f);
        assert_eq!(cache.get(1, 2), 3.0);
        assert_eq!(cache.get(2, 1), 3.0);
        assert_eq!(cache.computed(), 1);
    }

    #[test]
    fn pack_pair_is_symmetric_and_injective() {
        assert_eq!(pack_pair(1, 2), pack_pair(2, 1));
        assert_ne!(pack_pair(1, 2), pack_pair(1, 3));
        assert_ne!(pack_pair(0, 1), pack_pair(1, 1));
        assert_eq!(pack_pair(u32::MAX, 0), pack_pair(0, u32::MAX));
    }

    #[test]
    fn concurrent_get_computes_each_id_once() {
        let calls = AtomicUsize::new(0);
        let f = |id: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            id as f64
        };
        let cache = DistCache::new(&f);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for id in 0..100u32 {
                        assert_eq!(cache.get(id), id as f64);
                    }
                });
            }
        });
        // Every one of the 4 threads asks for all 100 ids; each id must
        // have been computed exactly once.
        assert_eq!(cache.ndc(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_pair_get_computes_each_pair_once() {
        let calls = AtomicUsize::new(0);
        let f = |a: u32, b: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            (a * 31 + b) as f64
        };
        let cache = PairCache::new(&f);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for a in 0..20u32 {
                        for b in 0..20u32 {
                            let _ = cache.get(a, b);
                        }
                    }
                });
            }
        });
        // 20×20 symmetric grid → 20 diagonal + 190 off-diagonal pairs.
        assert_eq!(cache.computed(), 210);
        assert_eq!(calls.load(Ordering::Relaxed), 210);
    }
}
