//! Distance abstractions with NDC accounting.
//!
//! The paper's central efficiency metric is **NDC** — the number of distance
//! computations a query performs. Both routers draw every query↔data
//! distance through a [`DistCache`], which memoizes per query (computing
//! `d(Q, G)` twice would be a wasted NP-hard computation no real system
//! performs) and counts unique computations. NDC = cache misses.
//!
//! Both caches are **thread-safe**: the map is lock-striped (keys hash to
//! one of [`STRIPES`] independent `Mutex<HashMap>` shards) and the NDC
//! counter is atomic, so concurrent routing, construction workers, and
//! parallel shard searches can share one cache. A stripe's lock is held
//! *while the distance is computed*, which preserves the sequential
//! guarantee that each key is computed **at most once** — two threads
//! racing on the same id serialize on the stripe and the loser reads the
//! winner's cached value. Distinct keys almost always land on distinct
//! stripes and compute truly concurrently.

use lan_obs::explain::{SolveTier, TierCounts};
use lan_obs::{names, Counter};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of independent lock stripes per cache. More stripes = less
/// contention between concurrent misses on distinct keys; 64 keeps the
/// collision probability low for the ≤ `2m`-sized candidate batches the
/// parallel construction evaluates at once.
const STRIPES: usize = 64;

/// A distance answer from a threshold-gated metric: the exact value, or an
/// admissible lower bound that already proves the object is too far to
/// matter (the GED kernel cascade returns `AtLeast` when a cheap signature
/// bound or an aborted branch-and-bound reaches the caller's threshold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistBound {
    /// The true distance.
    Exact(f64),
    /// The true distance is `>= lb`; the full solver never ran.
    AtLeast(f64),
}

impl DistBound {
    /// The smallest distance consistent with this answer.
    pub fn min_value(&self) -> f64 {
        match *self {
            DistBound::Exact(d) => d,
            DistBound::AtLeast(lb) => lb,
        }
    }

    /// True for [`DistBound::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, DistBound::Exact(_))
    }
}

/// The cascade prune predicate: a lower bound settles a candidate only
/// when it reaches the routing threshold `gamma` AND strictly exceeds the
/// pool gate (the worst distance a full pool kept at its last resize).
/// Strict `> gate` preserves the pool's `(dist, id)` tie-breaking: a
/// candidate tied with the gate could still displace a kept entry, so it
/// must be computed exactly. NaN gates compare false and disable pruning.
#[inline]
fn prunes(lb: f64, gamma: f64, gate: f64) -> bool {
    lb >= gamma && lb > gate
}

/// Distance from the current query to database object `id`.
///
/// `Sync` is a supertrait: oracles are shared across the scoped worker
/// threads of `lan-par`, so any interior state they carry must be
/// thread-safe (use atomics, not `RefCell`, for counters and timers).
pub trait QueryDistance: Sync {
    fn distance(&self, id: u32) -> f64;

    /// Threshold-gated distance: may answer with an admissible lower bound
    /// instead of the exact value, provided the bound reaches `tau`. The
    /// default runs the full metric — closures and wrappers that do not
    /// override this stay bit-identical to ungated execution. Overrides
    /// must guarantee `AtLeast(lb)` implies `lb <= d(id)` and `lb >= tau`,
    /// and that `Exact` answers equal [`Self::distance`] bit for bit.
    fn distance_within(&self, id: u32, tau: f64) -> DistBound {
        let _ = tau;
        DistBound::Exact(self.distance(id))
    }

    /// [`Self::distance_within`] plus the cascade tier that settled the
    /// call, for per-query EXPLAIN attribution. Only consulted when the
    /// wrapping [`DistCache`] carries an explain sink; the returned bound
    /// **must** equal [`Self::distance_within`] bit for bit so explain
    /// collection never perturbs results. The default classifies by
    /// shape — `Exact` means a full metric ran, `AtLeast` means a lower
    /// bound settled it — which is correct for the default
    /// `distance_within` and a sound approximation for custom oracles;
    /// `lan-core`'s `DatasetOracle` overrides it with the kernel
    /// cascade's precise per-call outcome.
    fn distance_within_tiered(&self, id: u32, tau: f64) -> (DistBound, SolveTier) {
        match self.distance_within(id, tau) {
            b @ DistBound::Exact(_) => (b, SolveTier::FullSolve),
            b @ DistBound::AtLeast(_) => (b, SolveTier::LbPrune),
        }
    }
}

impl<F: Fn(u32) -> f64 + Sync> QueryDistance for F {
    fn distance(&self, id: u32) -> f64 {
        self(id)
    }
}

/// Pre-resolved global metric handles for one cache. Resolved once at
/// cache construction (the registry lock is never taken inside the
/// stripe-locked distance section — increments are lock-free atomics).
struct CacheMetrics {
    calls: &'static Counter,
    hit: &'static Counter,
    miss: &'static Counter,
}

/// Memoizing, counting wrapper around a [`QueryDistance`]. One per query.
///
/// Entries may hold a threshold-gated [`DistBound::AtLeast`] bound instead
/// of an exact distance. The counter contract keeps NDC and hit counts
/// bit-identical to an ungated run: a gated miss counts one NDC (the
/// ungated run computed that object exactly once there too); every later
/// touch through [`DistCache::get`]/[`DistCache::get_within`] counts one
/// hit whether the bound survives or must be refined (the ungated run saw
/// a hit there); [`DistCache::peek`]/[`DistCache::peek_within`] refine
/// silently, counting nothing (ungated `peek` counted nothing). What the
/// cascade actually saves is full solver runs — visible in the gap between
/// `ged.calls` (= NDC) and `ged.full_evals`, never in NDC itself.
pub struct DistCache<'a> {
    inner: &'a dyn QueryDistance,
    stripes: Vec<Mutex<HashMap<u32, DistBound>>>,
    ndc: AtomicUsize,
    hits: AtomicUsize,
    metrics: Option<CacheMetrics>,
    /// Per-query EXPLAIN tier sink. When set, every miss — and only a
    /// miss — notes the cascade tier that settled it, so the sink's
    /// attributed total equals `ndc()` by construction (hits and silent
    /// bound refinements note nothing; the reconciliation contract in
    /// `lan_obs::explain`).
    explain: Option<&'a TierCounts>,
}

impl<'a> DistCache<'a> {
    /// Wraps a query-distance oracle; misses and hits feed the global
    /// `ged.calls` / `ged.cache.{hit,miss}` metrics.
    pub fn new(inner: &'a dyn QueryDistance) -> Self {
        Self::build(
            inner,
            Some(CacheMetrics {
                calls: lan_obs::counter(names::GED_CALLS),
                hit: lan_obs::counter(names::GED_CACHE_HIT),
                miss: lan_obs::counter(names::GED_CACHE_MISS),
            }),
        )
    }

    /// Wraps an oracle whose computations are *not* graph distances (e.g.
    /// L2route's embedding-space routing) — local `ndc()`/`hits()` still
    /// count, but the global `ged.*` metrics are untouched, keeping
    /// `ged.calls` equal to the paper's NDC.
    pub fn new_uncounted(inner: &'a dyn QueryDistance) -> Self {
        Self::build(inner, None)
    }

    fn build(inner: &'a dyn QueryDistance, metrics: Option<CacheMetrics>) -> Self {
        DistCache {
            inner,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            ndc: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            metrics,
            explain: None,
        }
    }

    /// Attaches a per-query EXPLAIN tier sink (see the `explain` field).
    /// Attribution is observation-only: results, NDC, and hit counts stay
    /// bit-identical with or without a sink.
    pub fn with_explain(mut self, tiers: &'a TierCounts) -> Self {
        self.explain = Some(tiers);
        self
    }

    /// Notes a routing candidate the quantized prefilter skipped (a
    /// distance computation that never ran) into the explain sink, if one
    /// is attached. The router calls this next to the global
    /// `quant.prefilter.pruned` counter.
    #[inline]
    pub fn note_quant_skip(&self) {
        if let Some(t) = self.explain {
            t.note_quant_skip();
        }
    }

    fn stripe(&self, id: u32) -> &Mutex<HashMap<u32, DistBound>> {
        &self.stripes[id as usize % STRIPES]
    }

    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.hit.inc();
        }
    }

    fn count_miss(&self, tier: SolveTier) {
        self.ndc.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.explain {
            t.note_solve(tier);
        }
        if let Some(m) = &self.metrics {
            m.miss.inc();
            m.calls.inc();
        }
    }

    /// The distance from the query to `id`, counted as a miss at most once —
    /// even under concurrent access (the stripe lock covers the
    /// computation). A cached threshold bound is refined to the exact value
    /// here; the touch still counts as the single hit the ungated run saw.
    pub fn get(&self, id: u32) -> f64 {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.entry(id) {
            Entry::Occupied(mut e) => {
                self.count_hit();
                match *e.get() {
                    DistBound::Exact(d) => d,
                    DistBound::AtLeast(_) => {
                        let d = self.inner.distance(id);
                        e.insert(DistBound::Exact(d));
                        d
                    }
                }
            }
            Entry::Vacant(e) => {
                let d = self.inner.distance(id);
                e.insert(DistBound::Exact(d));
                self.count_miss(SolveTier::FullSolve);
                d
            }
        }
    }

    /// The threshold-gated distance under the routing threshold `gamma` and
    /// pool gate `gate` (see [`crate::pool::Pool::prune_gate`]). A cached or
    /// freshly computed bound is kept only while the prune predicate holds
    /// for the *current* thresholds; otherwise it is refined to the exact
    /// value. Counters follow the [`DistCache::get`] contract exactly.
    pub fn get_within(&self, id: u32, gamma: f64, gate: f64) -> DistBound {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.entry(id) {
            Entry::Occupied(mut e) => {
                self.count_hit();
                match *e.get() {
                    DistBound::Exact(d) => DistBound::Exact(d),
                    DistBound::AtLeast(lb) if prunes(lb, gamma, gate) => DistBound::AtLeast(lb),
                    DistBound::AtLeast(_) => {
                        let d = self.inner.distance(id);
                        e.insert(DistBound::Exact(d));
                        DistBound::Exact(d)
                    }
                }
            }
            Entry::Vacant(e) => {
                // Ask for the per-call tier only when a sink will consume
                // it; both arms produce bit-identical bounds.
                let (b, tier) = match self.explain {
                    Some(_) => self.inner.distance_within_tiered(id, gamma.max(gate)),
                    None => (
                        self.inner.distance_within(id, gamma.max(gate)),
                        SolveTier::FullSolve,
                    ),
                };
                let (b, tier) = match b {
                    // A bound that only *ties* the gate cannot settle the
                    // candidate (the pool breaks distance ties by id);
                    // refine it on the spot. The miss's final state is a
                    // full solve, so that's its attribution.
                    DistBound::AtLeast(lb) if !prunes(lb, gamma, gate) => (
                        DistBound::Exact(self.inner.distance(id)),
                        SolveTier::FullSolve,
                    ),
                    b => (b, tier),
                };
                e.insert(b);
                self.count_miss(tier);
                b
            }
        }
    }

    /// The cached distance, if this object was ever computed. A cached
    /// threshold bound is silently refined to the exact value — no hit or
    /// miss is counted, matching the ungated `peek` (which counted nothing
    /// and would have found the exact value already cached).
    pub fn peek(&self, id: u32) -> Option<f64> {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.get_mut(&id) {
            None => None,
            Some(DistBound::Exact(d)) => Some(*d),
            Some(slot) => {
                let d = self.inner.distance(id);
                *slot = DistBound::Exact(d);
                Some(d)
            }
        }
    }

    /// The cached answer under the current thresholds, if this object was
    /// ever computed: exact values and still-valid bounds come back as-is;
    /// a bound the thresholds no longer justify is silently refined.
    /// Counts nothing, like [`DistCache::peek`].
    pub fn peek_within(&self, id: u32, gamma: f64, gate: f64) -> Option<DistBound> {
        let mut map = self.stripe(id).lock().expect("stripe poisoned");
        match map.get_mut(&id) {
            None => None,
            Some(DistBound::Exact(d)) => Some(DistBound::Exact(*d)),
            Some(slot) => {
                let DistBound::AtLeast(lb) = *slot else {
                    unreachable!("non-exact slot is AtLeast")
                };
                if prunes(lb, gamma, gate) {
                    Some(DistBound::AtLeast(lb))
                } else {
                    let d = self.inner.distance(id);
                    *slot = DistBound::Exact(d);
                    Some(DistBound::Exact(d))
                }
            }
        }
    }

    /// The raw cached entry — exact or bound — without refining, computing,
    /// or counting anything.
    pub fn peek_bound(&self, id: u32) -> Option<DistBound> {
        self.stripe(id)
            .lock()
            .expect("stripe poisoned")
            .get(&id)
            .copied()
    }

    /// Number of unique distance computations so far (the paper's NDC).
    pub fn ndc(&self) -> usize {
        self.ndc.load(Ordering::Relaxed)
    }

    /// Number of cache hits so far (lookups served without computing).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Symmetric pairwise distance between database objects (used at index
/// construction time). `Sync` for the same reason as [`QueryDistance`].
pub trait PairDistance: Sync {
    fn distance(&self, a: u32, b: u32) -> f64;
}

impl<F: Fn(u32, u32) -> f64 + Sync> PairDistance for F {
    fn distance(&self, a: u32, b: u32) -> f64 {
        self(a, b)
    }
}

/// Packs a symmetric `(u32, u32)` pair into one `u64` key (`min` in the
/// high half) — one word to hash instead of a two-field tuple. Total over
/// the full u32 range: both halves are widened before shifting, so the
/// key is injective up to pair symmetry even at `u32::MAX`.
fn pack_pair(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let key = ((lo as u64) << 32) | hi as u64;
    debug_assert_eq!(unpack_pair(key), (lo, hi), "pack/unpack round-trip");
    key
}

/// Recovers the ordered `(min, max)` endpoints of a [`pack_pair`] key.
#[inline]
fn unpack_pair(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Memoizing wrapper for construction-time pair distances (symmetric keys).
pub struct PairCache<'a> {
    inner: &'a dyn PairDistance,
    stripes: Vec<Mutex<HashMap<u64, f64>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
    metrics: Option<CacheMetrics>,
}

impl<'a> PairCache<'a> {
    /// Wraps a pair-distance oracle; misses and hits feed the global
    /// `pair.calls` / `pair.cache.{hit,miss}` metrics.
    pub fn new(inner: &'a dyn PairDistance) -> Self {
        Self::build(
            inner,
            Some(CacheMetrics {
                calls: lan_obs::counter(names::PAIR_CALLS),
                hit: lan_obs::counter(names::PAIR_CACHE_HIT),
                miss: lan_obs::counter(names::PAIR_CACHE_MISS),
            }),
        )
    }

    /// Wraps an oracle whose computations are not graph distances (e.g.
    /// embedding-space L2) — the global `pair.*` metrics are untouched.
    pub fn new_uncounted(inner: &'a dyn PairDistance) -> Self {
        Self::build(inner, None)
    }

    fn build(inner: &'a dyn PairDistance, metrics: Option<CacheMetrics>) -> Self {
        PairCache {
            inner,
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            computed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            metrics,
        }
    }

    /// `d(a, b) = d(b, a)`, computed at most once per unordered pair — even
    /// under concurrent access (the stripe lock covers the computation).
    pub fn get(&self, a: u32, b: u32) -> f64 {
        let key = pack_pair(a, b);
        // Mix both halves so stripes don't degenerate when one endpoint is
        // fixed (the inner loops of construction probe (v, *) fans).
        let stripe = ((key ^ (key >> 32)) as usize) % STRIPES;
        let mut map = self.stripes[stripe].lock().expect("stripe poisoned");
        match map.entry(key) {
            Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.hit.inc();
                }
                *e.get()
            }
            Entry::Vacant(e) => {
                let (lo, hi) = unpack_pair(key);
                let d = self.inner.distance(lo, hi);
                e.insert(d);
                self.computed.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.miss.inc();
                    m.calls.inc();
                }
                d
            }
        }
    }

    pub fn computed(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of cache hits so far (lookups served without computing).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let calls = AtomicUsize::new(0);
        let f = |id: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            id as f64 * 2.0
        };
        let cache = DistCache::new(&f);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(3), 6.0);
        assert_eq!(cache.get(4), 8.0);
        assert_eq!(cache.ndc(), 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.peek(3), Some(6.0));
        assert_eq!(cache.peek(9), None);
    }

    /// A gated oracle with per-object exact distances and admissible lower
    /// bounds, counting how often each path runs.
    struct GatedOracle {
        d: Vec<f64>,
        lb: Vec<f64>,
        full: AtomicUsize,
        gated: AtomicUsize,
    }

    impl GatedOracle {
        fn new(d: Vec<f64>, lb: Vec<f64>) -> Self {
            assert!(
                d.iter().zip(&lb).all(|(d, lb)| lb <= d),
                "bounds admissible"
            );
            GatedOracle {
                d,
                lb,
                full: AtomicUsize::new(0),
                gated: AtomicUsize::new(0),
            }
        }
    }

    impl QueryDistance for GatedOracle {
        fn distance(&self, id: u32) -> f64 {
            self.full.fetch_add(1, Ordering::Relaxed);
            self.d[id as usize]
        }

        fn distance_within(&self, id: u32, tau: f64) -> DistBound {
            let lb = self.lb[id as usize];
            if tau.is_finite() && lb >= tau {
                self.gated.fetch_add(1, Ordering::Relaxed);
                DistBound::AtLeast(lb)
            } else {
                DistBound::Exact(self.distance(id))
            }
        }
    }

    #[test]
    fn get_within_prunes_and_counts_like_get() {
        let o = GatedOracle::new(vec![9.0, 2.0], vec![7.0, 1.0]);
        let cache = DistCache::new(&o);
        // Object 0: lb 7 reaches gamma 5 and beats gate 6 -> bound kept,
        // still one NDC (the ungated run computed it here too).
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        assert_eq!(cache.ndc(), 1);
        assert_eq!(o.full.load(Ordering::Relaxed), 0, "no full eval ran");
        // Object 1: lb 1 misses gamma -> exact, one more NDC.
        assert_eq!(cache.get_within(1, 5.0, 6.0), DistBound::Exact(2.0));
        assert_eq!(cache.ndc(), 2);
        // Re-touch under the same thresholds: hit, bound survives.
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        assert_eq!(cache.hits(), 1);
        // Re-touch under a stricter gate: hit plus an on-the-spot refine —
        // a full eval but no new NDC.
        assert_eq!(cache.get_within(0, 5.0, 8.0), DistBound::Exact(9.0));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.ndc(), 2);
        assert_eq!(o.full.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn get_refines_cached_bound_with_one_hit() {
        let o = GatedOracle::new(vec![9.0], vec![7.0]);
        let cache = DistCache::new(&o);
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        assert_eq!(cache.get(0), 9.0);
        assert_eq!((cache.ndc(), cache.hits()), (1, 1));
        // The refined value is cached exactly from then on.
        assert_eq!(cache.peek_bound(0), Some(DistBound::Exact(9.0)));
        assert_eq!(cache.get(0), 9.0);
        assert_eq!(o.full.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn peek_refines_silently() {
        let o = GatedOracle::new(vec![9.0], vec![7.0]);
        let cache = DistCache::new(&o);
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        let (ndc, hits) = (cache.ndc(), cache.hits());
        assert_eq!(cache.peek_bound(0), Some(DistBound::AtLeast(7.0)));
        assert_eq!(
            cache.peek(0),
            Some(9.0),
            "peek must surface the exact value"
        );
        assert_eq!(
            (cache.ndc(), cache.hits()),
            (ndc, hits),
            "peek counts nothing"
        );
        assert_eq!(cache.peek(1), None);
        assert_eq!(cache.peek_bound(1), None);
    }

    #[test]
    fn peek_within_keeps_valid_bounds_and_refines_stale_ones() {
        let o = GatedOracle::new(vec![9.0, 9.0], vec![7.0, 7.0]);
        let cache = DistCache::new(&o);
        cache.get_within(0, 5.0, 6.0);
        cache.get_within(1, 5.0, 6.0);
        let (ndc, hits) = (cache.ndc(), cache.hits());
        assert_eq!(
            cache.peek_within(0, 5.0, 6.0),
            Some(DistBound::AtLeast(7.0))
        );
        assert_eq!(cache.peek_within(1, 8.0, 6.0), Some(DistBound::Exact(9.0)));
        assert_eq!((cache.ndc(), cache.hits()), (ndc, hits));
        assert_eq!(cache.peek_within(2, 5.0, 6.0), None);
    }

    #[test]
    fn bound_tying_the_gate_is_refined_immediately() {
        // lb == gate cannot settle a candidate (pool ties break by id), so
        // the vacant path must refine before caching.
        let o = GatedOracle::new(vec![7.5], vec![7.0]);
        let cache = DistCache::new(&o);
        assert_eq!(cache.get_within(0, 5.0, 7.0), DistBound::Exact(7.5));
        assert_eq!(cache.ndc(), 1);
    }

    #[test]
    fn explain_sink_attributes_each_miss_exactly_once() {
        let o = GatedOracle::new(vec![9.0, 2.0, 5.0], vec![7.0, 1.0, 4.0]);
        let tiers = TierCounts::default();
        let cache = DistCache::new(&o).with_explain(&tiers);
        // Miss settled by a bound -> LbPrune (the default tiered
        // classifier maps AtLeast answers there).
        assert_eq!(cache.get_within(0, 5.0, 6.0), DistBound::AtLeast(7.0));
        // Miss solved fully.
        assert_eq!(cache.get_within(1, 5.0, 6.0), DistBound::Exact(2.0));
        // Plain get miss -> FullSolve.
        assert_eq!(cache.get(2), 5.0);
        // Hit + stale-bound refine notes nothing (first-touch
        // attribution keeps the sum equal to NDC).
        assert_eq!(cache.get_within(0, 5.0, 8.0), DistBound::Exact(9.0));
        // Silent peek refines note nothing either.
        assert_eq!(cache.peek(0), Some(9.0));
        cache.note_quant_skip();
        let b = tiers.snapshot();
        assert_eq!(b.lb_prunes, 1);
        assert_eq!(b.full_solves, 2);
        assert_eq!(b.tau_aborts, 0);
        assert_eq!(b.quant_skips, 1);
        assert_eq!(b.attributed(), cache.ndc() as u64);
    }

    #[test]
    fn gate_tying_refine_attributes_as_full_solve() {
        let o = GatedOracle::new(vec![7.5], vec![7.0]);
        let tiers = TierCounts::default();
        let cache = DistCache::new(&o).with_explain(&tiers);
        // lb ties the gate -> refined on the spot; the miss's final state
        // is a full solve.
        assert_eq!(cache.get_within(0, 5.0, 7.0), DistBound::Exact(7.5));
        let b = tiers.snapshot();
        assert_eq!((b.lb_prunes, b.full_solves), (0, 1));
        assert_eq!(b.attributed(), cache.ndc() as u64);
    }

    #[test]
    fn explain_sink_never_perturbs_results_or_counts() {
        let o1 = GatedOracle::new(vec![9.0, 2.0, 7.5], vec![7.0, 1.0, 7.0]);
        let o2 = GatedOracle::new(vec![9.0, 2.0, 7.5], vec![7.0, 1.0, 7.0]);
        let tiers = TierCounts::default();
        let plain = DistCache::new(&o1);
        let explained = DistCache::new(&o2).with_explain(&tiers);
        for (gamma, gate) in [(5.0, 6.0), (5.0, 7.0), (8.0, 6.0)] {
            for id in 0..3u32 {
                assert_eq!(
                    plain.get_within(id, gamma, gate),
                    explained.get_within(id, gamma, gate)
                );
            }
        }
        assert_eq!(plain.ndc(), explained.ndc());
        assert_eq!(plain.hits(), explained.hits());
        assert_eq!(tiers.snapshot().attributed(), explained.ndc() as u64);
    }

    #[test]
    fn closures_never_produce_bounds() {
        // The default distance_within keeps plain closures on the exact
        // path no matter the thresholds.
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        assert_eq!(cache.get_within(3, 0.0, 1.0), DistBound::Exact(3.0));
        assert_eq!(cache.peek_bound(3), Some(DistBound::Exact(3.0)));
    }

    #[test]
    fn repeated_workload_has_positive_hit_rate() {
        // A routing workload revisits nodes constantly (every hop re-ranks
        // neighbors some of which were already scored); model that with a
        // lookup sequence containing repeats and assert the hit counters
        // and the global ged.* metrics both see the hits.
        let before = lan_obs::snapshot();
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        let workload = [3u32, 7, 3, 9, 7, 3, 11, 9, 3];
        for id in workload {
            cache.get(id);
        }
        assert_eq!(cache.ndc(), 4); // {3, 7, 9, 11}
        assert_eq!(cache.hits(), 5);
        let hit_rate = cache.hits() as f64 / workload.len() as f64;
        assert!(hit_rate > 0.0);
        if lan_obs::enabled() {
            let d = lan_obs::snapshot().diff(&before);
            assert!(d.counter(names::GED_CACHE_HIT) >= 5);
            assert!(d.counter(names::GED_CALLS) >= 4);
        }

        // The uncounted constructor must leave the global metrics alone.
        let before = lan_obs::snapshot();
        let quiet = DistCache::new_uncounted(&f);
        quiet.get(1);
        quiet.get(1);
        assert_eq!(quiet.ndc(), 1);
        assert_eq!(quiet.hits(), 1);
        let d = lan_obs::snapshot().diff(&before);
        assert_eq!(d.counter(names::GED_CALLS), 0);
        assert_eq!(d.counter(names::GED_CACHE_HIT), 0);
    }

    #[test]
    fn pair_cache_counts_hits() {
        let f = |a: u32, b: u32| (a + b) as f64;
        let cache = PairCache::new(&f);
        cache.get(1, 2);
        cache.get(2, 1);
        cache.get(1, 2);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn pair_cache_symmetric() {
        let calls = AtomicUsize::new(0);
        let f = |a: u32, b: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            (a + b) as f64
        };
        let cache = PairCache::new(&f);
        assert_eq!(cache.get(1, 2), 3.0);
        assert_eq!(cache.get(2, 1), 3.0);
        assert_eq!(cache.computed(), 1);
    }

    #[test]
    fn pack_pair_is_symmetric_and_injective() {
        assert_eq!(pack_pair(1, 2), pack_pair(2, 1));
        assert_ne!(pack_pair(1, 2), pack_pair(1, 3));
        assert_ne!(pack_pair(0, 1), pack_pair(1, 1));
        assert_eq!(pack_pair(u32::MAX, 0), pack_pair(0, u32::MAX));
    }

    #[test]
    fn pack_pair_survives_the_u32_edge() {
        // Boundary ids around u32::MAX: packing must stay injective (up to
        // symmetry) and unpacking must round-trip — a widening bug here
        // would silently alias distinct pairs at >4B-object scale.
        let edge = [0u32, 1, u32::MAX - 1, u32::MAX];
        for &a in &edge {
            for &b in &edge {
                let key = pack_pair(a, b);
                let (lo, hi) = unpack_pair(key);
                assert_eq!((lo, hi), (a.min(b), a.max(b)), "round-trip {a},{b}");
                for &c in &edge {
                    for &d in &edge {
                        let same = (a.min(b), a.max(b)) == (c.min(d), c.max(d));
                        assert_eq!(
                            key == pack_pair(c, d),
                            same,
                            "aliasing ({a},{b}) vs ({c},{d})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pair_cache_distinguishes_edge_ids() {
        // (MAX, MAX-1) and (MAX, MAX) must occupy distinct cache slots and
        // unpack to the original endpoints when the miss computes.
        let f = |a: u32, b: u32| a as f64 + b as f64;
        let cache = PairCache::new(&f);
        let m = u32::MAX;
        assert_eq!(cache.get(m, m - 1), m as f64 + (m - 1) as f64);
        assert_eq!(cache.get(m, m), m as f64 * 2.0);
        assert_eq!(cache.get(m - 1, m), m as f64 + (m - 1) as f64);
        assert_eq!(cache.computed(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn concurrent_get_computes_each_id_once() {
        let calls = AtomicUsize::new(0);
        let f = |id: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            id as f64
        };
        let cache = DistCache::new(&f);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for id in 0..100u32 {
                        assert_eq!(cache.get(id), id as f64);
                    }
                });
            }
        });
        // Every one of the 4 threads asks for all 100 ids; each id must
        // have been computed exactly once.
        assert_eq!(cache.ndc(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_pair_get_computes_each_pair_once() {
        let calls = AtomicUsize::new(0);
        let f = |a: u32, b: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            (a * 31 + b) as f64
        };
        let cache = PairCache::new(&f);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for a in 0..20u32 {
                        for b in 0..20u32 {
                            let _ = cache.get(a, b);
                        }
                    }
                });
            }
        });
        // 20×20 symmetric grid → 20 diagonal + 190 off-diagonal pairs.
        assert_eq!(cache.computed(), 210);
        assert_eq!(calls.load(Ordering::Relaxed), 210);
    }
}
