//! Routing with neighbor pruning — paper Algorithms 2–4 (`np_route`,
//! `all_quali_neigh`, `rank_expl`).
//!
//! A [`NeighborRanker`] partitions each node's neighbors into ordered
//! batches, best-first; batches are opened lazily under a distance threshold
//! γ. Stage 1 routes greedily (threshold = the current node's own distance)
//! until the first local optimum; stage 2 backtracks with an escalating
//! threshold `γ = d(G_flo) + i·d_s`, re-scanning explored nodes for
//! newly-qualified neighbors (`all_quali_neigh`) before each round.
//!
//! With the [`OracleRanker`] this provably returns exactly the baseline's
//! results with no more distance computations (Lemma 1 / Theorem 1) — the
//! property tests in this module and `tests/` check both.

use crate::budget::{budgeted_get, budgeted_get_within, BudgetCtx, Termination};
use crate::metric::{DistBound, DistCache, QueryDistance};
use crate::pool::{Pool, RouterState};
use crate::prefilter::CandidatePrefilter;
use crate::routing::{finish_route, RouteResult};
use lan_obs::{names, trace, Counter};
use std::collections::HashMap;

/// Ranks and partitions a node's neighbors into batches, best (predicted
/// closest to the query) first.
///
/// `d_node` is the known distance from the query to `node` — the learned
/// ranker uses it to fall back to a single all-neighbors batch outside the
/// query's neighborhood (paper §IV-C).
pub trait NeighborRanker {
    fn rank(&self, node: u32, neighbors: &[u32], d_node: f64) -> Vec<Vec<u32>>;
}

/// Splits `ranked` into batches of `y`% each (at least one element per
/// batch), preserving order.
pub fn chunk_batches(ranked: Vec<u32>, batch_pct: usize) -> Vec<Vec<u32>> {
    if ranked.is_empty() {
        return Vec::new();
    }
    let n = ranked.len();
    let size = ((n * batch_pct) / 100).max(1);
    ranked.chunks(size).map(|c| c.to_vec()).collect()
}

/// The idealized oracle of §IV-A: ranks neighbors by their **true**
/// distances to the query, in negligible time (its distance access is not
/// counted as NDC — that is the assumption Theorem 1 is stated under).
pub struct OracleRanker<'a> {
    truth: &'a dyn QueryDistance,
    /// Batch size parameter `y` (percent); the paper uses 20.
    pub batch_pct: usize,
}

impl<'a> OracleRanker<'a> {
    pub fn new(truth: &'a dyn QueryDistance, batch_pct: usize) -> Self {
        assert!((1..=100).contains(&batch_pct));
        OracleRanker { truth, batch_pct }
    }
}

impl NeighborRanker for OracleRanker<'_> {
    fn rank(&self, _node: u32, neighbors: &[u32], _d_node: f64) -> Vec<Vec<u32>> {
        let mut ranked: Vec<u32> = neighbors.to_vec();
        ranked.sort_by(|&a, &b| {
            self.truth
                .distance(a)
                .total_cmp(&self.truth.distance(b))
                .then(a.cmp(&b))
        });
        chunk_batches(ranked, self.batch_pct)
    }
}

/// A ranker that puts all neighbors in one batch — np_route degenerates to
/// the baseline's exhaustive exploration (useful for ablations).
pub struct NoPruneRanker;

impl NeighborRanker for NoPruneRanker {
    fn rank(&self, _node: u32, neighbors: &[u32], _d_node: f64) -> Vec<Vec<u32>> {
        if neighbors.is_empty() {
            Vec::new()
        } else {
            vec![neighbors.to_vec()]
        }
    }
}

/// Per-node lazily ranked batches with the opened prefix.
struct BatchState {
    batches: Vec<Vec<u32>>,
    opened: usize,
}

/// Ranks `g`'s neighbors on first touch. A free function over the router's
/// disjoint fields so callers can keep borrowing their scratch buffers.
fn ensure_batches<'b, R: NeighborRanker>(
    batches: &'b mut HashMap<u32, BatchState>,
    ranker: &R,
    adj: &[Vec<u32>],
    cache: &DistCache<'_>,
    g: u32,
) -> &'b mut BatchState {
    batches.entry(g).or_insert_with(|| {
        // `g` is always pooled here, so its distance is already cached —
        // this lookup is a hit and never charges the budget.
        let d_node = cache.get(g);
        BatchState {
            batches: ranker.rank(g, &adj[g as usize], d_node),
            opened: 0,
        }
    })
}

struct NpRouter<'a, R: NeighborRanker> {
    adj: &'a [Vec<u32>],
    cache: &'a DistCache<'a>,
    ranker: &'a R,
    ctx: &'a BudgetCtx,
    /// Set when the budget stopped the query; the routing loops unwind
    /// and the best-so-far pool is returned with this tag.
    stopped: Option<Termination>,
    batches: HashMap<u32, BatchState>,
    /// Reusable copy of the batch being opened: batch members are copied
    /// here instead of cloning a fresh `Vec` per opened batch.
    batch_scratch: Vec<u32>,
    /// Flattened opened-batch members for the stage-2 re-scan, with
    /// per-batch lengths in `rescan_lens` — replaces the per-call
    /// `batches[..opened].to_vec()` clone of nested vectors.
    rescan_scratch: Vec<u32>,
    rescan_lens: Vec<usize>,
    w: Pool,
    state: RouterState,
    /// Pool gate for the threshold-gated metric cascade (see
    /// [`Pool::prune_gate`]): refreshed after every resize; a candidate
    /// whose lower bound reaches γ *and* strictly exceeds this gate is
    /// provably dropped by the next resize, so it is never pooled and its
    /// full distance is never solved. `+inf` (no pruning) until the pool
    /// first fills.
    gate: f64,
    /// Whether the gate may ever move off `+inf`. The truncation argument
    /// only holds for `k <= b`: an early (budget) exit harvests the top-k
    /// of the un-resized pool, so with `k > b` a candidate beyond the `b`
    /// kept entries could still surface there and gating must stay off.
    gating: bool,
    /// Optional non-admissible candidate prefilter (the quantized tier) —
    /// consulted before a distance computation once the pool gate is
    /// finite; see [`crate::prefilter`] for the recall-safety argument.
    prefilter: Option<&'a dyn CandidatePrefilter>,
    // Pre-resolved metric handles — increments on the routing hot loop are
    // single relaxed atomics, never registry lookups.
    m_hops: &'static Counter,
    m_opened: &'static Counter,
    m_prunes: &'static Counter,
    /// Query id when this query is being traced (`LAN_TRACE=route`).
    trace_q: Option<u64>,
    /// Hop index within this query (exploration order).
    hop: u32,
}

impl<'a, R: NeighborRanker> NpRouter<'a, R> {
    /// Records the exploration of node `g` — one routing hop — to the
    /// global metrics and, when traced, the per-query hop trace.
    fn note_hop(&mut self, stage: u8, g: u32, d: f64, gamma: f64) {
        self.m_hops.inc();
        let q = match self.trace_q {
            Some(q) => q,
            None => return,
        };
        let (total, opened) = self
            .batches
            .get(&g)
            .map(|st| (st.batches.len() as u32, st.opened as u32))
            .unwrap_or((0, 0));
        trace::emit_hop(&trace::HopEvent {
            q,
            hop: self.hop,
            stage,
            node: g,
            dist: d,
            gamma,
            neighbors: self.adj[g as usize].len() as u32,
            batches_total: total,
            batches_opened: opened,
            ndc: self.cache.ndc() as u64,
            cache_hits: self.cache.hits() as u64,
        });
        self.hop += 1;
    }

    /// Records a γ-threshold stop that left batches of `g` unopened.
    fn note_prune(&mut self, g: u32) {
        if let Some(st) = self.batches.get(&g) {
            if st.opened < st.batches.len() {
                self.m_prunes.inc();
            }
        }
    }
    /// Budget-aware distance; `None` means the budget stopped the query
    /// (the cause is recorded in `self.stopped` and the loops unwind).
    fn try_get(&mut self, id: u32) -> Option<f64> {
        match budgeted_get(self.cache, self.ctx, id) {
            Ok(d) => Some(d),
            Err(t) => {
                self.stopped = Some(t);
                None
            }
        }
    }

    /// Budget-aware threshold-gated distance under the current γ and pool
    /// gate; `None` means the budget stopped the query.
    fn try_get_within(&mut self, id: u32, gamma: f64) -> Option<DistBound> {
        match budgeted_get_within(self.cache, self.ctx, id, gamma, self.gate) {
            Ok(b) => Some(b),
            Err(t) => {
                self.stopped = Some(t);
                None
            }
        }
    }

    /// Whether the prefilter tier says to skip computing `nb`'s distance
    /// this round. Only fires when the skip is provably recoverable:
    /// `tau = max(γ, gate)` must be finite (the pool is full, so the query
    /// already has a complete candidate answer to fall back on) and the
    /// candidate uncached (a cached answer is free and exact). Counted and
    /// bounded by the prefilter implementation itself.
    fn prefilter_skips(&self, nb: u32, gamma: f64) -> bool {
        let Some(pf) = self.prefilter else {
            return false;
        };
        let tau = gamma.max(self.gate);
        if !tau.is_finite() || self.cache.peek_bound(nb).is_some() {
            return false;
        }
        let skip = pf.predict_beyond(nb, tau);
        if skip {
            // Mirror the global `quant.prefilter.pruned` counter into the
            // query's EXPLAIN tier sink (skip *events*, like the global
            // counter — escalated-γ rounds may re-skip a candidate).
            self.cache.note_quant_skip();
        }
        skip
    }

    /// Resizes the pool and refreshes the cascade gate — every resize must
    /// go through here so the gate never lags the kept set.
    fn resize_pool(&mut self, b: usize) {
        self.w.resize(b, &self.state);
        if self.gating {
            self.gate = self.w.prune_gate(b);
        }
    }

    /// Checks the per-router hop cap before exploring another node.
    fn hop_capped(&mut self) -> bool {
        if self.state.order.len() >= self.ctx.max_hops() {
            self.ctx.note_local(Termination::Degraded);
            self.stopped = Some(Termination::Degraded);
            true
        } else {
            false
        }
    }

    /// Copies the next unopened batch of `g` into `self.batch_scratch` and
    /// advances the opened cursor. `false` means every batch is open.
    fn take_next_batch(&mut self, g: u32) -> bool {
        let st = ensure_batches(&mut self.batches, self.ranker, self.adj, self.cache, g);
        if st.opened >= st.batches.len() {
            return false;
        }
        self.batch_scratch.clear();
        self.batch_scratch.extend_from_slice(&st.batches[st.opened]);
        st.opened += 1;
        true
    }

    /// Algorithm 4: open further batches of `g` under threshold `gamma`.
    fn rank_expl(&mut self, g: u32, gamma: f64) {
        // Farthest already-known neighbor among opened batches (line 3-6).
        {
            let st = ensure_batches(&mut self.batches, self.ranker, self.adj, self.cache, g);
            let opened = st.opened;
            let members: &[Vec<u32>] = &st.batches[..opened];
            // A cached lower bound that reaches γ already certifies the
            // farthest opened neighbor is >= γ — same stop decision as the
            // ungated run, with no refinement. Bounds below γ say nothing
            // about the true maximum and are refined through `peek` (which
            // the ungated run would have answered from cache, silently).
            let mut certified = false;
            let mut farthest = f64::NEG_INFINITY;
            'scan: for &nb in members.iter().flatten() {
                match self.cache.peek_bound(nb) {
                    Some(DistBound::Exact(d)) => farthest = farthest.max(d),
                    Some(DistBound::AtLeast(lb)) if lb >= gamma => {
                        certified = true;
                        break 'scan;
                    }
                    Some(DistBound::AtLeast(_)) => {
                        if let Some(d) = self.cache.peek(nb) {
                            farthest = farthest.max(d);
                        }
                    }
                    // Opened neighbors have cached answers unless the
                    // prefilter skipped them — an uncached member simply
                    // contributes nothing to the farthest estimate
                    // (conservative: scanning continues).
                    None => {}
                }
            }
            if opened > 0 && (certified || farthest >= gamma) {
                self.note_prune(g);
                return;
            }
        }
        while self.take_next_batch(g) {
            self.m_opened.inc();
            let mut hit = false;
            for i in 0..self.batch_scratch.len() {
                let nb = self.batch_scratch[i];
                // Quantized tier: a predicted-beyond candidate is treated
                // like a certified threshold hit, with no computation and
                // no cache entry (later rounds re-ask at a larger τ).
                if self.prefilter_skips(nb, gamma) {
                    hit = true;
                    continue;
                }
                let Some(b) = self.try_get_within(nb, gamma) else {
                    return;
                };
                match b {
                    DistBound::Exact(d) => {
                        self.w.add(nb, d);
                        if d >= gamma {
                            hit = true;
                        }
                    }
                    // lb >= γ implies d >= γ: the threshold is hit without
                    // pooling the candidate (the gate proves the next
                    // resize would truncate it anyway).
                    DistBound::AtLeast(_) => hit = true,
                }
            }
            if hit {
                self.note_prune(g);
                return;
            }
        }
    }

    /// Algorithm 3: pool every qualified neighbor of the explored node `g`
    /// w.r.t. threshold `gamma` (opened batches contribute their unexplored
    /// members; further batches are opened until one crosses the threshold).
    fn all_quali_neigh(&mut self, g: u32, gamma: f64) {
        // Re-scan opened batches (lines 3-10), flattened into the reusable
        // scratch (members + per-batch lengths) instead of a nested clone.
        {
            let NpRouter {
                batches,
                ranker,
                adj,
                cache,
                rescan_scratch,
                rescan_lens,
                ..
            } = self;
            let st = ensure_batches(batches, *ranker, adj, cache, g);
            rescan_scratch.clear();
            rescan_lens.clear();
            for b in &st.batches[..st.opened] {
                rescan_scratch.extend_from_slice(b);
                rescan_lens.push(b.len());
            }
        }
        let mut start = 0usize;
        for bi in 0..self.rescan_lens.len() {
            let len = self.rescan_lens[bi];
            let mut hit = false;
            for i in start..start + len {
                let nb = self.rescan_scratch[i];
                if !self.state.is_explored(nb) {
                    // Members the quantized tier skipped earlier are not
                    // cached — re-ask it under the escalated γ first.
                    if self.prefilter_skips(nb, gamma) {
                        hit = true;
                        continue;
                    }
                    let b = if self.cache.peek_bound(nb).is_none() {
                        // A previously-skipped member being evaluated for
                        // the first time: charged to the budget like any
                        // other miss.
                        let Some(b) = self.try_get_within(nb, gamma) else {
                            return;
                        };
                        b
                    } else {
                        // Cached (the batch was opened): the gated lookup
                        // keeps a still-valid bound (counting the hit the
                        // ungated run saw) or refines it to the exact
                        // distance.
                        self.cache.get_within(nb, gamma, self.gate)
                    };
                    match b {
                        DistBound::Exact(d) => {
                            self.w.add(nb, d);
                            if d >= gamma {
                                hit = true;
                            }
                        }
                        DistBound::AtLeast(_) => hit = true,
                    }
                }
            }
            if hit {
                self.note_prune(g);
                return;
            }
            start += len;
        }
        // Open remaining batches (lines 11-18).
        while self.take_next_batch(g) {
            self.m_opened.inc();
            let mut hit = false;
            for i in 0..self.batch_scratch.len() {
                let nb = self.batch_scratch[i];
                if self.prefilter_skips(nb, gamma) {
                    hit = true;
                    continue;
                }
                let Some(b) = self.try_get_within(nb, gamma) else {
                    return;
                };
                match b {
                    DistBound::Exact(d) => {
                        self.w.add(nb, d);
                        if d >= gamma {
                            hit = true;
                        }
                    }
                    DistBound::AtLeast(_) => hit = true,
                }
            }
            if hit {
                self.note_prune(g);
                return;
            }
        }
    }
}

/// Algorithm 2: routing with neighbor pruning.
///
/// * `adj` — base-layer proximity-graph adjacency;
/// * `cache` — the query's counting distance cache;
/// * `ranker` — oracle or learned neighbor ranker;
/// * `entries` — initial node(s);
/// * `b` — beam (pool) size; `k` — answer count; `ds` — the γ step size
///   (must be positive; the paper uses the distance granularity, 1 for
///   unit-cost GED).
pub fn np_route<R: NeighborRanker>(
    adj: &[Vec<u32>],
    cache: &DistCache<'_>,
    ranker: &R,
    entries: &[u32],
    b: usize,
    k: usize,
    ds: f64,
) -> RouteResult {
    np_route_budgeted(
        adj,
        cache,
        ranker,
        entries,
        b,
        k,
        ds,
        &BudgetCtx::unlimited(),
    )
}

/// Algorithm 2 under a query budget: identical to [`np_route`] while the
/// budget holds (bit-identical with an unlimited one). On exhaustion —
/// NDC cap, deadline, hop cap, or a sibling shard's cancellation — the
/// routing unwinds and returns the best-so-far pool tagged with the bound
/// that fired. Never panics, never errors.
#[allow(clippy::too_many_arguments)]
pub fn np_route_budgeted<R: NeighborRanker>(
    adj: &[Vec<u32>],
    cache: &DistCache<'_>,
    ranker: &R,
    entries: &[u32],
    b: usize,
    k: usize,
    ds: f64,
    ctx: &BudgetCtx,
) -> RouteResult {
    np_route_prefiltered(adj, cache, ranker, entries, b, k, ds, ctx, None)
}

/// [`np_route_budgeted`] with an optional quantized-tier candidate
/// prefilter. `None` is bit-identical to the unprefiltered router; with a
/// prefilter, candidates it predicts beyond `max(γ, pool gate)` are
/// skipped without a distance computation (see [`crate::prefilter`] for
/// the recall-safety argument and property tests).
#[allow(clippy::too_many_arguments)]
pub fn np_route_prefiltered<R: NeighborRanker>(
    adj: &[Vec<u32>],
    cache: &DistCache<'_>,
    ranker: &R,
    entries: &[u32],
    b: usize,
    k: usize,
    ds: f64,
    ctx: &BudgetCtx,
    prefilter: Option<&dyn CandidatePrefilter>,
) -> RouteResult {
    assert!(b >= 1, "beam size must be at least 1");
    assert!(ds > 0.0, "gamma step must be positive");
    let mut r = NpRouter {
        adj,
        cache,
        ranker,
        ctx,
        stopped: None,
        batches: HashMap::new(),
        batch_scratch: Vec::new(),
        rescan_scratch: Vec::new(),
        rescan_lens: Vec::new(),
        w: Pool::new(),
        state: RouterState::new(),
        gate: f64::INFINITY,
        gating: k <= b,
        prefilter,
        m_hops: lan_obs::counter(names::ROUTE_HOPS),
        m_opened: lan_obs::counter(names::ROUTE_BATCHES_OPENED),
        m_prunes: lan_obs::counter(names::ROUTE_GAMMA_PRUNES),
        trace_q: trace::active_query(),
        hop: 0,
    };
    for &e in entries {
        let Some(d) = r.try_get(e) else { break };
        r.w.add(e, d);
    }

    // --- Stage 1: greedy descent to the first local optimum (lines 5-11).
    while r.stopped.is_none() {
        let Some(g) = r.w.min_entry() else { break };
        if r.state.is_explored(g.id) || r.hop_capped() {
            break;
        }
        r.rank_expl(g.id, g.dist);
        r.state.mark_explored(g.id);
        r.note_hop(1, g.id, g.dist, g.dist);
        r.resize_pool(b);
    }

    // --- Stage 2: backtracking with escalating gamma (lines 12-29).
    //
    // An empty pool (no entries, or the budget stopped the query before
    // any entry distance was computed) previously panicked here; routing
    // instead returns what it has — the empty or entry-only pool.
    if r.stopped.is_none() {
        if let Some(g_flo) = r.w.min_entry() {
            let mut gamma = g_flo.dist + ds;
            'escalate: loop {
                if let Some(q) = r.trace_q {
                    trace::emit_gamma(q, gamma);
                }
                // Index loop: `all_quali_neigh` never appends to the
                // exploration order, so this avoids cloning it each round.
                for i in 0..r.state.order.len() {
                    let g = r.state.order[i];
                    r.all_quali_neigh(g, gamma);
                    if r.stopped.is_some() {
                        break 'escalate;
                    }
                }
                r.resize_pool(b);
                if r.w.all_explored(&r.state) {
                    break;
                }
                while let Some(g) = r.w.min_unexplored_within(gamma, &r.state) {
                    if r.hop_capped() {
                        break 'escalate;
                    }
                    r.rank_expl(g.id, gamma);
                    r.state.mark_explored(g.id);
                    r.note_hop(2, g.id, g.dist, gamma);
                    r.resize_pool(b);
                    if r.stopped.is_some() {
                        break 'escalate;
                    }
                }
                gamma += ds;
            }
        }
    }

    finish_route(&r.w, r.state, cache, k, r.stopped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::DistCache;
    use crate::routing::beam_search;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_both(
        adj: &[Vec<u32>],
        dists: &[f64],
        entry: u32,
        b: usize,
        k: usize,
        y: usize,
    ) -> (RouteResult, RouteResult) {
        let f = |id: u32| dists[id as usize];
        let cache_bs = DistCache::new(&f);
        let bs = beam_search(adj, &cache_bs, &[entry], b, k);
        let cache_np = DistCache::new(&f);
        let oracle = OracleRanker::new(&f, y);
        let np = np_route(adj, &cache_np, &oracle, &[entry], b, k, 1.0);
        (bs, np)
    }

    /// Random connected adjacency for routing tests.
    fn random_adj(rng: &mut StdRng, n: usize, extra: usize) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<u32>>, a: usize, b: usize| {
            if a != b && !adj[a].contains(&(b as u32)) {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        };
        for i in 1..n {
            let j = rng.gen_range(0..i);
            connect(&mut adj, i, j);
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            connect(&mut adj, a, b);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// Distinct integer distances: a random permutation of `0..n`.
    fn distinct_dists(rng: &mut StdRng, n: usize) -> Vec<f64> {
        use rand::seq::SliceRandom;
        let mut d: Vec<f64> = (0..n).map(|i| i as f64).collect();
        d.shuffle(rng);
        d
    }

    #[test]
    fn theorem1_same_results_never_more_ndc() {
        // Theorem 1 in general position (distinct distances): identical
        // result sets and NDC no larger than the baseline's.
        let mut rng = StdRng::seed_from_u64(81);
        for trial in 0..200 {
            let n = rng.gen_range(5..30);
            let adj = random_adj(&mut rng, n, n);
            let dists = distinct_dists(&mut rng, n);
            let entry = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(1..6);
            let k = rng.gen_range(1..=b);
            let y = *[10usize, 20, 30, 50].get(trial % 4).unwrap();
            let (bs, np) = run_both(&adj, &dists, entry, b, k, y);
            assert_eq!(
                bs.results, np.results,
                "trial {trial}: results differ (n={n}, b={b}, k={k}, y={y})"
            );
            assert!(
                np.ndc <= bs.ndc,
                "trial {trial}: np NDC {} > baseline NDC {}",
                np.ndc,
                bs.ndc
            );
        }
    }

    #[test]
    fn lemma1_same_exploration_sequence() {
        let mut rng = StdRng::seed_from_u64(82);
        for trial in 0..200 {
            let n = rng.gen_range(5..25);
            let adj = random_adj(&mut rng, n, n / 2);
            let dists = distinct_dists(&mut rng, n);
            let entry = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(1..5);
            let (bs, np) = run_both(&adj, &dists, entry, b, 1, 20);
            assert_eq!(
                bs.exploration_order, np.exploration_order,
                "trial {trial}: exploration sequences differ"
            );
        }
    }

    #[test]
    fn theorem1_tie_cases_statistically_equivalent() {
        // With ties (integer GED values repeat constantly) Lemma 1's proof
        // does not apply: the batch-deferred discovery order can saturate
        // np's pool with closer explored nodes before a tied candidate ever
        // enters, dropping it — in either direction (np is sometimes better,
        // sometimes worse than the baseline on individual queries). What
        // survives ties is statistical equivalence: over many random
        // instances the two routers return results of near-identical total
        // quality, and np never spends more distance computations in
        // aggregate. This mirrors the paper's empirical finding that recall
        // is preserved while NDC drops.
        let mut rng = StdRng::seed_from_u64(83);
        let (mut sum_bs, mut sum_np) = (0.0f64, 0.0f64);
        let (mut ndc_bs, mut ndc_np) = (0usize, 0usize);
        for _ in 0..300 {
            let n = rng.gen_range(5..30);
            let adj = random_adj(&mut rng, n, n);
            let dists: Vec<f64> = (0..n).map(|_| rng.gen_range(0..8) as f64).collect();
            let entry = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(1..6);
            let k = rng.gen_range(1..=b);
            let (bs, np) = run_both(&adj, &dists, entry, b, k, 20);
            assert_eq!(bs.results.len(), np.results.len());
            sum_bs += bs.results.iter().map(|&(d, _)| d).sum::<f64>();
            sum_np += np.results.iter().map(|&(d, _)| d).sum::<f64>();
            ndc_bs += bs.ndc;
            ndc_np += np.ndc;
        }
        assert!(
            sum_np <= sum_bs * 1.05 + 1.0,
            "np aggregate quality degraded: {sum_np} vs baseline {sum_bs}"
        );
        assert!(
            ndc_np <= ndc_bs,
            "np aggregate NDC {ndc_np} exceeds baseline {ndc_bs}"
        );
        assert!(
            (ndc_np as f64) < 0.9 * ndc_bs as f64,
            "pruning saved no meaningful NDC: {ndc_np} vs {ndc_bs}"
        );
    }

    #[test]
    fn oracle_pruning_reduces_ndc_on_structured_instance() {
        // A hub-and-spoke PG where most spokes are far: pruning must help.
        let n = 40usize;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 1..n {
            adj[0].push(i as u32);
            adj[i].push(0);
        }
        // Chain among first few nodes to give a descent path.
        for i in 1..5 {
            adj[i].push((i + 1) as u32);
            adj[i + 1].push(i as u32);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        let dists: Vec<f64> = (0..n)
            .map(|i| {
                if i <= 5 {
                    (5 - i) as f64
                } else {
                    50.0 + i as f64
                }
            })
            .collect();
        let (bs, np) = run_both(&adj, &dists, 0, 2, 1, 10);
        assert_eq!(bs.results, np.results);
        assert!(
            np.ndc * 2 < bs.ndc,
            "expected >2x NDC reduction: np {} vs bs {}",
            np.ndc,
            bs.ndc
        );
    }

    #[test]
    fn no_prune_ranker_equals_baseline_ndc() {
        let mut rng = StdRng::seed_from_u64(83);
        let adj = random_adj(&mut rng, 20, 10);
        let dists: Vec<f64> = (0..20).map(|_| rng.gen_range(0..10) as f64).collect();
        let f = |id: u32| dists[id as usize];
        let cache_bs = DistCache::new(&f);
        let bs = beam_search(&adj, &cache_bs, &[0], 3, 2);
        let cache_np = DistCache::new(&f);
        let np = np_route(&adj, &cache_np, &NoPruneRanker, &[0], 3, 2, 1.0);
        assert_eq!(bs.results, np.results);
        assert_eq!(bs.ndc, np.ndc);
    }

    #[test]
    fn chunk_batches_sizes() {
        assert_eq!(
            chunk_batches(vec![1, 2, 3, 4], 30),
            vec![vec![1], vec![2], vec![3], vec![4]]
        );
        assert_eq!(
            chunk_batches(vec![1, 2, 3, 4], 50),
            vec![vec![1, 2], vec![3, 4]]
        );
        assert_eq!(chunk_batches(vec![1, 2, 3], 100), vec![vec![1, 2, 3]]);
        assert!(chunk_batches(vec![], 20).is_empty());
        assert_eq!(chunk_batches(vec![9], 20), vec![vec![9]]);
    }

    #[test]
    fn chunk_batches_edge_cases() {
        // batch_pct = 100: always exactly one batch, any n.
        for n in [1usize, 2, 7, 100] {
            let items: Vec<u32> = (0..n as u32).collect();
            let batches = chunk_batches(items.clone(), 100);
            assert_eq!(batches, vec![items], "pct=100, n={n}");
        }
        // n smaller than the nominal batch size: the size floor of 1 keeps
        // every element in play (never an empty or dropped batch).
        assert_eq!(chunk_batches(vec![7, 8], 90), vec![vec![7], vec![8]]);
        assert_eq!(chunk_batches(vec![5], 1), vec![vec![5]]);
        // Empty input is empty output at every percentage.
        for pct in [1usize, 20, 100] {
            assert!(chunk_batches(vec![], pct).is_empty(), "pct={pct}");
        }
        // Batches always concatenate back to the input, in order.
        for pct in [1usize, 13, 33, 50, 99, 100] {
            let items: Vec<u32> = (0..23).collect();
            let flat: Vec<u32> = chunk_batches(items.clone(), pct).concat();
            assert_eq!(flat, items, "pct={pct} lost or reordered elements");
        }
    }

    #[test]
    fn single_node_graph() {
        let adj = vec![vec![]];
        let f = |_: u32| 4.0;
        let cache = DistCache::new(&f);
        let oracle = OracleRanker::new(&f, 20);
        let r = np_route(&adj, &cache, &oracle, &[0], 2, 1, 1.0);
        assert_eq!(r.results, vec![(4.0, 0)]);
        assert_eq!(r.ndc, 1);
        assert_eq!(r.termination, Termination::Converged);
    }

    #[test]
    fn isolated_entry_returns_entry_only() {
        // Regression: an isolated entry in a larger graph must yield an
        // entry-only result, not a panic.
        let adj = vec![vec![], vec![2], vec![1]];
        let f = |id: u32| 1.0 + id as f64;
        let cache = DistCache::new(&f);
        let oracle = OracleRanker::new(&f, 20);
        let r = np_route(&adj, &cache, &oracle, &[0], 3, 2, 1.0);
        assert_eq!(r.results, vec![(1.0, 0)]);
        assert_eq!(r.termination, Termination::Converged);
    }

    #[test]
    fn empty_entries_return_empty_result() {
        // Regression: "pool cannot be empty after stage 1" panicked here.
        let adj = vec![vec![1], vec![0]];
        let f = |id: u32| id as f64;
        let cache = DistCache::new(&f);
        let oracle = OracleRanker::new(&f, 20);
        let r = np_route(&adj, &cache, &oracle, &[], 2, 1, 1.0);
        assert!(r.results.is_empty());
        assert_eq!(r.ndc, 0);
        assert_eq!(r.termination, Termination::Converged);
    }

    #[test]
    fn budgeted_np_route_matches_with_large_cap_and_degrades_with_small() {
        use crate::budget::QueryBudget;
        let mut rng = StdRng::seed_from_u64(91);
        let adj = random_adj(&mut rng, 25, 25);
        let dists = distinct_dists(&mut rng, 25);
        let f = |id: u32| dists[id as usize];
        let oracle = OracleRanker::new(&f, 20);

        let free_cache = DistCache::new(&f);
        let free = np_route(&adj, &free_cache, &oracle, &[0], 3, 2, 1.0);
        assert_eq!(free.termination, Termination::Converged);

        // A cap at least the unlimited NDC changes nothing, bit for bit.
        let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(free.ndc));
        let cache = DistCache::new(&f);
        let same = np_route_budgeted(&adj, &cache, &oracle, &[0], 3, 2, 1.0, &ctx);
        assert_eq!(free.results, same.results);
        assert_eq!(free.ndc, same.ndc);
        assert_eq!(free.exploration_order, same.exploration_order);
        assert_eq!(same.termination, Termination::Converged);

        // Any smaller cap must bound the NDC and tag the result.
        for cap in 1..free.ndc {
            let ctx = BudgetCtx::new(&QueryBudget::default().with_max_ndc(cap));
            let cache = DistCache::new(&f);
            let r = np_route_budgeted(&adj, &cache, &oracle, &[0], 3, 2, 1.0, &ctx);
            assert!(r.ndc <= cap, "cap {cap}: ndc {}", r.ndc);
            assert_eq!(r.termination, Termination::NdcBudget, "cap {cap}");
        }
    }
}
