//! Routing properties beyond the in-crate unit tests: proptest-driven
//! Theorem 1 sweeps, multi-entry behavior, and index quality on metric
//! point sets.

use lan_pg::np_route::{np_route, NoPruneRanker, OracleRanker};
use lan_pg::{beam_search, brute_force_knn, DistCache, PairCache, PgConfig, ProximityGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_connected_adj(rng: &mut StdRng, n: usize, extra: usize) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for i in 1..n {
        let j = rng.gen_range(0..i);
        adj[i].push(j as u32);
        adj[j].push(i as u32);
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !adj[a].contains(&(b as u32)) {
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 with proptest-driven shapes: distinct distances, any batch
    /// percentage, any gamma step, multiple entry points.
    #[test]
    fn theorem1_proptest(
        seed in any::<u64>(),
        n in 4usize..40,
        b in 1usize..8,
        y in prop::sample::select(vec![5usize, 10, 20, 25, 34, 50, 100]),
        num_entries in 1usize..3,
    ) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_connected_adj(&mut rng, n, n);
        let mut dists: Vec<f64> = (0..n).map(|i| i as f64).collect();
        dists.shuffle(&mut rng);
        let entries: Vec<u32> =
            (0..num_entries.min(n)).map(|_| rng.gen_range(0..n) as u32).collect();
        let k = b.min(3);

        let f = |id: u32| dists[id as usize];
        let c1 = DistCache::new(&f);
        let bs = beam_search(&adj, &c1, &entries, b, k);
        let c2 = DistCache::new(&f);
        let oracle = OracleRanker::new(&f, y);
        let np = np_route(&adj, &c2, &oracle, &entries, b, k, 1.0);
        prop_assert_eq!(&bs.results, &np.results);
        prop_assert!(np.ndc <= bs.ndc, "np {} > bs {}", np.ndc, bs.ndc);

        // NoPrune degenerates to the baseline exactly.
        let c3 = DistCache::new(&f);
        let nop = np_route(&adj, &c3, &NoPruneRanker, &entries, b, k, 1.0);
        prop_assert_eq!(&nop.results, &bs.results);
        prop_assert_eq!(nop.ndc, bs.ndc);
    }

    /// Larger gamma steps trade extra exploration for fewer rounds but must
    /// never change the result under distinct distances.
    #[test]
    fn gamma_step_invariance(seed in any::<u64>(), ds in prop::sample::select(vec![1.0f64, 2.0, 5.0, 10.0])) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20usize;
        let adj = random_connected_adj(&mut rng, n, n);
        let mut dists: Vec<f64> = (0..n).map(|i| i as f64).collect();
        dists.shuffle(&mut rng);
        let f = |id: u32| dists[id as usize];
        let c1 = DistCache::new(&f);
        let bs = beam_search(&adj, &c1, &[0], 4, 2);
        let c2 = DistCache::new(&f);
        let oracle = OracleRanker::new(&f, 20);
        let np = np_route(&adj, &c2, &oracle, &[0], 4, 2, ds);
        prop_assert_eq!(bs.results, np.results, "ds = {}", ds);
    }
}

#[test]
fn index_recall_scales_with_beam() {
    // On a well-behaved metric space (1-D points), recall@10 must be
    // non-degenerate and improve (weakly) with the beam size.
    let mut rng = StdRng::seed_from_u64(5);
    let n = 400usize;
    let pts: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
    let pts2 = pts.clone();
    let f = move |a: u32, b: u32| (pts2[a as usize] - pts2[b as usize]).abs();
    let pairs = PairCache::new(&f);
    let pg = ProximityGraph::build(n, &pairs, &PgConfig::new(8));

    let mut prev_recall = 0.0;
    for b in [10usize, 40, 160] {
        let mut total = 0.0;
        for t in 0..10 {
            let q = 100.0 * t as f64;
            let pts_c = pts.clone();
            let qd = move |id: u32| (pts_c[id as usize] - q).abs();
            let truth = brute_force_knn(n, &qd, 10);
            let dc = DistCache::new(&qd);
            let entry = pg.hnsw_entry(&dc);
            let res = beam_search(pg.base(), &dc, &[entry], b, 10);
            let t_ids: std::collections::HashSet<u32> = truth.iter().map(|&(_, i)| i).collect();
            total += res.ids().iter().filter(|i| t_ids.contains(i)).count() as f64 / 10.0;
        }
        let recall = total / 10.0;
        assert!(
            recall >= prev_recall - 0.05,
            "recall regressed with beam {b}"
        );
        prev_recall = recall;
    }
    assert!(prev_recall > 0.95, "recall at b=160 too low: {prev_recall}");
}

#[test]
fn oracle_route_on_point_index_saves_ndc() {
    let mut rng = StdRng::seed_from_u64(6);
    let n = 300usize;
    let pts: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
    let pts2 = pts.clone();
    let f = move |a: u32, b: u32| (pts2[a as usize] - pts2[b as usize]).abs();
    let pairs = PairCache::new(&f);
    let pg = ProximityGraph::build(n, &pairs, &PgConfig::new(8));

    let mut bs_total = 0usize;
    let mut np_total = 0usize;
    for t in 0..10 {
        let q = 57.0 + 95.0 * t as f64;
        let pts_c = pts.clone();
        let qd = move |id: u32| (pts_c[id as usize] - q).abs();
        let dc1 = DistCache::new(&qd);
        let entry = pg.hnsw_entry(&dc1);
        let bs = beam_search(pg.base(), &dc1, &[entry], 20, 10);
        let dc2 = DistCache::new(&qd);
        let entry2 = pg.hnsw_entry(&dc2);
        let oracle = OracleRanker::new(&qd, 20);
        let np = np_route(pg.base(), &dc2, &oracle, &[entry2], 20, 10, 1.0);
        assert_eq!(
            bs.results.iter().map(|r| r.0).collect::<Vec<_>>(),
            np.results.iter().map(|r| r.0).collect::<Vec<_>>()
        );
        bs_total += bs.ndc;
        np_total += np.ndc;
    }
    assert!(
        np_total < bs_total,
        "oracle pruning saved nothing: {np_total} vs {bs_total}"
    );
}
