//! Bit-identity of threshold-gated routing with the seed (ungated) path.
//!
//! The GED kernel cascade lets the metric answer a routing probe with an
//! admissible lower bound instead of a full solve whenever the bound
//! reaches the live threshold and strictly beats the pool gate. The
//! contract is that this changes **nothing observable**: results, NDC,
//! cache hit counts, exploration order, and termination tags are all
//! bit-identical to running the plain exact metric — only the number of
//! full solver runs drops. These tests drive both routers (plus the HNSW
//! entry descent and the budgeted variants) with a synthetic
//! bound-returning oracle against the plain closure oracle and compare
//! everything.

use lan_pg::np_route::{np_route, np_route_budgeted, NoPruneRanker, OracleRanker};
use lan_pg::{
    beam_search, beam_search_budgeted, BudgetCtx, DistBound, DistCache, PairCache, PgConfig,
    ProximityGraph, QueryBudget, QueryDistance,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A gated oracle over a fixed distance table: `distance_within` answers
/// with the admissible lower bound `max(d - slack, 0) * tightness` when it
/// reaches `tau`, and with the exact value otherwise. `slack = 0`,
/// `tightness = 1` makes the bound *equal* to the distance — the maximal
/// pruning regime, full of boundary ties, which is exactly where the
/// strict-gate logic has to hold the line.
struct BoundOracle<'a> {
    d: &'a [f64],
    slack: f64,
    tightness: f64,
    full_evals: AtomicUsize,
}

impl<'a> BoundOracle<'a> {
    fn new(d: &'a [f64], slack: f64, tightness: f64) -> Self {
        assert!((0.0..=1.0).contains(&tightness) && slack >= 0.0);
        BoundOracle {
            d,
            slack,
            tightness,
            full_evals: AtomicUsize::new(0),
        }
    }

    fn lb(&self, id: u32) -> f64 {
        (self.d[id as usize] - self.slack).max(0.0) * self.tightness
    }
}

impl QueryDistance for BoundOracle<'_> {
    fn distance(&self, id: u32) -> f64 {
        self.full_evals.fetch_add(1, Ordering::Relaxed);
        self.d[id as usize]
    }

    fn distance_within(&self, id: u32, tau: f64) -> DistBound {
        let lb = self.lb(id);
        if tau.is_finite() && lb >= tau {
            DistBound::AtLeast(lb)
        } else {
            DistBound::Exact(self.distance(id))
        }
    }
}

fn random_connected_adj(rng: &mut StdRng, n: usize, extra: usize) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for i in 1..n {
        let j = rng.gen_range(0..i);
        adj[i].push(j as u32);
        adj[j].push(i as u32);
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !adj[a].contains(&(b as u32)) {
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
    }
    adj
}

/// Asserts two route results are bit-identical (distances compared by
/// bits, not tolerance).
fn assert_same_route(seedr: &lan_pg::RouteResult, gated: &lan_pg::RouteResult, what: &str) {
    assert_eq!(
        seedr.results.len(),
        gated.results.len(),
        "{what}: result len"
    );
    for (a, b) in seedr.results.iter().zip(&gated.results) {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "{what}: distance bits");
        assert_eq!(a.1, b.1, "{what}: result id");
    }
    assert_eq!(seedr.ndc, gated.ndc, "{what}: NDC");
    assert_eq!(
        seedr.exploration_order, gated.exploration_order,
        "{what}: exploration order"
    );
    assert_eq!(seedr.termination, gated.termination, "{what}: termination");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both routers, integer-tied distances (the GED regime), every bound
    /// tightness from useless to exact: gated == seed on results, NDC,
    /// hits, exploration order.
    #[test]
    fn gated_routing_is_bit_identical(
        seed in any::<u64>(),
        n in 4usize..40,
        b in 1usize..8,
        y in prop::sample::select(vec![10usize, 20, 34, 50, 100]),
        slack in prop::sample::select(vec![0.0f64, 1.0, 3.0]),
        tightness in prop::sample::select(vec![1.0f64, 0.7, 0.3]),
        tied in any::<bool>(),
    ) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_connected_adj(&mut rng, n, n);
        let dists: Vec<f64> = if tied {
            (0..n).map(|_| rng.gen_range(0..8) as f64).collect()
        } else {
            let mut d: Vec<f64> = (0..n).map(|i| i as f64).collect();
            d.shuffle(&mut rng);
            d
        };
        let entry = rng.gen_range(0..n) as u32;
        let k = b.min(3);

        let f = |id: u32| dists[id as usize];
        let gated = BoundOracle::new(&dists, slack, tightness);

        // Algorithm 1 (beam search).
        let c1 = DistCache::new(&f);
        let bs_seed = beam_search(&adj, &c1, &[entry], b, k);
        let c2 = DistCache::new(&gated);
        let bs_gated = beam_search(&adj, &c2, &[entry], b, k);
        assert_same_route(&bs_seed, &bs_gated, "beam_search");
        prop_assert_eq!(c1.hits(), c2.hits(), "beam_search hits");
        prop_assert!(gated.full_evals.load(Ordering::Relaxed) <= bs_seed.ndc);

        // Algorithms 2-4 (np_route, oracle ranker).
        let oracle = OracleRanker::new(&f, y);
        let c3 = DistCache::new(&f);
        let np_seed = np_route(&adj, &c3, &oracle, &[entry], b, k, 1.0);
        let gated2 = BoundOracle::new(&dists, slack, tightness);
        let c4 = DistCache::new(&gated2);
        let np_gated = np_route(&adj, &c4, &oracle, &[entry], b, k, 1.0);
        assert_same_route(&np_seed, &np_gated, "np_route");
        prop_assert_eq!(c3.hits(), c4.hits(), "np_route hits");

        // NoPruneRanker (baseline-degenerate np_route).
        let c5 = DistCache::new(&f);
        let nop_seed = np_route(&adj, &c5, &NoPruneRanker, &[entry], b, k, 1.0);
        let gated3 = BoundOracle::new(&dists, slack, tightness);
        let c6 = DistCache::new(&gated3);
        let nop_gated = np_route(&adj, &c6, &NoPruneRanker, &[entry], b, k, 1.0);
        assert_same_route(&nop_seed, &nop_gated, "np_route/noprune");
        prop_assert_eq!(c5.hits(), c6.hits(), "np_route/noprune hits");
    }

    /// Budgeted routing under every NDC cap: the gated run degrades at the
    /// same point, with the same best-so-far pool, as the seed run.
    #[test]
    fn gated_budgeted_routing_is_bit_identical(
        seed in any::<u64>(),
        n in 5usize..25,
        b in 1usize..5,
        slack in prop::sample::select(vec![0.0f64, 2.0]),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_connected_adj(&mut rng, n, n / 2);
        let dists: Vec<f64> = (0..n).map(|_| rng.gen_range(0..10) as f64).collect();
        let entry = rng.gen_range(0..n) as u32;
        let f = |id: u32| dists[id as usize];
        let oracle = OracleRanker::new(&f, 20);

        let free_cache = DistCache::new(&f);
        let free = np_route(&adj, &free_cache, &oracle, &[entry], b, 2, 1.0);

        for cap in (1..=free.ndc).step_by(2) {
            let ctx_s = BudgetCtx::new(&QueryBudget::default().with_max_ndc(cap));
            let cs = DistCache::new(&f);
            let rs = np_route_budgeted(&adj, &cs, &oracle, &[entry], b, 2, 1.0, &ctx_s);

            let gated = BoundOracle::new(&dists, slack, 1.0);
            let ctx_g = BudgetCtx::new(&QueryBudget::default().with_max_ndc(cap));
            let cg = DistCache::new(&gated);
            let rg = np_route_budgeted(&adj, &cg, &oracle, &[entry], b, 2, 1.0, &ctx_g);
            assert_same_route(&rs, &rg, "np_route_budgeted");

            let ctx_s2 = BudgetCtx::new(&QueryBudget::default().with_max_ndc(cap));
            let cs2 = DistCache::new(&f);
            let bs = beam_search_budgeted(&adj, &cs2, &[entry], b, 2, &ctx_s2);
            let gated2 = BoundOracle::new(&dists, slack, 1.0);
            let ctx_g2 = BudgetCtx::new(&QueryBudget::default().with_max_ndc(cap));
            let cg2 = DistCache::new(&gated2);
            let bg = beam_search_budgeted(&adj, &cg2, &[entry], b, 2, &ctx_g2);
            assert_same_route(&bs, &bg, "beam_search_budgeted");
        }
    }
}

#[test]
fn gated_hnsw_entry_descent_is_bit_identical() {
    // A real hierarchical index over 1-D points; the gated descent must
    // pick the same entry with the same NDC and hit counts.
    let mut rng = StdRng::seed_from_u64(7);
    let pts: Vec<f64> = (0..160).map(|_| rng.gen_range(0.0..100.0)).collect();
    let pf = |a: u32, b: u32| (pts[a as usize] - pts[b as usize]).abs();
    let pc = PairCache::new(&pf);
    let pg = ProximityGraph::build(pts.len(), &pc, &PgConfig::new(6));

    for qi in 0..20 {
        let q = (qi as f64) * 5.3;
        let qdists: Vec<f64> = pts.iter().map(|p| (p - q).abs()).collect();
        let f = |id: u32| qdists[id as usize];
        let c1 = DistCache::new(&f);
        let e_seed = pg.hnsw_entry(&c1);
        for (slack, tightness) in [(0.0, 1.0), (1.0, 1.0), (0.0, 0.5)] {
            let gated = BoundOracle::new(&qdists, slack, tightness);
            let c2 = DistCache::new(&gated);
            let e_gated = pg.hnsw_entry(&c2);
            assert_eq!(e_seed, e_gated, "entry node");
            assert_eq!(c1.ndc(), c2.ndc(), "descent NDC");
            assert_eq!(c1.hits(), c2.hits(), "descent hits");
        }
    }
}

#[test]
fn tight_bounds_actually_save_full_evals() {
    // The equivalence above would hold trivially if the cascade never
    // pruned; this pins down that an exact bound (lb == d) does cut full
    // solver runs well below NDC on a structured instance.
    let n = 300usize;
    let mut rng = StdRng::seed_from_u64(11);
    let adj = random_connected_adj(&mut rng, n, 2 * n);
    // One tight cluster near the query, everything else far away.
    let dists: Vec<f64> = (0..n)
        .map(|i| if i < 12 { i as f64 } else { 40.0 + i as f64 })
        .collect();
    let f = |id: u32| dists[id as usize];
    let c1 = DistCache::new(&f);
    let seed_route = beam_search(&adj, &c1, &[0], 4, 3);

    let gated = BoundOracle::new(&dists, 0.0, 1.0);
    let c2 = DistCache::new(&gated);
    let gated_route = beam_search(&adj, &c2, &[0], 4, 3);
    assert_same_route(&seed_route, &gated_route, "structured beam_search");

    let full = gated.full_evals.load(Ordering::Relaxed);
    assert!(
        full * 2 <= seed_route.ndc,
        "cascade saved too little: {full} full evals vs {} NDC",
        seed_route.ndc
    );
}
