//! Edge cases of the routing layer: disconnection, tiny pools, oversized k.

use lan_pg::np_route::{np_route, OracleRanker};
use lan_pg::{beam_search, DistCache};

#[test]
fn disconnected_component_unreachable() {
    // Two components: entry in the first; the optimum lives in the second
    // and must NOT be found (the router only follows edges).
    let adj: Vec<Vec<u32>> = vec![vec![1], vec![0], vec![3], vec![2]];
    let d = [5.0, 4.0, 0.0, 1.0];
    let f = |id: u32| d[id as usize];
    let cache = DistCache::new(&f);
    let r = beam_search(&adj, &cache, &[0], 4, 2);
    assert_eq!(r.ids(), vec![1, 0]);

    let cache2 = DistCache::new(&f);
    let oracle = OracleRanker::new(&f, 20);
    let r2 = np_route(&adj, &cache2, &oracle, &[0], 4, 2, 1.0);
    assert_eq!(r2.ids(), vec![1, 0]);
}

#[test]
fn k_larger_than_reachable_set() {
    let adj: Vec<Vec<u32>> = vec![vec![1], vec![0]];
    let f = |id: u32| id as f64;
    let cache = DistCache::new(&f);
    let r = beam_search(&adj, &cache, &[0], 10, 5);
    assert_eq!(r.results.len(), 2, "cannot return more than reachable");
}

#[test]
fn beam_smaller_than_k_returns_beam_many() {
    let adj: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![0], vec![0], vec![0]];
    let f = |id: u32| id as f64;
    let cache = DistCache::new(&f);
    let r = beam_search(&adj, &cache, &[0], 2, 4);
    assert!(r.results.len() <= 2, "pool size bounds the result count");
}

#[test]
fn duplicate_entries_are_deduplicated() {
    let adj: Vec<Vec<u32>> = vec![vec![1], vec![0]];
    let f = |id: u32| id as f64;
    let cache = DistCache::new(&f);
    let r = beam_search(&adj, &cache, &[0, 0, 0], 4, 2);
    assert_eq!(r.ids(), vec![0, 1]);
    assert_eq!(r.ndc, 2);
}

#[test]
fn np_route_zero_distance_entry() {
    // The entry IS the optimum; stage 1 terminates immediately and stage 2
    // must still scan qualified neighbors before stopping.
    let adj: Vec<Vec<u32>> = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
    let d = [0.0, 1.0, 2.0];
    let f = |id: u32| d[id as usize];
    let cache = DistCache::new(&f);
    let oracle = OracleRanker::new(&f, 50);
    let r = np_route(&adj, &cache, &oracle, &[0], 3, 3, 1.0);
    assert_eq!(r.ids(), vec![0, 1, 2]);
}

#[test]
#[should_panic(expected = "gamma step must be positive")]
fn np_route_rejects_zero_step() {
    let adj: Vec<Vec<u32>> = vec![vec![]];
    let f = |_: u32| 0.0;
    let cache = DistCache::new(&f);
    let oracle = OracleRanker::new(&f, 20);
    let _ = np_route(&adj, &cache, &oracle, &[0], 1, 1, 0.0);
}

#[test]
#[should_panic(expected = "beam size must be at least 1")]
fn beam_search_rejects_zero_beam() {
    let adj: Vec<Vec<u32>> = vec![vec![]];
    let f = |_: u32| 0.0;
    let cache = DistCache::new(&f);
    let _ = beam_search(&adj, &cache, &[0], 0, 1);
}
